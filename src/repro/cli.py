"""Command-line front end over persisted design libraries.

A thin utility layer a downstream user drives from the shell::

    python -m repro.cli info design.json
    python -m repro.cli tree design.json
    python -m repro.cli erc design.json --cell ROW
    python -m repro.cli netlist design.json --cell CHAIN
    python -m repro.cli delay design.json --cell ALU --source in1 --dest out1
    python -m repro.cli select design.json --cell DATAPATH --instance A1
    python -m repro.cli sweep design.json --cell ALU --var width --range 1:8
    python -m repro.cli stats design.json --json
    python -m repro.cli islands design.json --members
    python -m repro.cli plancache-stats design.json --repeat 5
    python -m repro.cli metrics design.json
    python -m repro.cli profile design.json --top 10 --trace round.trace.json

Every command loads a library saved with
:mod:`repro.stem.persistence`, performs one analysis, and prints a
report.  Exit status is non-zero when checks find problems, so the
commands compose into scripts and CI.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, List, Optional

from .checking import check_cell
from .core import reset_default_context
from .selection import ModuleSelector, RankedSelector
from .spice import extract_netlist
from .stem.library import CellLibrary
from .stem.persistence import load_library


def _load(path: str, context: Any = None) -> CellLibrary:
    with open(path) as handle:
        data = json.load(handle)
    if context is None:
        context = reset_default_context()
    return load_library(data, context=context)


def _exercise(library: CellLibrary) -> None:
    """Drive the library's constraint networks (delay network builds)."""
    for cell in library:
        if cell.delays and cell.subcells:
            cell.build_delay_network()


def _find_instance(cell: Any, name: str) -> Any:
    for instance in cell.subcells:
        if instance.name == name:
            return instance
    raise SystemExit(f"error: cell {cell.name!r} has no subcell {name!r}; "
                     f"have {[i.name for i in cell.subcells]}")


# -- commands -----------------------------------------------------------------

def cmd_info(args: argparse.Namespace, out) -> int:
    library = _load(args.design)
    stats = library.statistics()
    print(f"library {library.name!r}", file=out)
    for key, value in stats.items():
        print(f"  {key}: {value}", file=out)
    print(f"  names: {', '.join(library.names())}", file=out)
    return 0


def cmd_tree(args: argparse.Namespace, out) -> int:
    """Print the inheritance forest with characteristics."""
    library = _load(args.design)

    def describe(cell: Any) -> str:
        flags = " (generic)" if cell.is_generic else ""
        box = cell.bounding_box_var.value
        extra = f"  box={box.extent.x}x{box.extent.y}" if box else ""
        delays = ", ".join(f"{s}->{d}={var.value}"
                           for (s, d), var in cell.delays.items()
                           if var.value is not None)
        if delays:
            extra += f"  delay[{delays}]"
        return f"{cell.name}{flags}{extra}"

    def walk(cell: Any, depth: int) -> None:
        print("  " * depth + describe(cell), file=out)
        for subclass in cell.subclasses:
            walk(subclass, depth + 1)

    for root in library.roots():
        walk(root, 0)
    return 0


def cmd_erc(args: argparse.Namespace, out) -> int:
    library = _load(args.design)
    cells = ([library.cell(args.cell)] if args.cell
             else [cell for cell in library if cell.subcells])
    total = 0
    for cell in cells:
        findings = check_cell(cell)
        total += len(findings)
        for finding in findings:
            print(f"{cell.name}: [{finding.rule}] {finding.detail}",
                  file=out)
    print(f"{total} finding(s)", file=out)
    return 1 if total else 0


def cmd_netlist(args: argparse.Namespace, out) -> int:
    library = _load(args.design)
    cell = library.cell(args.cell)
    netlist = extract_netlist(cell)
    print(netlist.text(), file=out)
    return 0


def cmd_delay(args: argparse.Namespace, out) -> int:
    library = _load(args.design)
    cell = library.cell(args.cell)
    if (args.source, args.dest) not in cell.delays:
        raise SystemExit(f"error: cell {args.cell!r} declares no delay "
                         f"{args.source}->{args.dest}")
    cell.build_delay_network()
    value = cell.delay_value(args.source, args.dest)
    if value is None:
        print(f"{cell.name} {args.source}->{args.dest}: no value "
              f"(missing characteristics or connectivity)", file=out)
        return 1
    print(f"{cell.name} {args.source}->{args.dest}: {value:g}", file=out)
    if args.max is not None and value > args.max:
        print(f"VIOLATION: exceeds --max {args.max:g}", file=out)
        return 1
    return 0


def cmd_select(args: argparse.Namespace, out) -> int:
    library = _load(args.design)
    cell = library.cell(args.cell)
    instance = _find_instance(cell, args.instance)
    if args.rank:
        ranked = RankedSelector().rank(instance)
        if not ranked:
            print("no valid realizations", file=out)
            return 1
        for entry in ranked:
            print(f"{entry.cell.name}  score={entry.score:.3f}  "
                  f"metrics={entry.metrics}", file=out)
        return 0
    selector = ModuleSelector()
    realizations = selector.select_realizations_for(instance)
    if not realizations:
        print("no valid realizations", file=out)
        return 1
    for candidate in realizations:
        print(candidate.name, file=out)
    print(f"({selector.stats})", file=out)
    return 0


def cmd_search(args: argparse.Namespace, out) -> int:
    """Parallel generate-and-test module selection over computation
    spaces: identical ranked results to ``select --rank``, but every
    tentative test runs in an encapsulated space and candidates can be
    evaluated by parallel workers."""
    from .spaces import search_realizations

    library = _load(args.design)
    cell = library.cell(args.cell)
    instance = _find_instance(cell, args.instance)
    result = search_realizations(instance, workers=args.workers,
                                 backend=args.backend,
                                 prune=not args.no_prune)
    if not result.ranking:
        print("no valid realizations", file=out)
        print(f"({result.stats})", file=out)
        return 1
    for entry in result.ranking:
        print(f"{entry.cell.name}  score={entry.score:.3f}  "
              f"metrics={entry.metrics}", file=out)
    print(f"({result.stats})", file=out)
    return 0


def cmd_browse(args: argparse.Namespace, out) -> int:
    """The Cell Browser panes for one cell, textually."""
    from .stem.browser import CellBrowser

    library = _load(args.design)
    browser = CellBrowser(library)
    browser.open(args.cell)
    print(browser.interface_pane(), file=out)
    print(file=out)
    print(browser.structure_pane(), file=out)
    return 0


def cmd_stats(args: argparse.Namespace, out) -> int:
    """Propagation statistics after exercising the design's networks.

    The engine's :class:`PropagationStats` block, routed through the
    metrics snapshot API so output is deterministic (sorted keys) and,
    with ``--json``, machine-readable.
    """
    from .core import install_islands
    from .obs import MetricsRegistry

    context = reset_default_context()
    # Install the island index before loading so it observes every
    # constraint link the load creates (partition counters then reflect
    # the whole design, not just post-load edits).
    islands = install_islands(context)
    library = _load(args.design, context=context)
    _exercise(library)
    registry = MetricsRegistry.from_stats(library.context.stats)
    cache = getattr(library.context, "plan_cache", None)
    registry.counter("engine.stats.plan_hits").inc(
        cache.hits if cache is not None else 0)
    registry.counter("engine.stats.plan_chain_hits").inc(
        cache.chain_hits if cache is not None else 0)
    registry.counter("engine.stats.plan_deopts").inc(
        cache.deopts if cache is not None else 0)
    for name, value in islands.stats().items():
        registry.counter(f"engine.stats.{name}").inc(value)
    snapshot = registry.snapshot()
    if args.json:
        json.dump(snapshot, out, indent=2, sort_keys=True)
        print(file=out)
    else:
        for name, value in snapshot.items():
            print(f"{name}: {value}", file=out)
    return 0


def cmd_islands(args: argparse.Namespace, out) -> int:
    """Inspect the constraint-graph islands of a design.

    Loads the design with an island index installed, then prints the
    partition: island count, sizes in deterministic order (largest
    first, ties by first member name), and — with ``--members`` — the
    variables of each island.  ``--json`` emits one JSON object.
    """
    from .core import install_islands

    context = reset_default_context()
    islands = install_islands(context)
    library = _load(args.design, context=context)
    _exercise(library)
    partition = islands.islands()
    summary = islands.stats()
    if args.json:
        report: Any = {
            "islands": summary["islands"],
            "largest_island": summary["largest_island"],
            "island_merges": summary["island_merges"],
            "island_splits": summary["island_splits"],
            "sizes": [len(group) for group in partition],
        }
        if args.members:
            report["members"] = [[v.qualified_name() for v in group]
                                 for group in partition]
        json.dump(report, out, indent=2, sort_keys=True)
        print(file=out)
        return 0
    print(f"{summary['islands']} island(s) in {library.name!r} "
          f"(largest {summary['largest_island']}, "
          f"merges {summary['island_merges']}, "
          f"splits {summary['island_splits']})", file=out)
    for index, group in enumerate(partition):
        print(f"  island {index}: {len(group)} variable(s)", file=out)
        if args.members:
            for variable in group:
                print(f"    {variable.qualified_name()}", file=out)
    return 0


def cmd_plancache_stats(args: argparse.Namespace, out) -> int:
    """Plan-cache behaviour under a hot-round workload on the design.

    Installs a :class:`~repro.core.plancache.PlanCache`, loads the
    design, builds its delay networks once, then re-asserts every
    concrete leaf delay characteristic ``--repeat`` times — the
    repeated-entry-variable pattern of interactive design work, which
    is what gets rounds traced, promoted and replayed.  The cache's
    counter block (hits, misses, promotions, deopts, ...) is printed in
    deterministic sorted order; with ``--json`` as one JSON object.
    """
    from .core import PlanCache

    context = reset_default_context()
    cache = PlanCache(context)
    library = _load(args.design, context=context)
    _exercise(library)
    hot_variables = [variable
                     for cell in library if not cell.subcells
                     for variable in cell.delays.values()
                     if variable.value is not None]
    passes = max(1, args.repeat)
    for _ in range(passes):
        for variable in hot_variables:
            variable.set(variable.value)
    stats = cache.stats()
    if args.json:
        json.dump(stats, out, indent=2, sort_keys=True)
        print(file=out)
    else:
        print(f"plan cache after {passes} pass(es) over "
              f"{len(hot_variables)} hot delay variable(s) "
              f"of {library.name!r}:", file=out)
        for name, value in stats.items():
            print(f"  {name}: {value}", file=out)
    return 0


def cmd_metrics(args: argparse.Namespace, out) -> int:
    """Full metrics-registry snapshot of loading + exercising the design."""
    from .obs import Observer

    context = reset_default_context()
    observer = Observer.metrics_only(context).install()
    try:
        library = _load(args.design, context=context)
        _exercise(library)
    finally:
        observer.uninstall()
    snapshot = observer.metrics.snapshot()
    if args.json:
        json.dump(snapshot, out, indent=2, sort_keys=True)
        print(file=out)
    else:
        for name, value in snapshot.items():
            print(f"{name}: {_render_metric(value)}", file=out)
    return 0


def _render_metric(value: Any) -> str:
    if not isinstance(value, dict):
        return str(value)
    if "count" in value:  # histogram: summarize, buckets stay in --json
        return (f"count={value['count']} sum={value['sum']:g} "
                f"min={value['min']:g} max={value['max']:g}")
    return (f"value={value['value']:g} min={value['min']:g} "
            f"max={value['max']:g}")


def cmd_profile(args: argparse.Namespace, out) -> int:
    """Hot-constraint profile of loading + exercising the design."""
    from .obs import Observer, write_chrome_trace

    context = reset_default_context()
    observer = Observer.full(context).install()
    try:
        library = _load(args.design, context=context)
        _exercise(library)
    finally:
        observer.uninstall()
    print(f"hottest constraints of {library.name!r} "
          f"(top {args.top} by cumulative dispatch time):", file=out)
    print(observer.profiler.render(args.top), file=out)
    if args.trace:
        write_chrome_trace(args.trace, observer.spans,
                           metadata={"design": args.design})
        print(f"chrome trace: {args.trace} "
              f"({len(observer.spans.spans)} span(s)) — load in "
              f"chrome://tracing or https://ui.perfetto.dev", file=out)
    return 0


def _sweep_candidates(args: argparse.Namespace) -> List[float]:
    if args.values is not None:
        try:
            return [float(item) for item in args.values.split(",") if item]
        except ValueError:
            raise SystemExit(f"error: --values must be comma-separated "
                             f"numbers, got {args.values!r}")
    spec = args.range
    parts = spec.split(":")
    if len(parts) not in (2, 3):
        raise SystemExit(f"error: --range must be START:STOP[:STEP], "
                         f"got {spec!r}")
    try:
        start, stop = float(parts[0]), float(parts[1])
        step = float(parts[2]) if len(parts) == 3 else 1.0
    except ValueError:
        raise SystemExit(f"error: --range must be numeric, got {spec!r}")
    if step <= 0 or stop < start:
        raise SystemExit("error: --range needs STOP >= START and STEP > 0")
    count = int((stop - start) / step) + 1
    return [start + index * step for index in range(count)]


def cmd_sweep(args: argparse.Namespace, out) -> int:
    """Vectorized what-if sweep of one cell variable.

    Compiles the variable's constraint network into a straight-line
    :class:`~repro.core.sweep.SweepPlan` and evaluates every candidate
    binding in one pass — N what-if questions answered without mutating
    the design or running N propagation rounds.  Exit status is 0 when
    at least one candidate satisfies every checked constraint.
    """
    from .core.sweep import SweepError, compile_sweep

    library = _load(args.design)
    _exercise(library)
    cell = library.cell(args.cell)
    owner = _find_instance(cell, args.instance) if args.instance else cell
    if args.var not in owner.variables:
        where = (f"instance {args.instance!r} of cell {args.cell!r}"
                 if args.instance else f"cell {args.cell!r}")
        raise SystemExit(f"error: {where} has no variable {args.var!r}; "
                         f"have {sorted(owner.variables)}")
    variable = owner.variables[args.var]
    candidates = _sweep_candidates(args)
    if not candidates:
        raise SystemExit("error: no candidate values to sweep")
    try:
        plan = compile_sweep([variable], context=library.context)
        result = plan.run(candidates, backend=args.backend)
    except SweepError as error:
        raise SystemExit(f"error: {error}")
    outputs = result.as_dict()
    mask = [bool(flag) for flag in result.mask]
    if args.json:
        json.dump({"backend": result.backend, "cell": args.cell,
                   "var": args.var, "candidates": candidates,
                   "outputs": {name: list(column)
                               for name, column in outputs.items()},
                   "satisfied": mask,
                   "satisfied_count": result.satisfied_count},
                  out, indent=2, sort_keys=True)
        print(file=out)
        return 0 if result.satisfied_count else 1
    names = sorted(outputs)
    print(f"sweep of {args.cell}.{args.var} over {len(candidates)} "
          f"candidate(s) [{result.backend} backend]:", file=out)
    print("  ".join([f"{args.var:>12}"] + [f"{name:>16}" for name in names]
                    + ["ok"]), file=out)
    for index, candidate in enumerate(candidates):
        row = [f"{candidate:>12g}"]
        row += [f"{outputs[name][index]:>16g}" for name in names]
        row.append("yes" if mask[index] else "NO")
        print("  ".join(row), file=out)
    print(f"{result.satisfied_count}/{len(candidates)} candidate(s) "
          f"satisfy every constraint", file=out)
    return 0 if result.satisfied_count else 1


def cmd_serve(args: argparse.Namespace, out) -> int:
    """Serve durable design sessions over newline-delimited JSON.

    Prints one ``listening on host:port`` line (the port is allocated by
    the OS when ``--port 0``) and then blocks until a ``shutdown``
    request or Ctrl-C.  Crash-safety comes from the sessions' own
    write-ahead journals — ``kill -9`` loses no acknowledged mutation.
    """
    import asyncio

    from .session.server import SessionServer

    round_budget = None
    if args.round_budget_steps is not None \
            or args.round_budget_seconds is not None:
        from .core import RoundBudget
        round_budget = RoundBudget(max_steps=args.round_budget_steps,
                                   max_seconds=args.round_budget_seconds)
    server = SessionServer(args.root, host=args.host, port=args.port,
                           fsync=args.fsync,
                           request_timeout=args.request_timeout,
                           max_frame_bytes=args.max_frame_bytes,
                           max_connections=args.max_connections,
                           drain_timeout=args.drain_timeout,
                           round_budget=round_budget,
                           island_workers=args.island_workers,
                           store=args.store)

    async def run() -> None:
        await server.start()
        print(f"repro session server listening on "
              f"{server.host}:{server.port} "
              f"(root={args.root} fsync={args.fsync})", file=out)
        out.flush()
        await server.run()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    return 0


def cmd_fleet_worker(args: argparse.Namespace, out) -> int:
    """Serve one fleet worker (a session server + replication frames).

    Prints the same ``listening on host:port`` banner as ``serve`` so
    harnesses can parse the allocated port, then blocks.
    """
    import asyncio

    from .fleet.worker import WorkerServer

    server = WorkerServer(args.root, worker_id=args.id, host=args.host,
                          port=args.port, fsync=args.fsync,
                          request_timeout=args.request_timeout,
                          store=args.store)

    async def run() -> None:
        await server.start()
        print(f"repro fleet worker {args.id} listening on "
              f"{server.host}:{server.port} "
              f"(root={args.root} fsync={args.fsync})", file=out)
        out.flush()
        await server.run()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    return 0


def cmd_fleet(args: argparse.Namespace, out) -> int:
    """Run a whole fleet: N worker subprocesses plus the router.

    Each worker gets its own root directory ``<root>/w<i>`` (its own
    "disk").  The router prints one ``fleet router listening on
    host:port`` banner once every worker is up, and terminates the
    workers when it stops.  Clients speak to the router exactly as they
    would to a single ``repro serve`` — sharding, replication and
    failover are invisible.
    """
    import asyncio
    import re
    import signal
    import subprocess
    import sys

    from .fleet.router import Router

    procs = []
    addresses = {}
    try:
        for index in range(args.workers):
            worker_id = f"w{index}"
            worker_root = os.path.join(args.root, worker_id)
            argv = [sys.executable, "-m", "repro.cli", "fleet-worker",
                    "--root", worker_root, "--id", worker_id,
                    "--host", args.host, "--port", "0",
                    "--fsync", args.fsync]
            if args.store is not None:
                argv += ["--store", args.store]
            proc = subprocess.Popen(
                argv,
                env={**os.environ,
                     "PYTHONPATH": os.pathsep.join(sys.path)},
                stdout=subprocess.PIPE, text=True)
            procs.append(proc)
            banner = proc.stdout.readline()
            match = re.search(r"listening on ([\d.]+):(\d+)", banner)
            if not match:
                raise SystemExit(
                    f"error: worker {worker_id} failed to start "
                    f"(banner: {banner!r})")
            addresses[worker_id] = (match.group(1), int(match.group(2)))
        router = Router(addresses, host=args.host, port=args.port,
                        replication=args.replication,
                        repl_interval=args.repl_interval,
                        request_timeout=args.request_timeout)

        async def run() -> None:
            await router.start()
            print(f"repro fleet router listening on "
                  f"{router.host}:{router.port} "
                  f"(workers={args.workers} root={args.root} "
                  f"replication={args.replication})", file=out)
            out.flush()
            await router.run()

        try:
            asyncio.run(run())
        except KeyboardInterrupt:
            pass
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
        for proc in procs:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()
    return 0


def cmd_session_verify(args: argparse.Namespace, out) -> int:
    """Recover a session read-only and report what the journal holds.

    With ``--fingerprint`` the canonical state digest (values,
    justifications, violations, stats) is printed as JSON — comparing
    two of these is how the test suite asserts replay determinism.
    """
    from .session import Session
    from .store import resolve_store

    store = resolve_store(args.store, args.root)
    session_store = store.session(args.name)
    if not session_store.exists():
        raise SystemExit(f"error: no session {args.name!r} in "
                         f"{store.location!r}")
    with Session(args.name, store=session_store,
                 read_only=True) as session:
        if args.fingerprint:
            json.dump(session.fingerprint(), out, indent=2, sort_keys=True)
            print(file=out)
        else:
            print(f"session {session.name!r}: position={session.position} "
                  f"replayed={session.replayed_entries} "
                  f"vars={len(session.vars)} "
                  f"constraints={len(session.constraints)} "
                  f"violations={len(session.violations)}", file=out)
    store.close()
    return 0


def cmd_store_scrub(args: argparse.Namespace, out) -> int:
    """Verify (and repair) a session's durable state in any backend.

    Walks every checkpoint and journal segment, truncates a torn tail,
    and — with ``--repair-from`` naming a healthy twin store (say, a
    fleet follower's root) — re-ships damaged or missing sequence
    ranges from it.  Exits 1 when damage remains.
    """
    from .store import resolve_store
    from .store.scrub import scrub_session

    store = resolve_store(args.store, args.root)
    session_store = store.session(args.session)
    if not session_store.exists():
        raise SystemExit(f"error: no session {args.session!r} in "
                         f"{store.location!r}")
    source_store = None
    source = None
    if args.repair_from:
        source_store = resolve_store(args.repair_from, args.root)
        source = source_store.session(args.session)
    report = scrub_session(session_store, source=source,
                           repair=not args.check)
    report["session"] = args.session
    if args.json:
        json.dump(report, out, indent=2, sort_keys=True)
        print(file=out)
    else:
        state = ("clean" if report["clean"]
                 else "repaired" if report["ok"] else "damaged")
        print(f"session {args.session!r} [{report['backend']}]: {state} "
              f"(segments={report['segments']} "
              f"entries={report['entries']} "
              f"checkpoints={report['checkpoints']})", file=out)
        for finding in report["damage"]:
            print(f"  damage: {finding}", file=out)
        for finding in report["repaired"]:
            print(f"  repaired: {finding}", file=out)
        for need in report["needs"]:
            print(f"  needs re-ship: after={need['after']} "
                  f"until={need['until']}", file=out)
    store.close()
    if source_store is not None:
        source_store.close()
    return 0 if report["ok"] else 1


def cmd_store_compact(args: argparse.Namespace, out) -> int:
    """Fold cold journal segments of a closed session into a checkpoint.

    Replays the session up to a segment boundary, publishes that state
    as a checkpoint, and prunes the segments it covers — recovery cost
    stays proportional to the hot tail.  Never run this against a
    session a live server currently has open.
    """
    from .store import resolve_store
    from .store.compact import compact_session

    store = resolve_store(args.store, args.root)
    session_store = store.session(args.session)
    if not session_store.exists():
        raise SystemExit(f"error: no session {args.session!r} in "
                         f"{store.location!r}")
    report = compact_session(session_store, name=args.session,
                             keep_segments=args.keep_segments,
                             keep_checkpoints=args.keep_checkpoints)
    if args.json:
        json.dump(report, out, indent=2, sort_keys=True)
        print(file=out)
    elif report["performed"]:
        print(f"session {args.session!r}: checkpoint at "
              f"seq {report['checkpoint_seq']}, pruned "
              f"{len(report['pruned_segments'])} segment(s)", file=out)
    else:
        reason = report.get("error", "nothing to fold")
        print(f"session {args.session!r}: no compaction ({reason})",
              file=out)
    store.close()
    return 0


# -- entry point ----------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Analyses over persisted IC design libraries")
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", help="library statistics")
    p_info.add_argument("design")
    p_info.set_defaults(fn=cmd_info)

    p_tree = sub.add_parser("tree", help="inheritance forest")
    p_tree.add_argument("design")
    p_tree.set_defaults(fn=cmd_tree)

    p_erc = sub.add_parser("erc", help="electrical rule check")
    p_erc.add_argument("design")
    p_erc.add_argument("--cell", help="check only this cell")
    p_erc.set_defaults(fn=cmd_erc)

    p_net = sub.add_parser("netlist", help="extract a SPICE net-list")
    p_net.add_argument("design")
    p_net.add_argument("--cell", required=True)
    p_net.set_defaults(fn=cmd_netlist)

    p_delay = sub.add_parser("delay", help="evaluate a delay characteristic")
    p_delay.add_argument("design")
    p_delay.add_argument("--cell", required=True)
    p_delay.add_argument("--source", required=True)
    p_delay.add_argument("--dest", required=True)
    p_delay.add_argument("--max", type=float, default=None,
                         help="fail when the delay exceeds this bound")
    p_delay.set_defaults(fn=cmd_delay)

    p_select = sub.add_parser("select", help="module selection for a "
                                             "generic instance")
    p_select.add_argument("design")
    p_select.add_argument("--cell", required=True,
                          help="the containing composite cell")
    p_select.add_argument("--instance", required=True,
                          help="the generic subcell instance name")
    p_select.add_argument("--rank", action="store_true",
                          help="rank valid realizations by merit")
    p_select.set_defaults(fn=cmd_select)

    p_search = sub.add_parser("search", help="parallel module-selection "
                                             "search over computation "
                                             "spaces")
    p_search.add_argument("design")
    p_search.add_argument("--cell", required=True,
                          help="cell containing the generic instance")
    p_search.add_argument("--instance", required=True,
                          help="name of the generic instance")
    p_search.add_argument("--workers", type=int, default=1,
                          help="parallel evaluators (default 1)")
    p_search.add_argument("--backend", default="auto",
                          choices=("auto", "serial", "thread", "fork"),
                          help="evaluation backend (default auto)")
    p_search.add_argument("--no-prune", action="store_true",
                          help="disable generic-subtree pruning")
    p_search.set_defaults(fn=cmd_search)

    p_browse = sub.add_parser("browse", help="cell browser panes for a cell")
    p_browse.add_argument("design")
    p_browse.add_argument("--cell", required=True)
    p_browse.set_defaults(fn=cmd_browse)

    p_stats = sub.add_parser("stats", help="propagation statistics")
    p_stats.add_argument("design")
    p_stats.add_argument("--json", action="store_true",
                         help="machine-readable JSON snapshot")
    p_stats.set_defaults(fn=cmd_stats)

    p_islands = sub.add_parser("islands", help="constraint-graph island "
                                               "partition of a design")
    p_islands.add_argument("design")
    p_islands.add_argument("--members", action="store_true",
                           help="list each island's variables")
    p_islands.add_argument("--json", action="store_true",
                           help="machine-readable JSON report")
    p_islands.set_defaults(fn=cmd_islands)

    p_plan = sub.add_parser("plancache-stats",
                            help="plan-cache hit/miss/deopt counters while "
                                 "repeatedly exercising the design")
    p_plan.add_argument("design")
    p_plan.add_argument("--repeat", type=int, default=5,
                        help="re-assertion passes (repeats make rounds hot: "
                             "register, trace twice, promote, replay)")
    p_plan.add_argument("--json", action="store_true",
                        help="machine-readable JSON snapshot")
    p_plan.set_defaults(fn=cmd_plancache_stats)

    p_metrics = sub.add_parser("metrics", help="observability metrics "
                                               "snapshot (counters, gauges, "
                                               "histograms)")
    p_metrics.add_argument("design")
    p_metrics.add_argument("--json", action="store_true",
                           help="machine-readable JSON snapshot")
    p_metrics.set_defaults(fn=cmd_metrics)

    p_profile = sub.add_parser("profile", help="hot-constraint profile "
                                               "and optional Chrome trace")
    p_profile.add_argument("design")
    p_profile.add_argument("--top", type=int, default=10,
                           help="number of constraints to report")
    p_profile.add_argument("--trace", metavar="PATH",
                           help="write a Chrome-trace JSON (chrome://tracing "
                                "/ Perfetto) to PATH")
    p_profile.set_defaults(fn=cmd_profile)

    p_sweep = sub.add_parser("sweep", help="vectorized what-if sweep of "
                                           "one cell variable")
    p_sweep.add_argument("design")
    p_sweep.add_argument("--cell", required=True,
                         help="cell owning the swept variable")
    p_sweep.add_argument("--var", required=True,
                         help="cell (or instance) variable name to sweep")
    p_sweep.add_argument("--instance", default=None,
                         help="sweep a variable of this subcell instance "
                              "instead of the cell itself")
    group = p_sweep.add_mutually_exclusive_group(required=True)
    group.add_argument("--values",
                       help="comma-separated candidate values")
    group.add_argument("--range", metavar="START:STOP[:STEP]",
                       help="inclusive numeric candidate range")
    p_sweep.add_argument("--backend", default="auto",
                         choices=["auto", "numpy", "python"],
                         help="array backend (auto picks numpy when "
                              "importable)")
    p_sweep.add_argument("--json", action="store_true",
                         help="machine-readable JSON result")
    p_sweep.set_defaults(fn=cmd_sweep)

    p_serve = sub.add_parser("serve", help="serve durable design sessions "
                             "over newline-delimited JSON")
    p_serve.add_argument("--root", required=True,
                         help="directory holding one subdirectory per "
                         "session (journal + checkpoints)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=0,
                         help="TCP port (0 lets the OS choose; the chosen "
                         "port is printed on startup)")
    p_serve.add_argument("--fsync", default="always",
                         choices=["always", "rotate", "never"],
                         help="journal durability policy")
    p_serve.add_argument("--request-timeout", type=float, default=30.0)
    p_serve.add_argument("--max-connections", type=int, default=64,
                         help="client connection limit; excess accepts "
                              "get a graceful 'overloaded' frame")
    p_serve.add_argument("--max-frame-bytes", type=int, default=1 << 20,
                         help="request frame size limit; oversized frames "
                              "answer 'bad-request' and are discarded")
    p_serve.add_argument("--round-budget-steps", type=int, default=None,
                         help="propagation watchdog: abort any round "
                              "dispatching more than N events")
    p_serve.add_argument("--round-budget-seconds", type=float, default=None,
                         help="propagation watchdog: abort any round "
                              "running longer than S seconds")
    p_serve.add_argument("--drain-timeout", type=float, default=5.0,
                         help="seconds to let in-flight requests finish "
                              "on shutdown")
    p_serve.add_argument("--island-workers", type=int, default=None,
                         help="drain disjoint constraint-graph islands of "
                              "a batch concurrently on N threads (0/1 = "
                              "serial island rounds; default leaves "
                              "batches fused)")
    p_serve.add_argument("--store", default=None, metavar="BACKEND[:PATH]",
                         help="durable storage backend: file (default), "
                              "sqlite[:db-path] or object[:bucket-path]")
    p_serve.set_defaults(fn=cmd_serve)

    p_fworker = sub.add_parser("fleet-worker", help="serve one fleet "
                               "worker (session server + replication "
                               "frames)")
    p_fworker.add_argument("--root", required=True,
                           help="this worker's own session root")
    p_fworker.add_argument("--id", required=True,
                           help="worker id (its name on the hash ring)")
    p_fworker.add_argument("--host", default="127.0.0.1")
    p_fworker.add_argument("--port", type=int, default=0)
    p_fworker.add_argument("--fsync", default="always",
                           choices=["always", "rotate", "never"])
    p_fworker.add_argument("--request-timeout", type=float, default=30.0)
    p_fworker.add_argument("--store", default=None,
                           metavar="BACKEND[:PATH]",
                           help="durable storage backend: file (default), "
                                "sqlite[:db-path] or object[:bucket-path]")
    p_fworker.set_defaults(fn=cmd_fleet_worker)

    p_fleet = sub.add_parser("fleet", help="run a sharded session fleet: "
                             "N worker subprocesses plus the router")
    p_fleet.add_argument("--root", required=True,
                         help="fleet root; each worker owns <root>/w<i>")
    p_fleet.add_argument("--workers", type=int, default=2)
    p_fleet.add_argument("--host", default="127.0.0.1")
    p_fleet.add_argument("--port", type=int, default=0,
                         help="router TCP port (0 lets the OS choose)")
    p_fleet.add_argument("--fsync", default="always",
                         choices=["always", "rotate", "never"],
                         help="journal durability policy on every worker")
    p_fleet.add_argument("--replication", default="sync",
                         choices=["sync", "async"],
                         help="ship WAL lines before acknowledging "
                              "(sync) or on a timer only (async)")
    p_fleet.add_argument("--repl-interval", type=float, default=0.25,
                         help="background replication pass interval "
                              "(checkpoints + gap repair); 0 disables")
    p_fleet.add_argument("--request-timeout", type=float, default=30.0)
    p_fleet.add_argument("--store", default=None, metavar="BACKEND[:PATH]",
                         help="durable storage backend on every worker "
                              "(relative locations resolve under each "
                              "worker's own root)")
    p_fleet.set_defaults(fn=cmd_fleet)

    p_sverify = sub.add_parser("session-verify", help="recover a session "
                               "read-only and report its state")
    p_sverify.add_argument("--root", required=True)
    p_sverify.add_argument("--name", required=True)
    p_sverify.add_argument("--fingerprint", action="store_true",
                           help="print the canonical state digest as JSON")
    p_sverify.add_argument("--store", default=None,
                           metavar="BACKEND[:PATH]",
                           help="durable storage backend: file (default), "
                                "sqlite[:db-path] or object[:bucket-path]")
    p_sverify.set_defaults(fn=cmd_session_verify)

    p_scrub = sub.add_parser("store-scrub", help="verify (and repair) a "
                             "session's durable state in any backend")
    p_scrub.add_argument("--root", required=True)
    p_scrub.add_argument("--session", required=True)
    p_scrub.add_argument("--store", default=None, metavar="BACKEND[:PATH]",
                         help="backend holding the session (file default)")
    p_scrub.add_argument("--repair-from", default=None,
                         metavar="BACKEND[:PATH]",
                         help="healthy twin store (e.g. a fleet "
                              "follower's root) to re-ship damaged or "
                              "missing ranges from")
    p_scrub.add_argument("--check", action="store_true",
                         help="report only; repair nothing")
    p_scrub.add_argument("--json", action="store_true",
                         help="print the full scrub report as JSON")
    p_scrub.set_defaults(fn=cmd_store_scrub)

    p_compact = sub.add_parser("store-compact", help="fold cold journal "
                               "segments of a closed session into a "
                               "checkpoint")
    p_compact.add_argument("--root", required=True)
    p_compact.add_argument("--session", required=True)
    p_compact.add_argument("--store", default=None,
                           metavar="BACKEND[:PATH]",
                           help="backend holding the session (file "
                                "default)")
    p_compact.add_argument("--keep-segments", type=int, default=1,
                           help="newest segments to keep as the "
                                "replayable hot tail")
    p_compact.add_argument("--keep-checkpoints", type=int, default=2)
    p_compact.add_argument("--json", action="store_true",
                           help="print the compaction report as JSON")
    p_compact.set_defaults(fn=cmd_store_compact)
    return parser


def main(argv: Optional[List[str]] = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args, out)
    except BrokenPipeError:
        return 0  # downstream consumer (head, less) closed the pipe
    except (KeyError, ValueError, json.JSONDecodeError) as error:
        # user-input errors get one clean line, not a traceback
        message = error.args[0] if error.args else str(error)
        print(f"error: {message}", file=sys.stderr)
        return 2
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
