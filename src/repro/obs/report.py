"""Benchmark reporting — the perf trajectory's file format.

``BENCH_PROP.json`` records, per benchmark, the statistics that matter
for regression tracking (median first — the robust central tendency
pytest-benchmark recommends comparing), in a deterministic, diff-friendly
layout.  The ``benchmarks/`` conftest emits it at session end; CI uploads
it as an artifact so every PR leaves a comparable perf sample behind.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from typing import Any, Dict, Iterable, Optional

__all__ = ["BenchReport", "write_bench_report", "SCHEMA"]

SCHEMA = "repro-bench/1"


class BenchReport:
    """An accumulating set of per-benchmark summary statistics."""

    def __init__(self, *, source: str = "pytest-benchmark") -> None:
        self.source = source
        self._entries: Dict[str, Dict[str, Any]] = {}

    def record(self, name: str, *, median_s: float,
               mean_s: Optional[float] = None,
               stddev_s: Optional[float] = None,
               min_s: Optional[float] = None,
               rounds: Optional[int] = None,
               group: Optional[str] = None,
               extra: Optional[Dict[str, Any]] = None) -> None:
        entry: Dict[str, Any] = {"median_us": _us(median_s)}
        if mean_s is not None:
            entry["mean_us"] = _us(mean_s)
        if stddev_s is not None:
            entry["stddev_us"] = _us(stddev_s)
        if min_s is not None:
            entry["min_us"] = _us(min_s)
        if rounds is not None:
            entry["rounds"] = rounds
        if group is not None:
            entry["group"] = group
        if extra:
            entry["extra"] = {key: extra[key] for key in sorted(extra)}
        self._entries[name] = entry

    def merge_previous(self, path: str) -> int:
        """Fold an earlier report's benchmarks under this one.

        Entries already recorded in this report win; only benchmarks the
        current session did *not* run are carried over.  This is what
        keeps ``BENCH_PROP.json`` cumulative when suites run as separate
        pytest invocations (CI's save/compare steps re-run single files):
        without it each invocation's session-end write would keep only
        the last suite's benchmarks.  A missing, truncated or
        foreign-schema file merges nothing.  Returns the number of
        entries carried over.
        """
        try:
            with open(path) as handle:
                previous = json.load(handle)
        except (OSError, ValueError):
            return 0
        if not isinstance(previous, dict) or previous.get("schema") != SCHEMA:
            return 0
        carried = 0
        benchmarks = previous.get("benchmarks")
        if isinstance(benchmarks, dict):
            for name, entry in benchmarks.items():
                if name not in self._entries and isinstance(entry, dict):
                    self._entries[name] = entry
                    carried += 1
        return carried

    @classmethod
    def from_pytest_benchmarks(cls, benchmarks: Iterable[Any]) -> "BenchReport":
        """Build a report from a pytest-benchmark session's fixtures.

        Tolerates the stats living either directly on the benchmark
        object (``bench.stats.median``) or one level down
        (``bench.stats.stats.median``), which differs across
        pytest-benchmark versions and run modes.
        """
        report = cls()
        for bench in benchmarks:
            stats = _stats_of(bench)
            if stats is None:
                continue
            median = getattr(stats, "median", None)
            if median is None:
                continue
            report.record(
                getattr(bench, "name", repr(bench)),
                median_s=median,
                mean_s=getattr(stats, "mean", None),
                stddev_s=getattr(stats, "stddev", None),
                min_s=getattr(stats, "min", None),
                rounds=getattr(stats, "rounds", None),
                group=getattr(bench, "group", None),
                extra=getattr(bench, "extra_info", None),
            )
        return report

    def __len__(self) -> int:
        return len(self._entries)

    def to_dict(self) -> Dict[str, Any]:
        """Plain data, keys sorted — deterministic for a given sample."""
        return {
            "schema": SCHEMA,
            "source": self.source,
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "benchmarks": {name: self._entries[name]
                           for name in sorted(self._entries)},
        }

    def write(self, path: str) -> str:
        """Write atomically (temp file + ``os.replace``) so an
        interrupted run can never leave a truncated report for the CI
        compare step to choke on."""
        temp = f"{path}.tmp.{os.getpid()}"
        try:
            with open(temp, "w") as handle:
                json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
                handle.write("\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp, path)
        finally:
            if os.path.exists(temp):
                os.remove(temp)
        return path


def write_bench_report(path: str, benchmarks: Iterable[Any], *,
                       merge: bool = True) -> Optional[str]:
    """Write ``BENCH_PROP``-style JSON for a benchmark session.

    With ``merge`` (the default) benchmarks already present in ``path``
    but not re-run this session are carried over, so partial runs (a
    single suite, a ``-k`` filter) accumulate into one trajectory file
    instead of clobbering each other.  Returns the path written, or
    ``None`` when no benchmark produced usable statistics (e.g. a
    ``--benchmark-disable`` run).
    """
    report = BenchReport.from_pytest_benchmarks(benchmarks)
    if not len(report):
        return None
    if merge:
        report.merge_previous(path)
    return report.write(path)


def _stats_of(bench: Any) -> Optional[Any]:
    stats = getattr(bench, "stats", None)
    if stats is None:
        return None
    if getattr(stats, "median", None) is not None:
        return stats
    inner = getattr(stats, "stats", None)
    if inner is not None and getattr(inner, "median", None) is not None:
        return inner
    return None


def _us(seconds: float) -> float:
    return round(seconds * 1e6, 3)
