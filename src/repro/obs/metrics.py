"""Metrics primitives and the metrics registry.

The thesis measures its efficiency claims (agenda deferral E2,
hierarchical sharing E6, linear complexity E16) through ad-hoc counters;
:class:`~repro.core.engine.PropagationStats` mirrors that — nine integers
and nothing else.  Engine-optimisation literature (Schulte & Stuckey,
"Efficient Constraint Propagation Engines") argues that scheduling
variants are only comparable under fine-grained cost measurement of
propagator invocations and queue behaviour.  This module provides the
vocabulary for that measurement:

* :class:`Counter` — a monotone event count;
* :class:`Gauge` — a last-value sample with observed min/max;
* :class:`Histogram` — a fixed-bucket distribution (round latencies,
  wavefront depths, agenda queue lengths) with count/sum/min/max;
* :class:`MetricsRegistry` — a name-addressed collection of the above
  with create-on-first-use accessors and ``snapshot``/``diff``/``merge``
  APIs producing plain, deterministically ordered dictionaries.

A registry does nothing by itself: it is fed by an
:class:`~repro.obs.observer.Observer` installed on a propagation
context.  With no observer installed the engine pays one attribute check
per dispatch — the same discipline as the tracer.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional, Tuple

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "LATENCY_BUCKETS_US", "DEPTH_BUCKETS", "QUEUE_BUCKETS",
]

#: Default bucket upper bounds (inclusive) for latency histograms, in
#: microseconds; an implicit +inf bucket catches the tail.
LATENCY_BUCKETS_US: Tuple[float, ...] = (
    1, 2.5, 5, 10, 25, 50, 100, 250, 500,
    1_000, 2_500, 5_000, 10_000, 25_000, 50_000,
    100_000, 250_000, 1_000_000,
)

#: Default buckets for wavefront depth (max queue length in a round).
DEPTH_BUCKETS: Tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1_024, 4_096, 16_384, 65_536,
)

#: Default buckets for agenda queue lengths observed at enqueue time.
QUEUE_BUCKETS: Tuple[float, ...] = (0, 1, 2, 4, 8, 16, 32, 64, 128, 512)


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "value")
    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def snapshot(self) -> int:
        return self.value

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A last-value sample, remembering the observed extremes."""

    __slots__ = ("name", "value", "min", "max")
    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Optional[float] = None
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def snapshot(self) -> Dict[str, Any]:
        return {"value": self.value, "min": self.min, "max": self.max}

    def reset(self) -> None:
        self.value = self.min = self.max = None

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self.value})"


class Histogram:
    """A fixed-bucket distribution.

    ``buckets`` are inclusive upper bounds in ascending order; every
    observation beyond the last bound lands in the implicit ``+inf``
    bucket.  Bucket counts are cumulative-free (each observation lands in
    exactly one bucket), which keeps ``diff`` and ``merge`` trivial.
    """

    __slots__ = ("name", "buckets", "counts", "count", "total",
                 "min", "max")
    kind = "histogram"

    def __init__(self, name: str,
                 buckets: Iterable[float] = LATENCY_BUCKETS_US) -> None:
        self.name = name
        self.buckets: Tuple[float, ...] = tuple(buckets)
        if list(self.buckets) != sorted(self.buckets) or not self.buckets:
            raise ValueError(f"histogram {name!r}: bucket bounds must be "
                             f"non-empty and ascending")
        self.counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        index = _bucket_index(self.buckets, value)
        self.counts[index] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def bucket_labels(self) -> Tuple[str, ...]:
        return tuple(f"<={_fmt(bound)}" for bound in self.buckets) + ("+inf",)

    def quantile(self, q: float) -> Optional[float]:
        """Bucket-resolution estimate of the q-quantile (0 <= q <= 1)."""
        if not self.count:
            return None
        rank = q * self.count
        running = 0
        for index, bucket_count in enumerate(self.counts):
            running += bucket_count
            if running >= rank and bucket_count:
                if index < len(self.buckets):
                    return self.buckets[index]
                return self.max
        return self.max

    def snapshot(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": dict(zip(self.bucket_labels(), self.counts)),
        }

    def reset(self) -> None:
        self.counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.total = 0.0
        self.min = self.max = None

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count})"


def _bucket_index(buckets: Tuple[float, ...], value: float) -> int:
    """Binary search for the first bound >= value (``+inf`` is last)."""
    lo, hi = 0, len(buckets)
    while lo < hi:
        mid = (lo + hi) // 2
        if value <= buckets[mid]:
            hi = mid
        else:
            lo = mid + 1
    return lo


def _fmt(bound: float) -> str:
    return f"{bound:g}"


class MetricsRegistry:
    """A name-addressed collection of counters, gauges and histograms.

    Accessors create the metric on first use and return the existing
    instance thereafter; asking for an existing name as a different
    metric kind raises ``TypeError``.  ``snapshot`` returns plain data —
    nested dicts and numbers, keys sorted — so snapshots serialize
    deterministically and compare structurally.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}

    # -- accessors ---------------------------------------------------------

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, lambda: Gauge(name))

    def histogram(self, name: str,
                  buckets: Iterable[float] = LATENCY_BUCKETS_US) -> Histogram:
        return self._get(name, Histogram, lambda: Histogram(name, buckets))

    def _get(self, name: str, kind: type, factory: Any) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif type(metric) is not kind:
            raise TypeError(f"metric {name!r} already registered as "
                            f"{metric.kind}, not {kind.__name__.lower()}")
        return metric

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._metrics))

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    # -- snapshot / diff / merge -------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Plain-data state of every metric, keys sorted."""
        return {name: self._metrics[name].snapshot()
                for name in sorted(self._metrics)}

    @staticmethod
    def diff(before: Dict[str, Any], after: Dict[str, Any]) -> Dict[str, Any]:
        """Structural ``after - before`` of two snapshots.

        Numbers subtract (missing keys count as zero); ``min``/``max``/
        ``value`` entries — point samples, for which a difference is
        meaningless — take the *after* side verbatim.
        """
        return _combine(before, after, _sub)

    @staticmethod
    def merge(left: Dict[str, Any], right: Dict[str, Any]) -> Dict[str, Any]:
        """Structural union of two snapshots (e.g. from sharded runs).

        Counts and sums add; ``min`` entries take the smaller, ``max``
        the larger, ``value`` the right-hand (later) sample.
        """
        return _combine(left, right, _add)

    def reset(self) -> None:
        for metric in self._metrics.values():
            metric.reset()

    # -- interop with the engine's PropagationStats -------------------------

    @classmethod
    def from_stats(cls, stats: Any, prefix: str = "engine.stats."
                   ) -> "MetricsRegistry":
        """Import a :class:`PropagationStats` block as counters.

        The bridge that lets ``PropagationStats`` consumers (the CLI's
        ``stats`` command) reuse the registry's snapshot formatting.
        """
        registry = cls()
        for name, value in stats.snapshot().items():
            registry.counter(prefix + name).inc(value)
        return registry

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self._metrics)} metric(s))"


#: Keys whose values are point samples, not accumulations.
_POINT_KEYS = frozenset({"min", "max", "value"})


def _sub(key: str, left: Any, right: Any) -> Any:
    if key in _POINT_KEYS:
        return right
    return (right or 0) - (left or 0)


def _add(key: str, left: Any, right: Any) -> Any:
    if key == "min":
        candidates = [v for v in (left, right) if v is not None]
        return min(candidates) if candidates else None
    if key == "max":
        candidates = [v for v in (left, right) if v is not None]
        return max(candidates) if candidates else None
    if key == "value":
        return right if right is not None else left
    return (left or 0) + (right or 0)


def _combine(left: Any, right: Any, op: Any, key: str = "") -> Any:
    if isinstance(left, dict) or isinstance(right, dict):
        left = left if isinstance(left, dict) else {}
        right = right if isinstance(right, dict) else {}
        return {k: _combine(left.get(k), right.get(k), op, k)
                for k in sorted(set(left) | set(right))}
    return op(key, left, right)
