"""Hot-constraint profiler — who burns the propagation budget?

Aggregates, per constraint instance, how many times it fired (eager
activations plus scheduled inference runs) and how much wall-clock time
those firings cost, together with the constraint's *provenance*: the
cells/objects that own its argument variables, so a hot constraint in a
deep hierarchy is attributable to its network.  ``top(n)`` returns the
heaviest constraints by cumulative time; :meth:`render` formats the
classic profiler table.

Fed by an :class:`~repro.obs.observer.Observer`; the engine's dispatch
site times each ``propagate_variable``/``propagate_scheduled`` call with
two ``perf_counter`` readings, so the profile reflects the inference
bodies themselves (a callee's time is also inside its caller's round).
"""

from __future__ import annotations

from typing import Any, Dict, List, NamedTuple, Optional

__all__ = ["ProfileEntry", "HotConstraintProfiler"]


class ProfileEntry(NamedTuple):
    constraint: Any
    type_name: str
    description: str   # best-effort identification of the instance
    provenance: str    # owning cells / parents of the argument variables
    activations: int   # eager propagate_variable dispatches
    inferences: int    # scheduled propagate_scheduled runs
    total_us: float    # cumulative wall-clock across both
    mean_us: float

    @property
    def fires(self) -> int:
        return self.activations + self.inferences


class _Record:
    __slots__ = ("constraint", "activations", "inferences", "total")

    def __init__(self, constraint: Any) -> None:
        self.constraint = constraint
        self.activations = 0
        self.inferences = 0
        self.total = 0.0


class HotConstraintProfiler:
    """Per-constraint fire counts and cumulative dispatch time."""

    def __init__(self) -> None:
        self._records: Dict[int, _Record] = {}

    # -- feeding (called by the Observer) ----------------------------------

    def record_activation(self, constraint: Any, duration_s: float) -> None:
        record = self._record_for(constraint)
        record.activations += 1
        record.total += duration_s

    def record_inference(self, constraint: Any, duration_s: float) -> None:
        record = self._record_for(constraint)
        record.inferences += 1
        record.total += duration_s

    def _record_for(self, constraint: Any) -> _Record:
        record = self._records.get(id(constraint))
        if record is None:
            record = _Record(constraint)
            self._records[id(constraint)] = record
        return record

    def clear(self) -> None:
        self._records.clear()

    def __len__(self) -> int:
        return len(self._records)

    # -- reporting ----------------------------------------------------------

    def top(self, n: int = 10) -> List[ProfileEntry]:
        """The ``n`` hottest constraints by cumulative time.

        Ties break by fire count, then by description, so the ordering is
        deterministic across runs of the same workload.
        """
        entries = [self._entry(record) for record in self._records.values()]
        entries.sort(key=lambda e: (-e.total_us, -e.fires, e.description))
        return entries[:n]

    def _entry(self, record: _Record) -> ProfileEntry:
        fires = record.activations + record.inferences
        total_us = record.total * 1e6
        return ProfileEntry(
            constraint=record.constraint,
            type_name=type(record.constraint).__name__,
            description=describe(record.constraint),
            provenance=provenance_of(record.constraint),
            activations=record.activations,
            inferences=record.inferences,
            total_us=total_us,
            mean_us=total_us / fires if fires else 0.0,
        )

    def render(self, n: int = 10) -> str:
        """The profiler table, hottest first."""
        entries = self.top(n)
        if not entries:
            return "no constraint activity recorded"
        header = (f"{'cum µs':>10}  {'mean µs':>9}  {'fires':>6}  "
                  f"{'infers':>6}  constraint")
        lines = [header, "-" * len(header)]
        for entry in entries:
            label = entry.description
            if not label.startswith(entry.type_name):
                label = f"{entry.type_name} {label}"
            lines.append(
                f"{entry.total_us:>10.1f}  {entry.mean_us:>9.2f}  "
                f"{entry.fires:>6}  {entry.inferences:>6}  {label}")
            if entry.provenance:
                lines.append(f"{'':>40}  in {entry.provenance}")
        return "\n".join(lines)


# -- provenance helpers -----------------------------------------------------

def describe(obj: Any) -> str:
    """Best-effort short identification of a variable or constraint."""
    name = getattr(obj, "qualified_name", None)
    if callable(name):
        try:
            return name()
        except Exception:
            pass
    elif isinstance(name, str):
        return name
    name = getattr(obj, "name", None)
    if isinstance(name, str):
        return name
    return f"<{type(obj).__name__}@{id(obj):#x}>"


def provenance_of(constraint: Any, limit: int = 4) -> str:
    """Owning cells/objects of the constraint's argument variables.

    Walks each argument's ``parent`` chain to its root and names the
    distinct owners (a cell, a compiler, ...), preserving first-seen
    order — the constraint's network/cell context in one line.
    """
    owners: List[str] = []
    seen: set = set()
    for argument in getattr(constraint, "arguments", []) or []:
        owner = _root_owner(argument)
        if owner is None:
            continue
        label = describe(owner)
        if label not in seen:
            seen.add(label)
            owners.append(label)
    if not owners:
        return ""
    if len(owners) > limit:
        owners = owners[:limit] + [f"+{len(owners) - limit} more"]
    return ", ".join(owners)


def _root_owner(variable: Any) -> Optional[Any]:
    owner = getattr(variable, "parent", None)
    hops = 0
    while owner is not None and hops < 8:
        above = getattr(owner, "parent", None)
        if above is None:
            return owner
        owner = above
        hops += 1
    return owner
