"""Span timing — nested wall-clock intervals over propagation activity.

Counters say *how often*; spans say *when and for how long*.  A
:class:`SpanRecorder` collects nestable named intervals — propagation
rounds, scheduled inference runs, compile passes, hierarchy crossings —
plus zero-duration instant marks (violations, restores), all against one
``perf_counter`` origin so they line up on a common timeline.

Recorded spans export to the Chrome trace-event format via
:mod:`repro.obs.export`; load the resulting JSON in ``chrome://tracing``
or https://ui.perfetto.dev to see a round's wavefront as a flame chart.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from time import perf_counter
from typing import Any, Dict, Iterator, List, NamedTuple, Optional

__all__ = ["Span", "Instant", "SpanRecorder"]


class Span(NamedTuple):
    name: str          # e.g. "round:assign", "infer", "compile"
    category: str      # "round", "inference", "compile", "hierarchy", ...
    start_us: float    # microseconds since the recorder's origin
    duration_us: float
    tid: int           # OS thread id
    depth: int         # nesting depth at begin time
    args: Dict[str, Any]


class Instant(NamedTuple):
    name: str
    category: str
    timestamp_us: float
    tid: int
    args: Dict[str, Any]


class SpanRecorder:
    """An append-only log of completed spans and instant marks.

    Spans nest: :meth:`begin`/:meth:`end` maintain a stack, and the
    :meth:`span` context manager guarantees balance even when the body
    raises (a violating round still closes its span).  For callers that
    already hold start/stop readings — the engine times its dispatch with
    two raw ``perf_counter`` calls — :meth:`add_complete` records the
    interval without touching the stack.
    """

    def __init__(self) -> None:
        self.origin = perf_counter()
        self.spans: List[Span] = []
        self.instants: List[Instant] = []
        self._stack: List[Any] = []

    # -- time ---------------------------------------------------------------

    def _to_us(self, t: float) -> float:
        return (t - self.origin) * 1e6

    # -- recording ----------------------------------------------------------

    def begin(self, name: str, category: str = "engine",
              **args: Any) -> None:
        self._stack.append((name, category, perf_counter(), args))

    def end(self, **extra: Any) -> Optional[Span]:
        if not self._stack:
            return None  # unbalanced end: tolerate, never corrupt
        name, category, start, args = self._stack.pop()
        if extra:
            args = {**args, **extra}
        span = Span(name, category, self._to_us(start),
                    (perf_counter() - start) * 1e6,
                    threading.get_ident(), len(self._stack), args)
        self.spans.append(span)
        return span

    @contextmanager
    def span(self, name: str, category: str = "engine",
             **args: Any) -> Iterator[None]:
        self.begin(name, category, **args)
        try:
            yield
        finally:
            self.end()

    def add_complete(self, name: str, category: str,
                     start: float, stop: float, **args: Any) -> Span:
        """Record an interval timed externally with ``perf_counter``."""
        span = Span(name, category, self._to_us(start),
                    (stop - start) * 1e6,
                    threading.get_ident(), len(self._stack), args)
        self.spans.append(span)
        return span

    def instant(self, name: str, category: str = "engine",
                **args: Any) -> None:
        self.instants.append(Instant(name, category,
                                     self._to_us(perf_counter()),
                                     threading.get_ident(), args))

    def clear(self) -> None:
        self.spans.clear()
        self.instants.clear()
        self._stack.clear()

    # -- inspection ----------------------------------------------------------

    def spans_of(self, category: str) -> List[Span]:
        return [span for span in self.spans if span.category == category]

    @property
    def open_depth(self) -> int:
        return len(self._stack)

    def __len__(self) -> int:
        return len(self.spans)

    def to_chrome_trace(self, **metadata: Any) -> Dict[str, Any]:
        """The recorder as a Chrome trace-event dictionary."""
        from .export import chrome_trace
        return chrome_trace(self, metadata=metadata or None)
