"""repro.obs — observability for the constraint propagation engine.

The engine's built-in :class:`~repro.core.engine.PropagationStats` block
reproduces the thesis's ad-hoc experiment counters; this package is the
measurement layer a production engine needs on top (following Schulte &
Stuckey's cost-measurement methodology for propagation engines):

* :mod:`repro.obs.metrics` — counters, gauges, fixed-bucket histograms
  in a :class:`MetricsRegistry` with snapshot/diff/merge;
* :mod:`repro.obs.spans` — nestable span timing of rounds, inference
  runs, compile passes and hierarchy crossings;
* :mod:`repro.obs.export` — Chrome-trace JSON export of recorded spans
  (loadable in ``chrome://tracing`` / Perfetto);
* :mod:`repro.obs.profiler` — top-N hottest constraints by fire count
  and cumulative time, with network/cell provenance;
* :mod:`repro.obs.observer` — the :class:`Observer` hub the engine
  talks to through one ``context.observer`` attribute check;
* :mod:`repro.obs.report` — ``BENCH_PROP.json`` benchmark medians, the
  repo's perf trajectory format.

Quick start::

    from repro.core import default_context
    from repro.obs import observe

    with observe(default_context(), spans=True, profiler=True) as obs:
        exercise_the_network()
    print(obs.profiler.render(10))
    obs.spans.to_chrome_trace()          # -> dict for json.dump
    snapshot = obs.metrics.snapshot()
"""

from .metrics import (
    Counter,
    DEPTH_BUCKETS,
    Gauge,
    Histogram,
    LATENCY_BUCKETS_US,
    MetricsRegistry,
    QUEUE_BUCKETS,
)
from .spans import Instant, Span, SpanRecorder
from .export import chrome_trace, write_chrome_trace
from .profiler import HotConstraintProfiler, ProfileEntry
from .observer import Observer, observe
from .report import BenchReport, write_bench_report

__all__ = [
    "BenchReport", "Counter", "DEPTH_BUCKETS", "Gauge", "Histogram",
    "HotConstraintProfiler", "Instant", "LATENCY_BUCKETS_US",
    "MetricsRegistry", "Observer", "ProfileEntry", "QUEUE_BUCKETS",
    "Span", "SpanRecorder", "chrome_trace", "observe",
    "write_bench_report", "write_chrome_trace",
]
