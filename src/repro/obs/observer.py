"""The observability hub — one installable object, three instruments.

The engine's hot loop must stay oblivious to *what* is being measured:
it checks a single ``context.observer`` attribute (the same discipline
as the tracer) and, when one is installed, reports raw events — round
boundaries, dispatch timings, queue depths, agenda traffic, violations.
The :class:`Observer` fans each event out to whichever instruments it
carries:

* a :class:`~repro.obs.metrics.MetricsRegistry` (counters, gauges,
  fixed-bucket histograms),
* a :class:`~repro.obs.spans.SpanRecorder` (Chrome-trace timelines),
* a :class:`~repro.obs.profiler.HotConstraintProfiler` (top-N
  constraints by cumulative dispatch time).

Install/uninstall is exception-safe and nestable: installing saves the
previously installed observer and uninstalling restores it, even when a
propagation round raises inside a ``with`` block.
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext
from time import perf_counter
from typing import Any, Iterator, Optional

from .metrics import (
    DEPTH_BUCKETS,
    LATENCY_BUCKETS_US,
    MetricsRegistry,
    QUEUE_BUCKETS,
)
from .profiler import HotConstraintProfiler, describe
from .spans import SpanRecorder

__all__ = ["Observer", "observe"]

_UNINSTALLED = object()  # sentinel: "no saved previous observer"


class Observer:
    """Event fan-out from one propagation context to its instruments.

    Parameters
    ----------
    context:
        The :class:`~repro.core.engine.PropagationContext` to observe.
    metrics, spans, profiler:
        The instruments to feed; each may be ``None`` to skip that kind
        of measurement (a metrics-only observer is the cheapest).
    """

    def __init__(self, context: Any, *,
                 metrics: Optional[MetricsRegistry] = None,
                 spans: Optional[SpanRecorder] = None,
                 profiler: Optional[HotConstraintProfiler] = None) -> None:
        self.context = context
        self.metrics = metrics
        self.spans = spans
        self.profiler = profiler
        self._previous: Any = _UNINSTALLED
        self._previous_scheduler: Any = _UNINSTALLED
        self._round_t0: Optional[float] = None
        self._round_kind = ""
        self._round_subject = ""
        self._round_max_depth = 0

    # -- convenience constructors ------------------------------------------

    @classmethod
    def full(cls, context: Any) -> "Observer":
        """An observer with all three instruments attached."""
        return cls(context, metrics=MetricsRegistry(), spans=SpanRecorder(),
                   profiler=HotConstraintProfiler())

    @classmethod
    def metrics_only(cls, context: Any) -> "Observer":
        return cls(context, metrics=MetricsRegistry())

    # -- lifecycle ----------------------------------------------------------

    @property
    def installed(self) -> bool:
        return self._previous is not _UNINSTALLED

    def install(self) -> "Observer":
        if not self.installed:
            self._previous = getattr(self.context, "observer", None)
            self.context.observer = self
            scheduler = getattr(self.context, "scheduler", None)
            if scheduler is not None:
                self._previous_scheduler = getattr(scheduler, "observer", None)
                scheduler.observer = self
        return self

    def uninstall(self) -> None:
        if not self.installed:
            return
        if getattr(self.context, "observer", None) is self:
            self.context.observer = self._previous
        scheduler = getattr(self.context, "scheduler", None)
        if (scheduler is not None
                and self._previous_scheduler is not _UNINSTALLED
                and getattr(scheduler, "observer", None) is self):
            scheduler.observer = self._previous_scheduler
        self._previous = _UNINSTALLED
        self._previous_scheduler = _UNINSTALLED

    def __enter__(self) -> "Observer":
        return self.install()

    def __exit__(self, *exc_info: Any) -> None:
        self.uninstall()

    # -- round boundaries (engine entry points) -----------------------------

    def round_started(self, kind: str, subject: Any) -> None:
        self._round_t0 = perf_counter()
        self._round_kind = kind
        self._round_subject = describe(subject) if subject is not None else ""
        self._round_max_depth = 0
        metrics = self.metrics
        if metrics is not None:
            metrics.counter(f"engine.rounds.{kind}").inc()

    def round_finished(self, outcome: str) -> None:
        t0 = self._round_t0
        if t0 is None:
            return  # observer installed mid-round: nothing to close
        t1 = perf_counter()
        self._round_t0 = None
        latency_us = (t1 - t0) * 1e6
        metrics = self.metrics
        if metrics is not None:
            metrics.counter(f"engine.round_outcomes.{outcome}").inc()
            metrics.histogram("engine.round_latency_us",
                              LATENCY_BUCKETS_US).observe(latency_us)
            metrics.gauge("engine.last_round_latency_us").set(latency_us)
            if self._round_max_depth:
                metrics.histogram("engine.wavefront_depth",
                                  DEPTH_BUCKETS).observe(self._round_max_depth)
        spans = self.spans
        if spans is not None:
            spans.add_complete(f"round:{self._round_kind}", "round", t0, t1,
                               subject=self._round_subject, outcome=outcome,
                               max_queue_depth=self._round_max_depth)

    def batch_submitted(self, size: int, coalesced: int) -> None:
        """A batched round was submitted: ``size`` requested entries, of
        which ``coalesced`` were superseded by later same-variable
        writes before seeding."""
        metrics = self.metrics
        if metrics is not None:
            metrics.counter("engine.batch.rounds").inc()
            metrics.counter("engine.batch.entries").inc(size)
            metrics.counter("engine.batch.coalesced").inc(coalesced)
            metrics.gauge("engine.batch.last_size").set(size)
        if self.spans is not None:
            self.spans.instant("batch", "round", entries=size,
                               coalesced=coalesced)

    # -- the dispatch site ---------------------------------------------------

    def activation(self, constraint: Any, variable: Any,
                   t0: float, t1: float, depth: int) -> None:
        """An eager ``propagate_variable`` dispatch took ``t1 - t0``."""
        if depth > self._round_max_depth:
            self._round_max_depth = depth
        metrics = self.metrics
        if metrics is not None:
            metrics.counter("engine.activations.total").inc()
            metrics.counter(
                f"engine.activations.by_type.{type(constraint).__name__}"
            ).inc()
            metrics.histogram("engine.activation_latency_us",
                              LATENCY_BUCKETS_US).observe((t1 - t0) * 1e6)
        if self.profiler is not None:
            self.profiler.record_activation(constraint, t1 - t0)

    def inference(self, constraint: Any, variable: Any,
                  t0: float, t1: float) -> None:
        """A scheduled ``propagate_scheduled`` run took ``t1 - t0``."""
        metrics = self.metrics
        if metrics is not None:
            metrics.counter("engine.inference_runs").inc()
            metrics.counter(
                f"engine.inferences.by_type.{type(constraint).__name__}"
            ).inc()
        if self.profiler is not None:
            self.profiler.record_inference(constraint, t1 - t0)
        if self.spans is not None:
            self.spans.add_complete("infer", "inference", t0, t1,
                                    constraint=describe(constraint))

    # -- agenda traffic -------------------------------------------------------

    def scheduled(self, constraint: Any, agenda: str) -> None:
        metrics = self.metrics
        if metrics is not None:
            metrics.counter(f"engine.scheduled.{agenda}").inc()

    def agenda_enqueued(self, agenda: str, depth: int) -> None:
        metrics = self.metrics
        if metrics is not None:
            metrics.counter(f"agenda.enqueued.{agenda}").inc()
            metrics.histogram(f"agenda.queue_length.{agenda}",
                              QUEUE_BUCKETS).observe(depth)

    def agenda_popped(self, agenda: str, depth: int) -> None:
        metrics = self.metrics
        if metrics is not None:
            metrics.counter(f"agenda.popped.{agenda}").inc()

    # -- failure paths --------------------------------------------------------

    def violation(self, signal: Any) -> None:
        metrics = self.metrics
        if metrics is not None:
            metrics.counter("engine.violations").inc()
        if self.spans is not None:
            self.spans.instant("violation", "round",
                               reason=getattr(signal, "reason", ""))

    def budget_exceeded(self, steps: int, elapsed: float) -> None:
        """The propagation watchdog aborted a runaway round."""
        metrics = self.metrics
        if metrics is not None:
            metrics.counter("engine.budget.aborts").inc()
            metrics.gauge("engine.budget.last_steps").set(steps)
            metrics.gauge("engine.budget.last_elapsed_us").set(
                elapsed * 1e6)
        if self.spans is not None:
            self.spans.instant("budget-exceeded", "round", steps=steps,
                               elapsed_us=elapsed * 1e6)

    def restored(self, count: int, cause: str) -> None:
        metrics = self.metrics
        if metrics is not None:
            metrics.counter("engine.restores").inc()
            metrics.counter("engine.restored_variables").inc(count)
        if self.spans is not None:
            self.spans.instant("restore", "round", variables=count,
                               cause=cause)

    # -- hierarchy crossings (stem/implicit.py) -------------------------------

    def cross_level(self, kind: str) -> None:
        metrics = self.metrics
        if metrics is not None:
            metrics.counter(f"hierarchy.cross_level.{kind}").inc()

    def hierarchy_span(self, variable: Any, changed: Any):
        """Span context for one implicit-constraint inference."""
        self.cross_level("inferences")
        spans = self.spans
        if spans is None:
            return nullcontext()
        return spans.span("cross-level", "hierarchy",
                          variable=describe(variable),
                          changed=describe(changed))

    # -- plan cache (core/plancache.py) ---------------------------------------

    def plan_event(self, kind: str, count: int = 1) -> None:
        """One plan-cache event: ``hit`` / ``miss`` / ``deopt`` /
        ``promotion`` / ``invalidation`` / ``unplannable``."""
        metrics = self.metrics
        if metrics is not None:
            metrics.counter(f"plan.{kind}").inc(count)

    def plan_span(self, kind: str, **args: Any):
        """Span context for a plan-cache replay or promotion."""
        self.plan_event(kind)
        spans = self.spans
        if spans is None:
            return nullcontext()
        return spans.span(kind, "plan", **args)

    # -- island rounds (core/islands.py + engine) -------------------------------

    def island_event(self, kind: str, count: int = 1) -> None:
        """One island-round event: ``batches`` (island-structured batches
        started) / ``groups`` (islands in them) / ``rounds`` (island
        rounds committed) / ``replays`` (islands satisfied from the plan
        cache) / ``fallbacks`` (batches rerun fused after a violation,
        error or mid-round topology change)."""
        metrics = self.metrics
        if metrics is not None:
            metrics.counter(f"engine.island.{kind}").inc(count)

    def island_span(self, kind: str, **args: Any):
        """Span context for draining one island of a batch."""
        self.island_event(kind)
        spans = self.spans
        if spans is None:
            return nullcontext()
        return spans.span(kind, "island", **args)

    # -- computation spaces (repro/spaces) -------------------------------------

    def space_event(self, kind: str, count: int = 1) -> None:
        """One computation-space lifecycle event: ``clone`` / ``fork`` /
        ``commit`` / ``discard`` / ``prune``."""
        metrics = self.metrics
        if metrics is not None:
            metrics.counter(f"engine.space.{kind}").inc(count)

    def space_depth(self, kind: str, depth: int) -> None:
        """Current nesting (``nest``) or prune (``prune``) depth."""
        metrics = self.metrics
        if metrics is not None:
            metrics.gauge(f"engine.space.{kind}_depth").set(depth)

    # -- compiler passes (core/compile.py) ------------------------------------

    def compile_span(self, kind: str, **args: Any):
        """Span context for a compile pass or compiled write-back."""
        metrics = self.metrics
        if metrics is not None:
            metrics.counter(f"compile.{kind}").inc()
        spans = self.spans
        if spans is None:
            return nullcontext()
        return spans.span(kind, "compile", **args)

    # -- durable sessions (repro/session) --------------------------------------

    def journal_appended(self, nbytes: int) -> None:
        """One write-ahead journal entry reached the journal."""
        metrics = self.metrics
        if metrics is not None:
            metrics.counter("session.journal.appends").inc()
            metrics.counter("session.journal.bytes").inc(nbytes)

    def journal_rotated(self, segment: str) -> None:
        metrics = self.metrics
        if metrics is not None:
            metrics.counter("session.journal.rotations").inc()
        if self.spans is not None:
            self.spans.instant("journal-rotate", "session", segment=segment)

    def journal_degraded(self, message: str) -> None:
        """The journal hit a persistent disk error and froze read-only.

        Fleets alert on this counter: a degraded session keeps serving
        reads but refuses every mutation until it is evacuated.
        """
        metrics = self.metrics
        if metrics is not None:
            metrics.counter("session.journal.degraded").inc()
        if self.spans is not None:
            self.spans.instant("journal-degraded", "session",
                               error=message)

    def session_op(self, kind: str) -> None:
        """One session operation was journaled (or counted, for
        ``unjournaled-assign``/``violation``/``rebuild`` events)."""
        metrics = self.metrics
        if metrics is not None:
            metrics.counter(f"session.ops.{kind}").inc()

    def session_checkpoint(self, seconds: float) -> None:
        metrics = self.metrics
        if metrics is not None:
            metrics.counter("session.checkpoints").inc()
            metrics.histogram("session.checkpoint_ms").observe(
                seconds * 1000.0)
        if self.spans is not None:
            self.spans.instant("checkpoint", "session",
                               ms=round(seconds * 1000.0, 3))

    def session_replayed(self, entries: int, seconds: float) -> None:
        """Recovery replayed ``entries`` journal entries."""
        metrics = self.metrics
        if metrics is not None:
            metrics.counter("session.replayed_entries").inc(entries)
            metrics.histogram("session.replay_ms").observe(seconds * 1000.0)

    def __repr__(self) -> str:
        parts = [name for name, inst in (("metrics", self.metrics),
                                         ("spans", self.spans),
                                         ("profiler", self.profiler))
                 if inst is not None]
        state = "installed" if self.installed else "detached"
        return f"Observer({'+'.join(parts) or 'empty'}, {state})"


@contextmanager
def observe(context: Any, *, metrics: bool = True, spans: bool = False,
            profiler: bool = False) -> Iterator[Observer]:
    """Context manager: observe ``context`` for the duration of the block.

    ::

        with observe(default_context(), spans=True) as obs:
            variable.set(9)
        print(obs.metrics.snapshot())
    """
    observer = Observer(
        context,
        metrics=MetricsRegistry() if metrics else None,
        spans=SpanRecorder() if spans else None,
        profiler=HotConstraintProfiler() if profiler else None)
    observer.install()
    try:
        yield observer
    finally:
        observer.uninstall()
