"""Chrome trace-event export for recorded spans.

Produces the JSON object format of the Trace Event specification used by
``chrome://tracing`` and Perfetto (https://ui.perfetto.dev): a
``traceEvents`` list of complete (``"ph": "X"``) and instant
(``"ph": "i"``) events with microsecond timestamps, plus process/thread
metadata events so the timeline is labelled.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Optional

from .spans import SpanRecorder

__all__ = ["chrome_trace", "write_chrome_trace"]


def chrome_trace(recorder: SpanRecorder, *,
                 process_name: str = "repro constraint engine",
                 metadata: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Render a :class:`SpanRecorder` as a Chrome trace-event dict."""
    pid = os.getpid()
    events = [{
        "ph": "M", "pid": pid, "tid": 0,
        "name": "process_name", "args": {"name": process_name},
    }]
    tids = sorted({span.tid for span in recorder.spans}
                  | {mark.tid for mark in recorder.instants})
    for tid in tids:
        events.append({
            "ph": "M", "pid": pid, "tid": tid,
            "name": "thread_name", "args": {"name": f"thread-{tid}"},
        })
    for span in recorder.spans:
        events.append({
            "ph": "X", "pid": pid, "tid": span.tid,
            "name": span.name, "cat": span.category,
            "ts": round(span.start_us, 3),
            "dur": round(span.duration_us, 3),
            "args": _plain(span.args),
        })
    for mark in recorder.instants:
        events.append({
            "ph": "i", "pid": pid, "tid": mark.tid, "s": "t",
            "name": mark.name, "cat": mark.category,
            "ts": round(mark.timestamp_us, 3),
            "args": _plain(mark.args),
        })
    trace: Dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }
    if metadata:
        trace["otherData"] = _plain(metadata)
    return trace


def write_chrome_trace(path: str, recorder: SpanRecorder,
                       **kwargs: Any) -> str:
    """Serialize ``recorder`` to ``path`` as Perfetto-loadable JSON."""
    trace = chrome_trace(recorder, **kwargs)
    with open(path, "w") as handle:
        json.dump(trace, handle, indent=1)
    return path


def _plain(args: Dict[str, Any]) -> Dict[str, Any]:
    """JSON-safe view of span args: non-primitive values become strings."""
    plain: Dict[str, Any] = {}
    for key, value in args.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            plain[key] = value
        else:
            plain[key] = repr(value)
    return plain
