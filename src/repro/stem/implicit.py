"""Implicit constraint variables — the hierarchy links (section 5.1).

STEM's dual declaration of instance variables (one variable on the cell
*class* holding the cell's characteristic, one on each cell *instance*
holding the value in that instance's context) is what joins otherwise
isolated per-cell constraint networks into a hierarchy.  The link is an
*implicit constraint*: a procedural, "hard coded" constraint embedded in
the variables themselves.

* an :class:`InstanceInstVar` is an implicit constraint on its
  corresponding :class:`ClassInstVar`;
* a :class:`ClassInstVar` is an implicit constraint on *all* of its
  corresponding instance variables.

These variable-constraints play both roles: they are descendants of
:class:`~repro.core.variable.Variable` *and* they respond to the
constraint protocol (``propagate_variable``, ``propagate_scheduled``,
``is_satisfied``...).  When one of the pair changes, the other is
scheduled on the lowest-priority ``implicit_constraints`` agenda, so each
level of the design hierarchy settles before propagation crosses levels
(section 5.1.2).

Default propagation directions follow the thesis:

* class property values propagate *down* to instances (possibly adjusted
  for local context); instance values never propagate up to the class;
* both directions are *checked*: an instance value must be consistent
  with its class characteristic, and a new class characteristic must be
  consistent with every existing instance value.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from ..core.agenda import IMPLICIT
from ..core.variable import Variable


class ImplicitConstraintVariable(Variable):
    """A variable that doubles as a constraint on its dual variable(s)."""

    # ------ the constraint half of the protocol --------------------------------

    @property
    def arguments(self) -> List[Any]:
        """Self plus duals, for dependency analysis and editor display."""
        return [self] + list(self.dual_variables())

    def dual_variables(self) -> Sequence["ImplicitConstraintVariable"]:
        """The counterpart variable(s) this one implicitly constrains."""
        return ()

    def implicit_constraints(self) -> Sequence["ImplicitConstraintVariable"]:
        """When *this* variable changes, its duals react as constraints."""
        return self.dual_variables()

    def permits_changes_by_implicit_propagation(self) -> bool:
        """Gate for scheduling (Fig. 5.3); default True."""
        return True

    def propagate_variable(self, variable: Any) -> None:
        """React (as a constraint) to a change of a dual variable."""
        if self.permits_changes_by_implicit_propagation():
            observer = self.context.observer
            if observer is not None:
                observer.cross_level("scheduled")
            self.context.schedule(self, variable, agenda=IMPLICIT)

    def propagate_scheduled(self, variable: Any) -> None:
        observer = self.context.observer
        if observer is None:
            self.immediate_inference_by_changing(variable)
        else:
            # A hierarchy crossing: one level's settled value entering
            # another level's network (section 5.1.2), spanned so the
            # Chrome trace shows where rounds cross cell boundaries.
            with observer.hierarchy_span(self, variable):
                self.immediate_inference_by_changing(variable)

    def immediate_inference_by_changing(self, variable: Any) -> None:
        """Implicit inference; subclasses define direction-specific moves."""

    def is_satisfied(self) -> bool:
        return True

    def test_membership_of(self, variable: Any, dependency_record: Any) -> bool:
        return dependency_record is variable or dependency_record is None


class ClassInstVar(ImplicitConstraintVariable):
    """A cell-class variable: a characteristic of the cell's internals.

    Holds the generic information of the dual declaration — a parameter's
    permitted range, a property's nominal value, a signal's typing.  Its
    duals are the corresponding variables of every instance of the cell.
    """

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self._instance_vars: List["InstanceInstVar"] = []

    @property
    def cell_class(self) -> Any:
        return self.parent

    def dual_variables(self) -> Sequence["InstanceInstVar"]:
        return tuple(self._instance_vars)

    def register_instance_var(self, instance_var: "InstanceInstVar") -> None:
        if instance_var not in self._instance_vars:
            self._instance_vars.append(instance_var)
            instance_var._class_var = self
            # Implicit topology changed without a Variable.add_constraint
            # link: notify the structural hook explicitly (plan
            # invalidation + island merge — the class variable acts as
            # the linking "constraint", its arguments spanning all
            # registered instances).
            self.context.note_structure_link(instance_var, self)

    def unregister_instance_var(self, instance_var: "InstanceInstVar") -> None:
        if instance_var in self._instance_vars:
            self._instance_vars.remove(instance_var)
            instance_var._class_var = None
            self.context.note_structure_unlink(instance_var, self)

    # constraint half — reacting to a changed *instance* variable:
    # there is no instance-to-class propagation, only checking.
    def immediate_inference_by_changing(self, variable: Any) -> None:
        return None

    def is_satisfied(self) -> bool:
        """The class characteristic must admit every instance's value."""
        return all(instance_var.consistent_with_class()
                   for instance_var in self._instance_vars)


class InstanceInstVar(ImplicitConstraintVariable):
    """A cell-instance variable: the value in one use of the cell.

    Its single dual is the class variable.  The default downward
    behaviour adopts the (possibly adjusted) class value unless the
    instance value was specified by the user; subclasses such as
    parameters suppress downward propagation entirely.
    """

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self._class_var: Optional[ClassInstVar] = None

    @property
    def class_var(self) -> Optional[ClassInstVar]:
        return self._class_var

    @property
    def cell_instance(self) -> Any:
        return self.parent

    def dual_variables(self) -> Sequence[ClassInstVar]:
        return (self._class_var,) if self._class_var is not None else ()

    # -- downward propagation -----------------------------------------------

    def adjust_class_value(self, value: Any) -> Any:
        """Adapt a class value to this instance's context.

        Default: identity.  Bounding boxes apply the placement transform;
        delays add RC loading corrections (chapter 7).
        """
        return value

    def immediate_inference_by_changing(self, variable: Any) -> None:
        """Adopt the class value, adjusted, unless user-overridden (Fig. 7.7)."""
        from ..core.justification import is_user

        if variable is not self._class_var or self._class_var is None:
            return
        if self.value is not None and is_user(self.last_set_by):
            return
        class_value = self._class_var.value
        if class_value is None:
            return
        observer = self.context.observer
        if observer is not None:
            observer.cross_level("adopted")
        self.set_propagated(self.adjust_class_value(class_value),
                            constraint=self,
                            dependency_record=self._class_var)

    # -- consistency checking ---------------------------------------------------

    def consistent_with_class(self) -> bool:
        """Is this instance's value consistent with the class characteristic?

        Subclasses implement the thesis's per-kind rules: a parameter value
        must lie in the class range, an instance bounding box must contain
        the transformed class box, etc.  Default: unconstrained.
        """
        return True

    def is_satisfied(self) -> bool:
        return self.consistent_with_class()
