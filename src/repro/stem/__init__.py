"""STEM design-environment substrate (thesis chapters 3 and 5).

Cells with dual class/instance variables, io-signals and nets with
incremental typing constraints, Manhattan geometry, parameters, the
signal type hierarchies and the tile-based module compilers.

``CellClass`` / ``CellInstance`` are exposed lazily (PEP 562): the cell
module depends on :mod:`repro.checking` for its bounding-box and delay
variables, and the checking package in turn builds on the lighter stem
modules (geometry, implicit variables) — deferring the cell import keeps
that layering acyclic no matter which package is imported first.
"""

from .compaction import CompactionError, Compactor1D, compact_row
from .geometry import IDENTITY, ORIGIN, Point, Rect, Transform
from .implicit import ClassInstVar, ImplicitConstraintVariable, InstanceInstVar
from .parameters import ClassParameter, InstanceParameter, ParameterRange
from .signals import IOSignal, Net, PinSpec
from . import types

__all__ = [
    "CellClass", "CellInstance", "CellLibrary", "ClassInstVar",
    "ClassParameter", "CompactionError", "Compactor1D", "IDENTITY",
    "IOSignal", "ImplicitConstraintVariable", "InstanceInstVar",
    "InstanceParameter", "ModuleGenerator", "Net", "ORIGIN",
    "ParameterRange", "PinSpec", "Point", "Rect", "Transform",
    "compact_row", "types",
]

_LAZY = {"CellClass": "cell", "CellInstance": "cell",
         "CellLibrary": "library", "ModuleGenerator": "generators"}


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is not None:
        import importlib

        module = importlib.import_module(f".{module_name}", __name__)
        value = getattr(module, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
