"""Cell classes and cell instances (sections 3.3.2, 5.1).

A :class:`CellClass` plays the role of STEM's Smalltalk class object for a
cell: it encapsulates the cell's interface (io-signals, parameters), its
characteristics (bounding box, delays) in *class-level* variables, and
its internal structure (subcells and nets).  A :class:`CellInstance`
represents one placement of the cell inside a larger design and holds the
*instance-level* duals of those variables plus placement and connectivity.

This dual declaration is what makes constraint propagation hierarchical:
the class/instance variable pairs are implicit constraints on each other
(:mod:`repro.stem.implicit`), so values flow down the design hierarchy
with per-context adjustment, and checks flow both ways.

Cell classes form a single-inheritance hierarchy (``subclass``); a
subclass inherits its superclass's interface definitions and current
characteristic values (as overridable defaults).  Classes flagged
``is_generic`` have no physical realization and serve as abstract
stand-ins during least-commitment design (chapter 8).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from ..checking.bbox import ClassBBox, InstanceBBox, calculate_bounding_box
from ..checking.delay import (
    ClassDelay,
    DelayNetwork,
    InstanceDelay,
    build_delay_network,
)
from ..core.engine import PropagationContext, default_context
from ..core.justification import DEFAULT, USER, Justification, is_user
from .geometry import IDENTITY, Point, Rect, Transform
from .parameters import ClassParameter, InstanceParameter, ParameterRange
from .signals import IOSignal, Net, PinSpec


class CellClass:
    """The library version of a cell — interface, characteristics, structure."""

    def __init__(self, name: str, superclass: Optional["CellClass"] = None, *,
                 context: Optional[PropagationContext] = None,
                 is_generic: bool = False, documentation: str = "") -> None:
        if context is None:
            context = superclass.context if superclass else default_context()
        self.name = name
        self.context = context
        self.superclass = superclass
        self.subclasses: List["CellClass"] = []
        self.is_generic = is_generic
        self.documentation = documentation

        # Interface and characteristics (class-level variables).
        self.signals: Dict[str, IOSignal] = {}
        self.parameters: Dict[str, ClassParameter] = {}
        self.delays: Dict[Tuple[str, str], ClassDelay] = {}
        self.variables: Dict[str, Any] = {}

        # Internal structure.
        self.subcells: List["CellInstance"] = []
        self.nets: Dict[str, Net] = {}
        self.io_connections: Dict[str, Net] = {}
        self.structure_layout: Any = None  # module compiler, if any

        # Uses of this cell, and MVC dependents.
        self.instances: List["CellInstance"] = []
        self.dependents: List[Any] = []

        self._delay_network: Optional[DelayNetwork] = None

        bbox = ClassBBox(parent=self, name="boundingBox", context=context)
        self.variables["boundingBox"] = bbox

        if superclass is not None:
            superclass.subclasses.append(self)
            self._inherit_from(superclass)

    def __repr__(self) -> str:
        kind = "generic cell" if self.is_generic else "cell"
        return f"<{kind} {self.name}>"

    # -- inheritance --------------------------------------------------------------

    def _inherit_from(self, superclass: "CellClass") -> None:
        """Copy interface definitions and characteristic values.

        Values arrive with ``#DEFAULT`` justification: they are inherited
        estimates that the subclass designer overwrites with measured
        characteristics (and that propagation may refine).
        """
        for signal in superclass.signals.values():
            clone = signal.clone_for(self)
            self.signals[clone.name] = clone
            self._register_signal_vars(clone)
        for name, class_parameter in superclass.parameters.items():
            self.add_parameter(name, range=class_parameter.range)
        for (src, dst), class_delay in superclass.delays.items():
            self.declare_delay(src, dst, estimate=class_delay.value,
                               justification=DEFAULT)
        parent_box = superclass.variables["boundingBox"].value
        if parent_box is not None:
            self.variables["boundingBox"]._store(parent_box, DEFAULT)

    def subclass(self, name: str, *, is_generic: bool = False,
                 documentation: str = "") -> "CellClass":
        """Define a specialized version of this cell (section 3.3.2)."""
        return CellClass(name, superclass=self, is_generic=is_generic,
                         documentation=documentation)

    def descendants(self) -> Iterator["CellClass"]:
        """Strict descendants, depth first (the module-selection search tree)."""
        for subclass in self.subclasses:
            yield subclass
            yield from subclass.descendants()

    def is_kind_of(self, other: "CellClass") -> bool:
        node: Optional[CellClass] = self
        while node is not None:
            if node is other:
                return True
            node = node.superclass
        return False

    # -- interface definition --------------------------------------------------------

    def define_signal(self, name: str, direction: str = "in",
                      **kwargs: Any) -> IOSignal:
        """Add an io-signal to the cell's interface."""
        if name in self.signals:
            raise ValueError(f"cell {self.name!r} already has signal {name!r}")
        signal = IOSignal(self, name, direction, **kwargs)
        self.signals[name] = signal
        self._register_signal_vars(signal)
        self.changed("interface")
        return signal

    def _register_signal_vars(self, signal: IOSignal) -> None:
        self.variables[f"{signal.name}.dataType"] = signal.data_type_var
        self.variables[f"{signal.name}.electricalType"] = signal.electrical_type_var
        self.variables[f"{signal.name}.bitWidth"] = signal.bit_width_var

    def signal(self, name: str) -> IOSignal:
        try:
            return self.signals[name]
        except KeyError:
            raise KeyError(f"cell {self.name!r} has no signal {name!r}") from None

    def add_parameter(self, name: str, *, low: Any = None, high: Any = None,
                      choices: Any = None, default: Any = None,
                      range: Optional[ParameterRange] = None) -> ClassParameter:
        """Declare a parameter with its permitted range and default."""
        if name in self.parameters:
            raise ValueError(f"cell {self.name!r} already has parameter {name!r}")
        if range is None:
            range = ParameterRange(low=low, high=high, choices=choices,
                                   default=default)
        parameter = ClassParameter(range, parent=self, name=name,
                                   context=self.context)
        self.parameters[name] = parameter
        self.variables[name] = parameter
        return parameter

    def declare_delay(self, source: str, dest: str, *,
                      estimate: Optional[float] = None,
                      justification: Justification = USER) -> ClassDelay:
        """Declare a critical delay characteristic between two io-signals.

        ``estimate`` seeds the value so containing designs can evaluate
        before this cell's internals exist (least-commitment, section
        7.3); remove it with ``clear_delay_estimate`` once the internal
        delay network should take over.
        """
        source_signal = self.signal(source)
        dest_signal = self.signal(dest)
        if source_signal.direction == "out":
            raise ValueError(f"delay source {source!r} is an output")
        if dest_signal.direction == "in":
            raise ValueError(f"delay destination {dest!r} is an input")
        key = (source, dest)
        if key in self.delays:
            raise ValueError(f"delay {source}->{dest} already declared "
                             f"on {self.name!r}")
        delay = ClassDelay(parent=self, name=f"delay({source}->{dest})",
                           context=self.context,
                           source_name=source, dest_name=dest)
        if estimate is not None:
            delay._store(estimate, justification)
        self.delays[key] = delay
        self.variables[delay.name] = delay
        for instance in self.instances:
            instance._add_delay_var(key, delay)
        return delay

    def delay_var(self, source: str, dest: str) -> ClassDelay:
        try:
            return self.delays[(source, dest)]
        except KeyError:
            raise KeyError(f"cell {self.name!r} declares no delay "
                           f"{source}->{dest}") from None

    def clear_delay_estimate(self, source: str, dest: str) -> None:
        """Drop a seeded estimate so the internal network's value rules."""
        self.delay_var(source, dest).reset()

    def var(self, name: str) -> Any:
        """``instVarNamed:`` — look up any class-level variable by name."""
        try:
            return self.variables[name]
        except KeyError:
            raise KeyError(f"cell {self.name!r} has no variable {name!r}") from None

    # -- bounding box ---------------------------------------------------------------

    @property
    def bounding_box_var(self) -> ClassBBox:
        return self.variables["boundingBox"]

    def set_bounding_box(self, box: Rect,
                         justification: Justification = USER) -> bool:
        """Fix the cell's characteristic bounding box (leaf cells)."""
        return self.bounding_box_var.set(box, justification)

    def bounding_box(self) -> Optional[Rect]:
        """Current box, recalculating lazily from subcells when erased."""
        variable = self.bounding_box_var
        if variable.value is None and self.subcells:
            computed = calculate_bounding_box(
                instance.bounding_box() for instance in self.subcells)
            if computed is not None:
                variable.calculate(computed)
        return variable.value

    # -- structure editing ---------------------------------------------------------------

    def instantiate(self, parent_cell: Optional["CellClass"] = None,
                    name: Optional[str] = None,
                    transform: Transform = IDENTITY) -> "CellInstance":
        """Create a placement of this cell, optionally inside ``parent_cell``."""
        if name is None:
            name = f"{self.name}.{len(self.instances) + 1}"
        instance = CellInstance(self, parent_cell, name, transform)
        self.instances.append(instance)
        if parent_cell is not None:
            parent_cell.add_cell(instance)
        return instance

    def add_cell(self, instance: "CellInstance") -> None:
        """Register an instance as a subcell of this (composite) cell."""
        if instance.parent_cell not in (None, self):
            raise ValueError(f"{instance!r} already belongs to "
                             f"{instance.parent_cell!r}")
        instance.parent_cell = self
        if instance not in self.subcells:
            self.subcells.append(instance)
        self.structure_changed("structure")

    def remove_cell(self, instance: "CellInstance") -> None:
        """Remove a subcell: disconnect its nets, drop its constraints."""
        if instance not in self.subcells:
            return
        for signal_name, net in list(instance.connections.items()):
            net.disconnect(instance, signal_name)
        self.subcells.remove(instance)
        instance.parent_cell = None
        instance.detach()
        if instance in instance.cell_class.instances:
            instance.cell_class.instances.remove(instance)
        self.structure_changed("structure")

    def add_net(self, name: Optional[str] = None) -> Net:
        if name is None:
            name = f"net{len(self.nets) + 1}"
        if name in self.nets:
            raise ValueError(f"cell {self.name!r} already has net {name!r}")
        net = Net(self, name)
        self.nets[name] = net
        return net

    def net(self, name: str) -> Net:
        try:
            return self.nets[name]
        except KeyError:
            raise KeyError(f"cell {self.name!r} has no net {name!r}") from None

    # -- delay networks ----------------------------------------------------------------------

    def build_delay_network(self) -> DelayNetwork:
        """(Re)build the Fig. 7.12 constraint network for declared delays."""
        self.discard_delay_network()
        self._delay_network = build_delay_network(self)
        return self._delay_network

    def discard_delay_network(self) -> None:
        if self._delay_network is not None:
            self._delay_network.discard()
            self._delay_network = None

    @property
    def delay_network(self) -> Optional[DelayNetwork]:
        return self._delay_network

    def delay_value(self, source: str, dest: str) -> Optional[float]:
        """The delay characteristic, building the network when needed."""
        variable = self.delay_var(source, dest)
        if variable.value is None and self._delay_network is None \
                and self.subcells:
            self.build_delay_network()
        return variable.value

    # -- change management (section 6.5.2) --------------------------------------------------------

    def structure_changed(self, aspect: str = "structure") -> None:
        """Internal structure edited: erase derived data, notify dependents.

        Delay networks are erased rather than incrementally edited
        (section 7.3); the bounding box is reset for recalculation; views
        and containing cells are notified through :meth:`changed`.
        """
        self.discard_delay_network()
        bbox = self.bounding_box_var
        if bbox.value is not None and not is_user(bbox.last_set_by):
            bbox.set(None, DEFAULT)
        self.changed(aspect)

    def changed(self, aspect: Optional[str] = None) -> None:
        """Broadcast a change to dependent views and containing cells.

        Propagation up the design hierarchy stops at cells whose external
        properties are unaffected: a pure-``layout`` change does not climb.
        """
        for dependent in list(self.dependents):
            dependent.model_changed(self, aspect)
        if aspect == "layout":
            return
        for instance in self.instances:
            parent = instance.parent_cell
            if parent is not None:
                parent.changed(aspect)

    def add_dependent(self, view: Any) -> None:
        if view not in self.dependents:
            self.dependents.append(view)

    def remove_dependent(self, view: Any) -> None:
        if view in self.dependents:
            self.dependents.remove(view)


class CellInstance:
    """One placement of a cell class inside a larger design."""

    def __init__(self, cell_class: CellClass,
                 parent_cell: Optional[CellClass],
                 name: str, transform: Transform = IDENTITY) -> None:
        self.cell_class = cell_class
        self.parent_cell = parent_cell
        self.name = name
        self.transform = transform
        self.connections: Dict[str, Net] = {}
        self.variables: Dict[str, Any] = {}
        context = cell_class.context

        bbox = InstanceBBox(parent=self, name="boundingBox", context=context)
        cell_class.bounding_box_var.register_instance_var(bbox)
        self.variables["boundingBox"] = bbox
        class_box = cell_class.bounding_box_var.value
        if class_box is not None:
            bbox._store(transform.apply_to(class_box), DEFAULT)

        self.parameters: Dict[str, InstanceParameter] = {}
        for param_name, class_parameter in cell_class.parameters.items():
            instance_parameter = InstanceParameter(
                parent=self, name=param_name, context=context)
            class_parameter.register_instance_var(instance_parameter)
            range_ = class_parameter.range
            if range_ is not None and range_.default is not None:
                instance_parameter._store(range_.default, DEFAULT)
            self.parameters[param_name] = instance_parameter
            self.variables[param_name] = instance_parameter

        self.delays: Dict[Tuple[str, str], InstanceDelay] = {}
        for key, class_delay in cell_class.delays.items():
            self._add_delay_var(key, class_delay)

        self._own_bit_widths: Dict[str, Any] = {}

    def _add_delay_var(self, key: Tuple[str, str],
                       class_delay: ClassDelay) -> None:
        source, dest = key
        instance_delay = InstanceDelay(
            parent=self, name=f"delay({source}->{dest})",
            context=self.cell_class.context,
            source_name=source, dest_name=dest)
        class_delay.register_instance_var(instance_delay)
        if class_delay.value is not None:
            instance_delay._store(
                instance_delay.adjust_class_value(class_delay.value), DEFAULT)
        self.delays[key] = instance_delay
        self.variables[instance_delay.name] = instance_delay

    def __repr__(self) -> str:
        return f"<instance {self.name} of {self.cell_class.name}>"

    # -- variables ------------------------------------------------------------------

    @property
    def bounding_box_var(self) -> InstanceBBox:
        return self.variables["boundingBox"]

    def var(self, name: str) -> Any:
        try:
            return self.variables[name]
        except KeyError:
            raise KeyError(f"instance {self.name!r} has no variable "
                           f"{name!r}") from None

    def delay_var(self, source: str, dest: str) -> InstanceDelay:
        try:
            return self.delays[(source, dest)]
        except KeyError:
            raise KeyError(f"instance {self.name!r} has no delay "
                           f"{source}->{dest}") from None

    # -- parameters --------------------------------------------------------------------

    def set_parameter(self, name: str, value: Any,
                      justification: Justification = USER) -> bool:
        """Assign a parameter value (checked against the class range)."""
        return self.parameters[name].set(value, justification)

    def parameter_value(self, name: str) -> Any:
        return self.parameters[name].value

    # -- signals and connectivity ---------------------------------------------------------

    def bit_width_var(self, signal_name: str) -> Any:
        """The effective bit-width variable: own override or the class's."""
        own = self._own_bit_widths.get(signal_name)
        if own is not None:
            return own
        return self.cell_class.signal(signal_name).bit_width_var

    def own_bit_width(self, signal_name: str) -> Any:
        """Give this instance its own width variable (compiled cells)."""
        from ..checking.sigtypes import InstanceBWidth

        own = self._own_bit_widths.get(signal_name)
        if own is None:
            class_var = self.cell_class.signal(signal_name).bit_width_var
            own = InstanceBWidth(parent=self,
                                 name=f"{signal_name}.bitWidth",
                                 context=self.cell_class.context)
            class_var.register_instance_var(own)
            self._own_bit_widths[signal_name] = own
            self.variables[f"{signal_name}.bitWidth"] = own
        return own

    def net_on(self, signal_name: str) -> Optional[Net]:
        return self.connections.get(signal_name)

    # -- geometry ------------------------------------------------------------------------------

    def bounding_box(self) -> Optional[Rect]:
        """The placement area: own value, or the transformed class box."""
        own = self.bounding_box_var.value
        if own is not None:
            return own
        class_box = self.cell_class.bounding_box()
        if class_box is None:
            return None
        return self.transform.apply_to(class_box)

    def io_pins(self) -> Dict[str, List[Point]]:
        """Pin locations per signal, stretched to this instance's box.

        Fig. 7.6: when the instance box is larger than the class box, the
        pins land on the larger perimeter (stretching); with no override
        they sit on the transformed class box.
        """
        box = self.bounding_box()
        if box is None:
            return {}
        return {name: signal.pin_points(box)
                for name, signal in self.cell_class.signals.items()}

    # -- delays -------------------------------------------------------------------------------------

    def refresh_delay_adjustments(self) -> bool:
        """Re-derive instance delays after loading (connectivity) changes.

        Returns False when a re-adjusted value violated a constraint and
        was rolled back (validity feedback for connectivity edits).
        """
        ok = True
        for instance_delay in self.delays.values():
            class_value = (instance_delay.class_var.value
                           if instance_delay.class_var is not None else None)
            if class_value is None:
                continue
            if instance_delay.value is not None \
                    and is_user(instance_delay.last_set_by):
                continue
            adjusted = instance_delay.adjust_class_value(class_value)
            if not instance_delay.values_equal(instance_delay.value, adjusted):
                ok = instance_delay.calculate(adjusted) and ok
        return ok

    # -- lifecycle ----------------------------------------------------------------------------------

    def detach(self) -> None:
        """Unlink every instance variable from its class dual."""
        self.cell_class.bounding_box_var.unregister_instance_var(
            self.bounding_box_var)
        for name, instance_parameter in self.parameters.items():
            self.cell_class.parameters[name].unregister_instance_var(
                instance_parameter)
        for key, instance_delay in self.delays.items():
            class_delay = self.cell_class.delays.get(key)
            if class_delay is not None:
                class_delay.unregister_instance_var(instance_delay)
        for signal_name, own in self._own_bit_widths.items():
            self.cell_class.signal(signal_name).bit_width_var \
                .unregister_instance_var(own)

    def remove(self) -> None:
        """Remove this instance from its containing cell."""
        if self.parent_cell is not None:
            self.parent_cell.remove_cell(self)
