"""Geometry substrate: points, rectangles and placement transformations.

STEM represents a cell instance's placement by a transformation matrix
mapping the cell's internal structure into the instance's bounding-box
area (section 7.2).  This module provides the minimal 2-D geometry the
environment needs: integer/float points, axis-aligned rectangles
(bounding boxes), and Manhattan placement transforms (the eight
orientations of the square: rotations by multiples of 90° with optional
mirroring) plus translation.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Optional, Tuple


class Point:
    """An immutable 2-D point (also used as an extent vector)."""

    __slots__ = ("x", "y")

    def __init__(self, x: float, y: float) -> None:
        object.__setattr__(self, "x", x)
        object.__setattr__(self, "y", y)

    def __setattr__(self, *_args) -> None:
        raise AttributeError("Point is immutable")

    # Immutable value objects copy as themselves (structural design
    # clones in repro.spaces.search would otherwise trip __setattr__).
    def __copy__(self) -> "Point":
        return self

    def __deepcopy__(self, memo: dict) -> "Point":
        return self

    def __add__(self, other: "Point") -> "Point":
        return Point(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Point") -> "Point":
        return Point(self.x - other.x, self.y - other.y)

    def __neg__(self) -> "Point":
        return Point(-self.x, -self.y)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Point)
                and self.x == other.x and self.y == other.y)

    def __hash__(self) -> int:
        return hash((self.x, self.y))

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    def __repr__(self) -> str:
        return f"Point({self.x}, {self.y})"

    def max(self, other: "Point") -> "Point":
        return Point(max(self.x, other.x), max(self.y, other.y))

    def min(self, other: "Point") -> "Point":
        return Point(min(self.x, other.x), min(self.y, other.y))


ORIGIN = Point(0, 0)


class Rect:
    """An axis-aligned rectangle: ``origin`` (lower-left) and ``corner``.

    The thesis's bounding boxes compare by *extent* ("bBox extent >=
    selfBBox extent", Fig. 7.7): a box can contain another iff it is at
    least as large in both axes.
    """

    __slots__ = ("origin", "corner")

    def __init__(self, origin: Point, corner: Point) -> None:
        object.__setattr__(self, "origin", origin.min(corner))
        object.__setattr__(self, "corner", origin.max(corner))

    def __setattr__(self, *_args) -> None:
        raise AttributeError("Rect is immutable")

    def __copy__(self) -> "Rect":
        return self

    def __deepcopy__(self, memo: dict) -> "Rect":
        return self

    @classmethod
    def of_extent(cls, width: float, height: float,
                  origin: Point = ORIGIN) -> "Rect":
        return cls(origin, origin + Point(width, height))

    @property
    def extent(self) -> Point:
        return self.corner - self.origin

    @property
    def width(self) -> float:
        return self.corner.x - self.origin.x

    @property
    def height(self) -> float:
        return self.corner.y - self.origin.y

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point((self.origin.x + self.corner.x) / 2,
                     (self.origin.y + self.corner.y) / 2)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Rect)
                and self.origin == other.origin and self.corner == other.corner)

    def __hash__(self) -> int:
        return hash((self.origin, self.corner))

    def __repr__(self) -> str:
        return (f"Rect({self.origin.x}, {self.origin.y}, "
                f"{self.corner.x}, {self.corner.y})")

    def contains_point(self, point: Point) -> bool:
        return (self.origin.x <= point.x <= self.corner.x
                and self.origin.y <= point.y <= self.corner.y)

    def can_contain(self, other: "Rect") -> bool:
        """Extent comparison used for instance-vs-class boxes (Fig. 7.7)."""
        return self.width >= other.width and self.height >= other.height

    def union(self, other: "Rect") -> "Rect":
        return Rect(self.origin.min(other.origin), self.corner.max(other.corner))

    def translated(self, offset: Point) -> "Rect":
        return Rect(self.origin + offset, self.corner + offset)

    @staticmethod
    def bounding(rects: Iterable["Rect"]) -> Optional["Rect"]:
        """The smallest rectangle containing all of ``rects`` (None if empty)."""
        result: Optional[Rect] = None
        for rect in rects:
            result = rect if result is None else result.union(rect)
        return result


#: The eight Manhattan orientations: (name, (a, b, c, d)) row-major 2x2.
_ORIENTATIONS = {
    "R0": (1, 0, 0, 1),
    "R90": (0, -1, 1, 0),
    "R180": (-1, 0, 0, -1),
    "R270": (0, 1, -1, 0),
    "MX": (1, 0, 0, -1),    # mirror about the X axis
    "MY": (-1, 0, 0, 1),    # mirror about the Y axis
    "MX90": (0, 1, 1, 0),   # mirror then rotate 90
    "MY90": (0, -1, -1, 0),
}


class Transform:
    """A Manhattan placement: orientation followed by translation.

    ``apply_to`` maps points and rectangles from a cell's internal
    coordinates into its instance's coordinates; ``compose`` chains
    placements down a design hierarchy.
    """

    __slots__ = ("orientation", "offset")

    def __init__(self, orientation: str = "R0", offset: Point = ORIGIN) -> None:
        if orientation not in _ORIENTATIONS:
            raise ValueError(f"unknown orientation {orientation!r}; "
                             f"expected one of {sorted(_ORIENTATIONS)}")
        object.__setattr__(self, "orientation", orientation)
        object.__setattr__(self, "offset", offset)

    def __setattr__(self, *_args) -> None:
        raise AttributeError("Transform is immutable")

    def __copy__(self) -> "Transform":
        return self

    def __deepcopy__(self, memo: dict) -> "Transform":
        return self

    @classmethod
    def translation(cls, x: float, y: float) -> "Transform":
        return cls("R0", Point(x, y))

    @property
    def matrix(self) -> Tuple[float, float, float, float]:
        return _ORIENTATIONS[self.orientation]

    def apply_to_point(self, point: Point) -> Point:
        a, b, c, d = self.matrix
        return Point(a * point.x + b * point.y + self.offset.x,
                     c * point.x + d * point.y + self.offset.y)

    def apply_to(self, shape):
        """Transform a Point or a Rect."""
        if isinstance(shape, Point):
            return self.apply_to_point(shape)
        if isinstance(shape, Rect):
            return Rect(self.apply_to_point(shape.origin),
                        self.apply_to_point(shape.corner))
        raise TypeError(f"cannot transform {type(shape).__name__}")

    def compose(self, inner: "Transform") -> "Transform":
        """self ∘ inner: apply ``inner`` first, then this transform."""
        a, b, c, d = self.matrix
        ia, ib, ic, id_ = inner.matrix
        combined = (a * ia + b * ic, a * ib + b * id_,
                    c * ia + d * ic, c * ib + d * id_)
        for name, matrix in _ORIENTATIONS.items():
            if matrix == combined:
                orientation = name
                break
        else:  # pragma: no cover - the group is closed
            raise AssertionError("orientation group not closed")
        return Transform(orientation, self.apply_to_point(inner.offset))

    def inverse(self) -> "Transform":
        a, b, c, d = self.matrix
        det = a * d - b * c  # always +/-1 for Manhattan orientations
        ia, ib, ic, id_ = (d / det, -b / det, -c / det, a / det)
        inv_matrix = (int(ia), int(ib), int(ic), int(id_))
        for name, matrix in _ORIENTATIONS.items():
            if matrix == inv_matrix:
                inv = Transform(name)
                break
        else:  # pragma: no cover
            raise AssertionError("orientation group not closed under inverse")
        return Transform(inv.orientation, -inv.apply_to_point(self.offset))

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Transform)
                and self.orientation == other.orientation
                and self.offset == other.offset)

    def __hash__(self) -> int:
        return hash((self.orientation, self.offset))

    def __repr__(self) -> str:
        return f"Transform({self.orientation!r}, {self.offset!r})"


IDENTITY = Transform()
