"""Cell library — the design-database front (sections 1, 3.2).

An object-oriented IC design environment "represents the library version
of a cell as a class object".  The :class:`CellLibrary` is the registry
those class objects live in: named lookup, the inheritance forest,
generic-cell queries for module selection, and simple statistics.  It
deliberately stays a thin catalogue — the cells themselves carry all
design data.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from ..core.engine import PropagationContext, default_context
from .cell import CellClass


class CellLibrary:
    """A named catalogue of cell classes sharing one propagation context."""

    def __init__(self, name: str = "library",
                 context: Optional[PropagationContext] = None) -> None:
        self.name = name
        self.context = context if context is not None else default_context()
        self._cells: Dict[str, CellClass] = {}

    def __len__(self) -> int:
        return len(self._cells)

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def __iter__(self) -> Iterator[CellClass]:
        return iter(self._cells.values())

    # -- registration ---------------------------------------------------------

    def define(self, name: str, superclass: Optional[CellClass] = None, *,
               is_generic: bool = False, documentation: str = "") -> CellClass:
        """Create and register a new cell class."""
        if name in self._cells:
            raise ValueError(f"library {self.name!r} already has a cell "
                             f"{name!r}")
        cell = CellClass(name, superclass, context=self.context,
                         is_generic=is_generic, documentation=documentation)
        self._cells[name] = cell
        return cell

    def register(self, cell: CellClass) -> CellClass:
        """Adopt an existing cell class into the catalogue."""
        if cell.name in self._cells and self._cells[cell.name] is not cell:
            raise ValueError(f"library {self.name!r} already has a cell "
                             f"{cell.name!r}")
        if cell.context is not self.context:
            raise ValueError(f"cell {cell.name!r} belongs to a different "
                             f"propagation context")
        self._cells[cell.name] = cell
        return cell

    def remove(self, name: str) -> None:
        """Drop a cell from the catalogue (its instances are untouched)."""
        self._cells.pop(name, None)

    # -- lookup --------------------------------------------------------------------

    def cell(self, name: str) -> CellClass:
        try:
            return self._cells[name]
        except KeyError:
            raise KeyError(f"library {self.name!r} has no cell {name!r}; "
                           f"have {sorted(self._cells)}") from None

    def names(self) -> List[str]:
        return sorted(self._cells)

    def roots(self) -> List[CellClass]:
        """Cells without a (registered) superclass — the forest roots."""
        return [cell for cell in self._cells.values()
                if cell.superclass is None]

    def generics(self) -> List[CellClass]:
        """Generic cells (module-selection entry points)."""
        return [cell for cell in self._cells.values() if cell.is_generic]

    def realizations_of(self, name: str) -> List[CellClass]:
        """Non-generic descendants of a (generic) cell — its candidates."""
        cell = self.cell(name)
        return [descendant for descendant in cell.descendants()
                if not descendant.is_generic]

    def leaf_cells(self) -> List[CellClass]:
        """Cells without internal structure (directly designed / library)."""
        return [cell for cell in self._cells.values() if not cell.subcells]

    # -- statistics ----------------------------------------------------------------------

    def statistics(self) -> Dict[str, int]:
        return {
            "cells": len(self._cells),
            "generic_cells": len(self.generics()),
            "leaf_cells": len(self.leaf_cells()),
            "instances": sum(len(cell.instances)
                             for cell in self._cells.values()),
            "nets": sum(len(cell.nets) for cell in self._cells.values()),
        }
