"""Signal type hierarchies (section 7.1, Figs. 7.2/7.3).

Data and electrical types of signals are defined hierarchically, with the
most abstract types at the roots.  Two types are *compatible* iff one is
an ancestor of the other; of two compatible types the *less abstract* one
is the descendant.  STEM implements the hierarchy with Smalltalk's class
hierarchy; here each type is a :class:`SignalType` node in an explicit
tree, which keeps the hierarchy extensible at runtime (new process
libraries can register electrical types without defining Python classes).

The standard hierarchy of Fig. 7.2 is built at import time:

* ``DataType``: ``Bit``, ``FloatSignal``, ``IntegerSignal``
  (``A2CIntSignal``, ``BCDSignal``, ``SignedMagIntSignal``,
  ``WholeSignal``)
* ``ElectricalType``: ``Analog``, ``Digital`` (``BIPOLAR``, ``TTL``,
  ``CMOS``)
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional


class SignalType:
    """A node in a signal type hierarchy.

    Compatibility and abstraction tests mirror Fig. 7.3:

    * ``a.is_compatible_with(b)`` — one of the two is an ancestor of the
      other (or they are the same type);
    * ``a.is_less_abstract_than(b)`` — ``a`` is a strict descendant of
      ``b``.
    """

    def __init__(self, name: str, parent: Optional["SignalType"] = None) -> None:
        self.name = name
        self.parent = parent
        self.children: List["SignalType"] = []
        if parent is not None:
            parent.children.append(self)
        else:
            self._registry: Dict[str, SignalType] = {}
        root = self.root()
        if name in root._registry:
            raise ValueError(f"duplicate type name {name!r} in "
                             f"hierarchy {root.name!r}")
        root._registry[name] = self

    # -- hierarchy walking ---------------------------------------------------

    def root(self) -> "SignalType":
        node = self
        while node.parent is not None:
            node = node.parent
        return node

    def ancestors(self) -> Iterator["SignalType"]:
        """Strict ancestors, nearest first."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def descendants(self) -> Iterator["SignalType"]:
        """Strict descendants, depth first (``allSubclasses``)."""
        for child in self.children:
            yield child
            yield from child.descendants()

    def is_leaf(self) -> bool:
        return not self.children

    def subtype(self, name: str) -> "SignalType":
        """Define (and return) a new child type."""
        return SignalType(name, parent=self)

    def lookup(self, name: str) -> "SignalType":
        """Find a type by name anywhere in this hierarchy."""
        try:
            return self.root()._registry[name]
        except KeyError:
            raise KeyError(f"no type named {name!r} in hierarchy "
                           f"{self.root().name!r}") from None

    # -- compatibility tests (Fig. 7.3) ------------------------------------------

    def is_compatible_with(self, other: "SignalType") -> bool:
        """One of the two is a (non-strict) ancestor of the other."""
        if self is other:
            return True
        return other in self.descendants() or self in other.descendants()

    def is_less_abstract_than(self, other: "SignalType") -> bool:
        """True when self is a strict descendant of ``other``."""
        return self in other.descendants()

    def least_abstract_with(self, other: "SignalType") -> "SignalType":
        """Of two compatible types, the more specific one."""
        if not self.is_compatible_with(other):
            raise ValueError(f"{self!r} and {other!r} are incompatible")
        return self if self.is_less_abstract_than(other) else other

    def __repr__(self) -> str:
        return f"<SignalType {self.name}>"


def _build_standard_hierarchies():
    """The type hierarchies of Fig. 7.2."""
    s_module = SignalType("SmoduleSignalType")

    data = SignalType("DataType", s_module)
    SignalType("Bit", data)
    SignalType("FloatSignal", data)
    integer = SignalType("IntegerSignal", data)
    SignalType("A2CIntSignal", integer)
    SignalType("BCDSignal", integer)
    SignalType("SignedMagIntSignal", integer)
    SignalType("WholeSignal", integer)

    electrical = SignalType("ElectricalType", s_module)
    SignalType("Analog", electrical)
    digital = SignalType("Digital", electrical)
    SignalType("BIPOLAR", digital)
    SignalType("TTL", digital)
    SignalType("CMOS", digital)

    return s_module, data, electrical


S_MODULE_SIGNAL_TYPE, DATA_TYPE, ELECTRICAL_TYPE = _build_standard_hierarchies()

# Convenient module-level names for the standard types.
BIT = DATA_TYPE.lookup("Bit")
FLOAT_SIGNAL = DATA_TYPE.lookup("FloatSignal")
INTEGER_SIGNAL = DATA_TYPE.lookup("IntegerSignal")
A2C_INT_SIGNAL = DATA_TYPE.lookup("A2CIntSignal")
BCD_SIGNAL = DATA_TYPE.lookup("BCDSignal")
SIGNED_MAG_INT_SIGNAL = DATA_TYPE.lookup("SignedMagIntSignal")
WHOLE_SIGNAL = DATA_TYPE.lookup("WholeSignal")

ANALOG = ELECTRICAL_TYPE.lookup("Analog")
DIGITAL = ELECTRICAL_TYPE.lookup("Digital")
BIPOLAR = ELECTRICAL_TYPE.lookup("BIPOLAR")
TTL = ELECTRICAL_TYPE.lookup("TTL")
CMOS = ELECTRICAL_TYPE.lookup("CMOS")
