"""1-D constraint-graph layout compaction (thesis section 2.1).

The thesis's survey of constraints in IC design opens with the classic
use: "graph-based compaction algorithms build vertical and horizontal
constraint graphs, solve for the maximally constrained paths in the
graphs, and then assign node positions to satisfy all constraints" —
also the substrate of Electric's hierarchical linear-inequality system.

This module implements that algorithm as a substrate:

* :class:`Compactor1D` — elements with linear position constraints
  (minimum separations ``x_b >= x_a + d``, exact offsets, fixed
  positions); solving assigns every element its *smallest* feasible
  coordinate (the longest-path solution), and positive cycles —
  contradictory separations — are reported as infeasible;
* :func:`compact_row` — applies the compactor to a compiled cell's
  subcells along one axis, respecting a design-rule spacing, and returns
  the new placements.

The thesis also notes the limits of pure linear-inequality systems
("a component centered between two others cannot be expressed"); the
declarative kernel covers such relations, while this module covers the
high-volume geometric case efficiently — the performance division of
labour section 9.2.3 prescribes.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

from .geometry import Point, Rect, Transform

_SOURCE = object()  # virtual origin node


class CompactionError(ValueError):
    """Contradictory constraints (a positive cycle in the graph)."""


class Compactor1D:
    """A one-dimensional constraint-graph compactor.

    Elements are arbitrary hashable keys.  Constraints:

    * :meth:`separate` — ``position(b) >= position(a) + gap``;
    * :meth:`align` — ``position(b) == position(a) + offset``;
    * :meth:`fix` — ``position(a) == value`` exactly;
    * :meth:`at_least` — ``position(a) >= value`` (origin separation).

    ``solve`` returns the minimal (longest-path) positions: every
    element as far left/down as its constraints allow.
    """

    def __init__(self) -> None:
        self._elements: List[Hashable] = []
        self._index: Dict[Hashable, int] = {}
        #: edges (from, to, weight): position(to) >= position(from) + weight
        self._edges: List[Tuple[Any, Any, float]] = []
        self._fixed: Dict[Hashable, float] = {}

    def add_element(self, element: Hashable) -> None:
        if element not in self._index:
            self._index[element] = len(self._elements)
            self._elements.append(element)
            # every element sits at or right of the origin by default
            self._edges.append((_SOURCE, element, 0.0))

    @property
    def elements(self) -> List[Hashable]:
        return list(self._elements)

    # -- constraint entry -------------------------------------------------------

    def separate(self, left: Hashable, right: Hashable, gap: float) -> None:
        """position(right) >= position(left) + gap."""
        self.add_element(left)
        self.add_element(right)
        self._edges.append((left, right, gap))

    def align(self, first: Hashable, second: Hashable,
              offset: float = 0.0) -> None:
        """position(second) == position(first) + offset."""
        self.separate(first, second, offset)
        self.separate(second, first, -offset)

    def fix(self, element: Hashable, value: float) -> None:
        """position(element) == value."""
        self.add_element(element)
        self._fixed[element] = value

    def at_least(self, element: Hashable, value: float) -> None:
        """position(element) >= value."""
        self.add_element(element)
        self._edges.append((_SOURCE, element, value))

    # -- solving -------------------------------------------------------------------

    def solve(self) -> Dict[Hashable, float]:
        """Longest-path positions from the origin (Bellman-Ford style).

        Raises :class:`CompactionError` on a positive cycle (mutually
        contradictory separations) or when a fixed position is
        over-constrained from below.
        """
        positions: Dict[Any, float] = {_SOURCE: 0.0}
        for element in self._elements:
            positions[element] = self._fixed.get(element, 0.0)

        edges = list(self._edges)
        n = len(self._elements) + 1
        for iteration in range(n):
            changed = False
            for source, target, weight in edges:
                candidate = positions[source] + weight
                if candidate > positions[target] + 1e-12:
                    if target in self._fixed:
                        raise CompactionError(
                            f"fixed element {target!r} at "
                            f"{self._fixed[target]} is pushed to "
                            f"{candidate} by its constraints")
                    if target is _SOURCE:
                        raise CompactionError(
                            "constraints push below the origin")
                    positions[target] = candidate
                    changed = True
            if not changed:
                break
        else:
            raise CompactionError(
                "contradictory separation constraints (positive cycle)")
        del positions[_SOURCE]
        return positions

    def critical_path(self) -> List[Hashable]:
        """Elements on the maximally constrained (longest) path.

        The chain of tight constraints that determines the total extent —
        what a designer must attack to shrink the layout.
        """
        positions = self.solve()
        positions_with_source = dict(positions)
        positions_with_source[_SOURCE] = 0.0
        # walk back from the rightmost element along tight edges
        end = max(positions, key=lambda element: positions[element])
        path = [end]
        current = end
        while current is not _SOURCE:
            for source, target, weight in self._edges:
                if target is current and abs(
                        positions_with_source[source] + weight
                        - positions_with_source[current]) <= 1e-9 \
                        and source is not current:
                    if source is _SOURCE:
                        current = _SOURCE
                    else:
                        path.append(source)
                        current = source
                    break
            else:
                break
        path.reverse()
        return path


def compact_row(instances: Sequence[Any], spacing: float = 0.0,
                axis: str = "x") -> Dict[Any, float]:
    """Compact placed instances along one axis with a design-rule spacing.

    Instances are ordered by their current coordinate; adjacent pairs
    receive separation constraints of ``extent + spacing``.  Returns the
    new minimal coordinates (of each instance's box origin); the caller
    applies them (e.g. by re-instantiating with new transforms).
    """
    if axis not in ("x", "y"):
        raise ValueError("axis must be 'x' or 'y'")
    boxes = {}
    for instance in instances:
        box = instance.bounding_box()
        if box is None:
            raise CompactionError(f"{instance!r} has no bounding box")
        boxes[instance] = box
    ordered = sorted(instances,
                     key=lambda i: getattr(boxes[i].origin, axis))
    compactor = Compactor1D()
    for instance in ordered:
        compactor.add_element(instance)
    for left, right in zip(ordered, ordered[1:]):
        extent = getattr(boxes[left].extent, axis)
        compactor.separate(left, right, extent + spacing)
    return compactor.solve()
