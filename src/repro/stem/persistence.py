"""Design persistence — saving and loading the design database.

STEM keeps designs in a central database (section 1.2); this module
provides the equivalent file form: a JSON-able dictionary encoding of
cell libraries, covering interfaces (signals, pins, typing), parameters,
characteristics (bounding boxes, declared delays with their values and
justifications), device specs, internal structure (subcells, placements,
nets, connections) and the inheritance forest.

Derived state is *not* persisted: delay networks are rebuilt on demand
and propagated values re-derive from the externally justified values
(the same consistency argument as section 6.3 — store only essential
data, recalculate views).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from ..core.engine import PropagationContext
from ..core.justification import (
    APPLICATION,
    DEFAULT,
    ExternalJustification,
    USER,
    is_propagated,
)
from .cell import CellClass, CellInstance
from .geometry import Point, Rect, Transform
from .library import CellLibrary
from .parameters import ParameterRange
from .signals import PinSpec
from .types import S_MODULE_SIGNAL_TYPE


class PersistenceError(ValueError):
    """Malformed persisted design data."""


def _justification_name(justification: Any) -> str:
    if isinstance(justification, ExternalJustification):
        return justification.name
    if is_propagated(justification):
        return "APPLICATION"  # propagated values re-derive; keep the figure
    return "APPLICATION"


def _justification_from(name: str) -> ExternalJustification:
    return ExternalJustification(name)


def _rect_to_list(rect: Optional[Rect]) -> Optional[List[float]]:
    if rect is None:
        return None
    return [rect.origin.x, rect.origin.y, rect.corner.x, rect.corner.y]


def _rect_from_list(data: Optional[List[float]]) -> Optional[Rect]:
    if data is None:
        return None
    return Rect(Point(data[0], data[1]), Point(data[2], data[3]))


def _type_name(signal_type: Any) -> Optional[str]:
    return signal_type.name if signal_type is not None else None


def _type_from_name(name: Optional[str]) -> Any:
    if name is None:
        return None
    return S_MODULE_SIGNAL_TYPE.lookup(name)


# ---------------------------------------------------------------------------
# Serialization
# ---------------------------------------------------------------------------

def serialize_cell(cell: CellClass) -> Dict[str, Any]:
    """Encode one cell class (without its subclass tree)."""
    data: Dict[str, Any] = {
        "name": cell.name,
        "superclass": cell.superclass.name if cell.superclass else None,
        "is_generic": cell.is_generic,
        "documentation": cell.documentation,
        "signals": [_serialize_signal(signal)
                    for signal in cell.signals.values()],
        "parameters": [_serialize_parameter(name, parameter)
                       for name, parameter in cell.parameters.items()],
        "delays": [_serialize_delay(delay)
                   for delay in cell.delays.values()],
        "bounding_box": _serialize_valued(
            _rect_to_list(cell.bounding_box_var.value),
            cell.bounding_box_var.last_set_by),
        "subcells": [_serialize_instance(instance)
                     for instance in cell.subcells],
        "nets": [_serialize_net(net) for net in cell.nets.values()],
    }
    device = getattr(cell, "device", None)
    if device is not None:
        data["device"] = {"kind": device.kind,
                          "terminals": list(device.terminals),
                          "defaults": dict(device.defaults)}
    return data


def _serialize_valued(value: Any, justification: Any) -> Optional[Dict[str, Any]]:
    if value is None:
        return None
    return {"value": value, "justification": _justification_name(justification)}


def _serialize_signal(signal: Any) -> Dict[str, Any]:
    return {
        "name": signal.name,
        "direction": signal.direction,
        "data_type": _type_name(signal.data_type_var.value),
        "electrical_type": _type_name(signal.electrical_type_var.value),
        "bit_width": _serialize_valued(signal.bit_width_var.value,
                                       signal.bit_width_var.last_set_by),
        "output_resistance": signal.output_resistance,
        "load_capacitance": signal.load_capacitance,
        "max_load_capacitance": signal.max_load_capacitance,
        "max_fanout": signal.max_fanout,
        "pins": [{"side": pin.side, "position": pin.position}
                 for pin in signal.pins],
    }


def _serialize_parameter(name: str, parameter: Any) -> Dict[str, Any]:
    range_ = parameter.range
    data: Dict[str, Any] = {
        "name": name,
        "justification": _justification_name(parameter.last_set_by),
    }
    if range_ is not None:
        data.update({"low": range_.low, "high": range_.high,
                     "choices": (list(range_.choices)
                                 if range_.choices is not None else None),
                     "default": range_.default})
    return data


def _serialize_delay(delay: Any) -> Dict[str, Any]:
    return {
        "source": delay.source_name,
        "dest": delay.dest_name,
        "value": _serialize_valued(delay.value, delay.last_set_by),
    }


def _serialize_instance(instance: CellInstance) -> Dict[str, Any]:
    own_box = instance.bounding_box_var.value
    return {
        "name": instance.name,
        "cell": instance.cell_class.name,
        "transform": {"orientation": instance.transform.orientation,
                      "offset": [instance.transform.offset.x,
                                 instance.transform.offset.y]},
        "bounding_box": _serialize_valued(
            _rect_to_list(own_box), instance.bounding_box_var.last_set_by),
        "parameters": {name: parameter.value
                       for name, parameter in instance.parameters.items()
                       if parameter.value is not None},
    }


def _serialize_net(net: Any) -> Dict[str, Any]:
    return {
        "name": net.name,
        "endpoints": [[owner.name if owner is not None else None, signal]
                      for owner, signal in net.endpoints],
    }


def serialize_library(library: CellLibrary) -> Dict[str, Any]:
    """Encode a whole library, cells ordered so dependencies come first."""
    ordered: List[CellClass] = []
    seen: set = set()

    def visit(cell: CellClass) -> None:
        if cell.name in seen:
            return
        seen.add(cell.name)
        if cell.superclass is not None:
            visit(cell.superclass)
        for instance in cell.subcells:
            visit(instance.cell_class)
        ordered.append(cell)

    for cell in library:
        visit(cell)
    return {"name": library.name,
            "cells": [serialize_cell(cell) for cell in ordered]}


def dumps(library: CellLibrary, **kwargs: Any) -> str:
    """JSON text of a library."""
    return json.dumps(serialize_library(library), **kwargs)


# ---------------------------------------------------------------------------
# Deserialization
# ---------------------------------------------------------------------------

def load_library(data: Dict[str, Any],
                 context: Optional[PropagationContext] = None) -> CellLibrary:
    """Rebuild a library from its encoded form.

    Values are restored with propagation disabled (they were consistent
    when saved); constraint networks re-form as structure is rebuilt, so
    later edits are checked as usual.
    """
    library = CellLibrary(data.get("name", "library"), context=context)
    for cell_data in data.get("cells", []):
        _load_cell(library, cell_data)
    return library


def loads(text: str,
          context: Optional[PropagationContext] = None) -> CellLibrary:
    return load_library(json.loads(text), context=context)


def _load_cell(library: CellLibrary, data: Dict[str, Any]) -> CellClass:
    superclass = None
    if data.get("superclass"):
        superclass = library.cell(data["superclass"])
    cell = library.define(data["name"], superclass,
                          is_generic=data.get("is_generic", False),
                          documentation=data.get("documentation", ""))
    context = library.context

    with context.propagation_disabled():
        for signal_data in data.get("signals", []):
            _load_signal(cell, signal_data)
        for parameter_data in data.get("parameters", []):
            name = parameter_data["name"]
            range_ = ParameterRange(
                low=parameter_data.get("low"),
                high=parameter_data.get("high"),
                choices=parameter_data.get("choices"),
                default=parameter_data.get("default"))
            justification = _justification_from(
                parameter_data.get("justification", "APPLICATION"))
            if name in cell.parameters:
                # Inherited parameter: the subclass may have narrowed the
                # range (its own class-parameter variable diverged from
                # the superclass's); restore that divergence or the
                # narrowing is silently lost on reload.
                parameter = cell.parameters[name]
                if parameter.range != range_:
                    parameter._store(range_, justification)
                continue
            parameter = cell.add_parameter(name, range=range_)
            parameter._store(range_, justification)
        for delay_data in data.get("delays", []):
            _load_delay(cell, delay_data)
        box_data = data.get("bounding_box")
        if box_data is not None:
            cell.bounding_box_var._store(
                _rect_from_list(box_data["value"]),
                _justification_from(box_data["justification"]))
        if "device" in data:
            from ..spice.devices import DeviceSpec
            spec = data["device"]
            cell.device = DeviceSpec(spec["kind"], tuple(spec["terminals"]),
                                     dict(spec.get("defaults", {})))

        instances: Dict[str, CellInstance] = {}
        for instance_data in data.get("subcells", []):
            instances[instance_data["name"]] = _load_instance(
                library, cell, instance_data)
        for net_data in data.get("nets", []):
            net = cell.add_net(net_data["name"])
            for owner_name, signal_name in net_data.get("endpoints", []):
                if owner_name is None:
                    net.connect_io(signal_name)
                else:
                    try:
                        owner = instances[owner_name]
                    except KeyError:
                        raise PersistenceError(
                            f"net {net.name!r} references unknown subcell "
                            f"{owner_name!r}") from None
                    net.connect(owner, signal_name)
    return cell


def _load_signal(cell: CellClass, data: Dict[str, Any]) -> None:
    pins = [PinSpec(p["side"], p["position"]) for p in data.get("pins", [])]
    if data["name"] in cell.signals:
        # Inherited signal: restore subclass-specific geometry/electrical
        # attributes (they may have diverged from the superclass) before
        # refreshing the typing values below.
        signal = cell.signal(data["name"])
        signal.direction = data.get("direction", signal.direction)
        signal.pins = pins or signal.pins
        signal.output_resistance = data.get("output_resistance",
                                            signal.output_resistance)
        signal.load_capacitance = data.get("load_capacitance",
                                           signal.load_capacitance)
        signal.max_load_capacitance = data.get("max_load_capacitance",
                                               signal.max_load_capacitance)
        signal.max_fanout = data.get("max_fanout", signal.max_fanout)
    else:
        signal = cell.define_signal(
            data["name"], data.get("direction", "in"),
            output_resistance=data.get("output_resistance", 0.0),
            load_capacitance=data.get("load_capacitance", 0.0),
            max_load_capacitance=data.get("max_load_capacitance"),
            max_fanout=data.get("max_fanout"),
            pins=pins)
    signal.data_type_var._store(_type_from_name(data.get("data_type")),
                                APPLICATION)
    signal.electrical_type_var._store(
        _type_from_name(data.get("electrical_type")), APPLICATION)
    width = data.get("bit_width")
    if width is not None:
        signal.bit_width_var._store(
            width["value"], _justification_from(width["justification"]))


def _load_delay(cell: CellClass, data: Dict[str, Any]) -> None:
    key = (data["source"], data["dest"])
    if key in cell.delays:
        delay = cell.delays[key]  # inherited
    else:
        delay = cell.declare_delay(*key)
    value = data.get("value")
    if value is not None:
        delay._store(value["value"],
                     _justification_from(value["justification"]))


def _load_instance(library: CellLibrary, parent: CellClass,
                   data: Dict[str, Any]) -> CellInstance:
    child = library.cell(data["cell"])
    transform_data = data.get("transform", {})
    transform = Transform(
        transform_data.get("orientation", "R0"),
        Point(*transform_data.get("offset", [0, 0])))
    instance = child.instantiate(parent, data["name"], transform)
    box_data = data.get("bounding_box")
    if box_data is not None:
        instance.bounding_box_var._store(
            _rect_from_list(box_data["value"]),
            _justification_from(box_data["justification"]))
    for name, value in data.get("parameters", {}).items():
        instance.parameters[name]._store(value, USER)
    return instance
