"""Parameterized module generators — compiled-cell families.

The thesis's module compilers (section 6.4.1) build *one* compiled cell
from placement and size parameters; real silicon-compiler use wants the
family: "give me the N-bit version".  A :class:`ModuleGenerator` wraps a
build procedure parameterized by keyword arguments, materialises a cell
class per distinct parameter binding (cached — the same parameters give
the *same* class object, so all 8-bit adders share characteristics and
constraint networks exactly as chapter 5's hierarchy expects), and
optionally registers the generated classes in a library.

This is also the natural producer of the generic-cell realization
hierarchies of chapter 8: ``generator.generic`` exposes an optional
generic ancestor so generated realizations slot into module selection.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

from .cell import CellClass, CellInstance
from .geometry import IDENTITY, Transform
from .library import CellLibrary

#: A build procedure: fills a freshly created cell class from parameters.
Builder = Callable[..., None]


class ModuleGenerator:
    """A family of compiled cells, one class per parameter binding.

    Parameters
    ----------
    name:
        Family name; generated classes are named
        ``{name}[k1=v1,k2=v2]``.
    build:
        ``build(cell, **params)`` — fills ``cell`` (signals, structure,
        characteristics).  Runs once per distinct binding.
    library:
        Optional catalogue generated classes are registered in.
    generic:
        Optional generic ancestor: generated classes subclass it, so
        they participate in module selection over that generic.
    defaults:
        Default parameter values merged under explicit arguments.
    """

    def __init__(self, name: str, build: Builder, *,
                 library: Optional[CellLibrary] = None,
                 generic: Optional[CellClass] = None,
                 defaults: Optional[Dict[str, Any]] = None) -> None:
        self.name = name
        self.build = build
        self.library = library
        self.generic = generic
        self.defaults = dict(defaults or {})
        self._cache: Dict[Tuple[Tuple[str, Any], ...], CellClass] = {}

    # -- materialisation -------------------------------------------------------

    def _binding(self, params: Dict[str, Any]) -> Tuple[Tuple[str, Any], ...]:
        merged = dict(self.defaults)
        merged.update(params)
        return tuple(sorted(merged.items()))

    def cell_name(self, **params: Any) -> str:
        binding = self._binding(params)
        body = ",".join(f"{key}={value}" for key, value in binding)
        return f"{self.name}[{body}]"

    def cell_for(self, **params: Any) -> CellClass:
        """The family member for these parameters (cached)."""
        binding = self._binding(params)
        cached = self._cache.get(binding)
        if cached is not None:
            return cached
        name = self.cell_name(**params)
        if self.library is not None:
            cell = self.library.define(name, self.generic)
        else:
            cell = CellClass(name, self.generic,
                             context=(self.generic.context
                                      if self.generic else None))
        self.build(cell, **dict(binding))
        self._cache[binding] = cell
        return cell

    def instantiate(self, parent: Optional[CellClass] = None,
                    name: Optional[str] = None,
                    transform: Transform = IDENTITY,
                    **params: Any) -> CellInstance:
        """Instantiate the family member for these parameters."""
        return self.cell_for(**params).instantiate(parent, name, transform)

    # -- introspection -------------------------------------------------------------

    @property
    def generated(self) -> Dict[Tuple[Tuple[str, Any], ...], CellClass]:
        return dict(self._cache)

    def __repr__(self) -> str:
        return (f"<ModuleGenerator {self.name} "
                f"({len(self._cache)} member(s) materialised)>")
