"""Parameter dual variables (section 5.1.1).

For a parameter of a cell, the class-level variable characterises the
*range* of values the cell can handle (and possibly a default); the
instance-level variable holds the actual value in each use of the cell.

* assigning an instance parameter checks the value against the class
  range;
* assigning a new class range checks every existing instance value;
* except for defaults (which may flow class → instance), no propagation
  occurs between the duals.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Sequence

from ..core.justification import is_user
from .implicit import ClassInstVar, InstanceInstVar


class ParameterRange:
    """A class parameter characterisation: bounds or choices, plus default.

    Either ``low``/``high`` (inclusive numeric bounds, either may be
    None) or ``choices`` (an explicit value set) — not both.
    """

    __slots__ = ("low", "high", "choices", "default")

    def __init__(self, low: Any = None, high: Any = None,
                 choices: Optional[Iterable[Any]] = None,
                 default: Any = None) -> None:
        if choices is not None and (low is not None or high is not None):
            raise ValueError("give either bounds or choices, not both")
        self.low = low
        self.high = high
        self.choices = tuple(choices) if choices is not None else None
        self.default = default
        if default is not None and not self.admits(default):
            raise ValueError(f"default {default!r} outside the range")

    def admits(self, value: Any) -> bool:
        if value is None:
            return True
        if self.choices is not None:
            return value in self.choices
        if self.low is not None and value < self.low:
            return False
        if self.high is not None and value > self.high:
            return False
        return True

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, ParameterRange)
                and (self.low, self.high, self.choices, self.default)
                == (other.low, other.high, other.choices, other.default))

    def __hash__(self) -> int:
        return hash((self.low, self.high, self.choices, self.default))

    def __repr__(self) -> str:
        if self.choices is not None:
            body = f"choices={list(self.choices)!r}"
        else:
            body = f"low={self.low!r}, high={self.high!r}"
        if self.default is not None:
            body += f", default={self.default!r}"
        return f"ParameterRange({body})"


class ClassParameter(ClassInstVar):
    """Class-level parameter variable; its value is a :class:`ParameterRange`."""

    @property
    def range(self) -> Optional[ParameterRange]:
        return self.value

    def admits(self, value: Any) -> bool:
        return self.value is None or self.value.admits(value)

    def is_satisfied(self) -> bool:
        """A new range must admit every existing instance value."""
        return all(instance_var.consistent_with_class()
                   for instance_var in self.dual_variables())


class InstanceParameter(InstanceInstVar):
    """Per-instance parameter value, checked against the class range."""

    def consistent_with_class(self) -> bool:
        class_var = self.class_var
        if class_var is None or self.value is None:
            return True
        return class_var.admits(self.value)

    def immediate_inference_by_changing(self, variable: Any) -> None:
        """Only the *default* flows down, and only into an empty slot."""
        class_var = self.class_var
        if variable is not class_var or class_var is None:
            return
        if self.value is not None:
            return
        range_ = class_var.value
        if range_ is None or range_.default is None:
            return
        self.set_propagated(range_.default, constraint=self,
                            dependency_record=class_var)
