"""Tile-based module compilers and compiler views (section 6.4.1).

Instances of module compilers generate a compiled cell's internal
structure from placement, orientation and size parameters:

* :class:`VectorCompiler` — a linear array of subcells;
* :class:`WordCompiler` — a vector with special end-cells;
* :class:`MatrixCompiler` — a two-dimensional array;
* :class:`GraphCompiler` — arbitrary user-specified grids with repetition
  and connection control (the 5-bit adder of Fig. 6.2).

All butting io-pins establish connections between their respective
signals; the designer can *disallow* connections on specific pins of a
GraphCompiler, which withdraws them from butting.

The compilation routines treat subcells as black boxes: a
:class:`CompilerView` interfaces each subcell to the routines, exposing
only the bounding box and the io-pins — the latter organized in four
side-sorted lists to suit the butting access pattern.  View data are
erased whenever the model changes and recalculated on next access
(section 6.4.1's argument for views over either per-query recalculation
or global temporaries).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from .cell import CellClass, CellInstance
from .geometry import ORIGIN, Point, Rect, Transform

_TOLERANCE = 1e-9


class CompilerView:
    """A calculated view of a subcell for the compilation routines.

    Exposes the instance's bounding box and its io-pins grouped by side
    (``left``/``right``/``top``/``bottom``) and sorted by increasing
    coordinate along the side.  Registered as a dependent of the model's
    cell class so cached data are erased on change broadcast.
    """

    def __init__(self, instance: CellInstance) -> None:
        self.model = instance
        self._bounding_box: Optional[Rect] = None
        self._pins: Optional[Dict[str, List[Tuple[Point, str]]]] = None
        instance.cell_class.add_dependent(self)

    def release(self) -> None:
        """Detach from the model (stop receiving change broadcasts)."""
        self.model.cell_class.remove_dependent(self)

    def model_changed(self, model: Any, aspect: Optional[str]) -> None:
        """Erase derived data; next access recalculates."""
        self._bounding_box = None
        self._pins = None

    # -- derived data -------------------------------------------------------

    def bounding_box(self) -> Optional[Rect]:
        if self._bounding_box is None:
            self._bounding_box = self.model.bounding_box()
        return self._bounding_box

    def pins(self) -> Dict[str, List[Tuple[Point, str]]]:
        """Pins per side: ``{side: [(point, signal_name), ...]}``, sorted."""
        if self._pins is None:
            self._pins = self._calculate_pins()
        return self._pins

    def pins_on(self, side: str) -> List[Tuple[Point, str]]:
        return self.pins().get(side, [])

    def _calculate_pins(self) -> Dict[str, List[Tuple[Point, str]]]:
        box = self.bounding_box()
        result: Dict[str, List[Tuple[Point, str]]] = {
            "left": [], "right": [], "top": [], "bottom": []}
        if box is None:
            return result
        for signal_name, points in self.model.io_pins().items():
            for point in points:
                side = _side_of(point, box)
                if side is not None:
                    result[side].append((point, signal_name))
        for side, entries in result.items():
            axis = 1 if side in ("left", "right") else 0
            entries.sort(key=lambda entry: tuple(entry[0])[axis])
        return result


def _side_of(point: Point, box: Rect) -> Optional[str]:
    if abs(point.x - box.origin.x) <= _TOLERANCE:
        return "left"
    if abs(point.x - box.corner.x) <= _TOLERANCE:
        return "right"
    if abs(point.y - box.origin.y) <= _TOLERANCE:
        return "bottom"
    if abs(point.y - box.corner.y) <= _TOLERANCE:
        return "top"
    return None


class Slot:
    """One grid position of a GraphCompiler placement.

    ``parameters`` are per-slot instance parameter values (device
    sizings, widths) assigned after instantiation — the "size parameters
    specified in the compilers" of section 6.4.1.
    """

    __slots__ = ("cell_class", "orientation", "name", "parameters")

    def __init__(self, cell_class: CellClass, orientation: str = "R0",
                 name: Optional[str] = None,
                 parameters: Optional[Dict[str, Any]] = None) -> None:
        self.cell_class = cell_class
        self.orientation = orientation
        self.name = name
        self.parameters = dict(parameters or {})

    def __repr__(self) -> str:
        return f"Slot({self.cell_class.name}, {self.orientation!r})"


class GraphCompiler:
    """Grid placement with butting connections and connection control.

    The designer places cell classes on a sparse ``(column, row)`` grid
    (columns grow rightward, rows grow upward), optionally repeats column
    ranges (Fig. 6.2's "repeat the 2-bit slice"), disallows individual
    pin connections, and compiles.  Compilation:

    1. sizes each column/row to its widest/tallest occupant;
    2. instantiates every slot with its placement transform, stretching
       each instance's bounding box to fill the slot;
    3. connects all butting io-pins of adjacent instances via nets
       (creating them in the compiled cell), skipping disallowed pins.
    """

    def __init__(self) -> None:
        self.grid: Dict[Tuple[int, int], Slot] = {}
        self.spacing: float = 0.0
        self._disallowed: set = set()
        self.instances: Dict[Tuple[int, int], CellInstance] = {}
        self.cell: Optional[CellClass] = None

    # -- specification ------------------------------------------------------

    def place(self, column: int, row: int, cell_class: CellClass,
              orientation: str = "R0", name: Optional[str] = None,
              parameters: Optional[Dict[str, Any]] = None) -> Slot:
        if cell_class.is_generic:
            raise ValueError(f"cannot compile generic cell "
                             f"{cell_class.name!r} into a layout")
        slot = Slot(cell_class, orientation, name, parameters)
        self.grid[(column, row)] = slot
        return slot

    def repeat_columns(self, first: int, last: int, times: int) -> None:
        """Duplicate columns ``first..last`` ``times-1`` more times.

        Existing columns to the right shift to make room; the slice
        appears ``times`` times in total (Fig. 6.2's repetition count).
        """
        if times < 1:
            raise ValueError("times must be >= 1")
        width = last - first + 1
        shift = width * (times - 1)
        moved = {}
        for (column, row), slot in self.grid.items():
            if column > last:
                moved[(column + shift, row)] = slot
            else:
                moved[(column, row)] = slot
        for copy in range(1, times):
            for (column, row), slot in list(self.grid.items()):
                if first <= column <= last:
                    moved[(column + width * copy, row)] = Slot(
                        slot.cell_class, slot.orientation, slot.name,
                        slot.parameters)
        self.grid = moved

    def disallow(self, column: int, row: int, signal_name: str) -> None:
        """Withdraw a pin of the slot at (column, row) from butting."""
        self._disallowed.add((column, row, signal_name))

    # -- compilation -----------------------------------------------------------

    def compile_into(self, cell: CellClass) -> List[CellInstance]:
        """Generate ``cell``'s internal structure from the grid."""
        if not self.grid:
            raise ValueError("nothing placed on the compiler grid")
        self.cell = cell
        cell.structure_layout = self

        columns = sorted({c for c, _ in self.grid})
        rows = sorted({r for _, r in self.grid})
        widths = {c: 0.0 for c in columns}
        heights = {r: 0.0 for r in rows}
        boxes: Dict[Tuple[int, int], Rect] = {}
        for (column, row), slot in self.grid.items():
            class_box = slot.cell_class.bounding_box()
            if class_box is None:
                raise ValueError(f"cell {slot.cell_class.name!r} has no "
                                 f"bounding box; cannot place it")
            oriented = Transform(slot.orientation).apply_to(class_box)
            boxes[(column, row)] = oriented
            widths[column] = max(widths[column], oriented.width)
            heights[row] = max(heights[row], oriented.height)

        x_positions: Dict[int, float] = {}
        x = 0.0
        for column in columns:
            x_positions[column] = x
            x += widths[column] + self.spacing
        y_positions: Dict[int, float] = {}
        y = 0.0
        for row in rows:
            y_positions[row] = y
            y += heights[row] + self.spacing

        self.instances = {}
        views: Dict[Tuple[int, int], CompilerView] = {}
        for (column, row), slot in sorted(self.grid.items()):
            slot_origin = Point(x_positions[column], y_positions[row])
            oriented = boxes[(column, row)]
            offset = slot_origin - oriented.origin
            transform = Transform(slot.orientation, offset)
            name = slot.name or f"{slot.cell_class.name}[{column},{row}]"
            instance = slot.cell_class.instantiate(cell, name, transform)
            for parameter_name, value in slot.parameters.items():
                if not instance.set_parameter(parameter_name, value):
                    raise ValueError(
                        f"slot parameter {parameter_name}={value!r} "
                        f"violates constraints on {name!r}")
            slot_rect = Rect(slot_origin,
                             slot_origin + Point(widths[column], heights[row]))
            instance.bounding_box_var.set(slot_rect)
            self.instances[(column, row)] = instance
            views[(column, row)] = CompilerView(instance)

        try:
            self._connect_butting(columns, rows, views)
        finally:
            for view in views.values():
                view.release()
        return list(self.instances.values())

    def _connect_butting(self, columns: Sequence[int], rows: Sequence[int],
                         views: Dict[Tuple[int, int], CompilerView]) -> None:
        for i, column in enumerate(columns[:-1]):
            next_column = columns[i + 1]
            for row in rows:
                left = (column, row)
                right = (next_column, row)
                if left in views and right in views:
                    self._butt(left, "right", right, "left", views, axis=1)
        for j, row in enumerate(rows[:-1]):
            next_row = rows[j + 1]
            for column in columns:
                below = (column, row)
                above = (column, next_row)
                if below in views and above in views:
                    self._butt(below, "top", above, "bottom", views, axis=0)

    def _butt(self, key_a: Tuple[int, int], side_a: str,
              key_b: Tuple[int, int], side_b: str,
              views: Dict[Tuple[int, int], CompilerView], axis: int) -> None:
        pins_a = [(point, signal) for point, signal in
                  views[key_a].pins_on(side_a)
                  if (key_a[0], key_a[1], signal) not in self._disallowed]
        pins_b = [(point, signal) for point, signal in
                  views[key_b].pins_on(side_b)
                  if (key_b[0], key_b[1], signal) not in self._disallowed]
        for point_a, signal_a in pins_a:
            for point_b, signal_b in pins_b:
                if abs(tuple(point_a)[axis] - tuple(point_b)[axis]) \
                        <= _TOLERANCE and \
                        abs(tuple(point_a)[1 - axis]
                            - tuple(point_b)[1 - axis]) <= _TOLERANCE:
                    self._join(self.instances[key_a], signal_a,
                               self.instances[key_b], signal_b)

    def _join(self, instance_a: CellInstance, signal_a: str,
              instance_b: CellInstance, signal_b: str) -> None:
        net_a = instance_a.net_on(signal_a)
        net_b = instance_b.net_on(signal_b)
        if net_a is not None and net_a is net_b:
            return
        if net_a is not None:
            net_a.connect(instance_b, signal_b)
        elif net_b is not None:
            net_b.connect(instance_a, signal_a)
        else:
            net = self.cell.add_net()
            net.connect(instance_a, signal_a)
            net.connect(instance_b, signal_b)


    # -- boundary export ------------------------------------------------------

    def export_boundary(self, prefix_by_index: bool = True) -> List[str]:
        """Promote unconnected boundary pins to io-signals of the cell.

        Fig. 6.2: after butting, the pins left on the compiled cell's
        outer boundary (the a/b/sum buses, the word-level carry ends)
        become the cell's own interface.  Each unconnected pin whose
        location lies on the compiled cell's bounding-box perimeter gets
        a parent io-signal (named ``{signal}_{n}`` when the same signal
        name occurs in several slots and ``prefix_by_index`` is true)
        wired to the instance signal by a net.  Pins disallowed with
        :meth:`disallow` were withdrawn from butting *and* are withdrawn
        here (the thesis's "withdraws the non-connecting io-pins from
        the boundary of a cell").

        Returns the names of the created io-signals.  Call after
        :meth:`compile_into`.
        """
        if self.cell is None:
            raise RuntimeError("compile_into must run before export_boundary")
        cell = self.cell
        outer = cell.bounding_box()
        created: List[str] = []
        name_counts: Dict[str, int] = {}
        for (column, row), instance in sorted(self.instances.items()):
            box = instance.bounding_box()
            for signal_name, points in instance.io_pins().items():
                if (column, row, signal_name) in self._disallowed:
                    continue  # withdrawn from the boundary
                if instance.net_on(signal_name) is not None:
                    continue  # already butted internally
                signal = instance.cell_class.signal(signal_name)
                on_boundary = any(
                    _side_of(point, outer) is not None for point in points)
                if not on_boundary:
                    continue
                index = name_counts.get(signal_name, 0)
                name_counts[signal_name] = index + 1
                io_name = (f"{signal_name}_{index}" if prefix_by_index
                           else signal_name)
                if io_name in cell.signals:
                    raise ValueError(f"cell {cell.name!r} already has a "
                                     f"signal {io_name!r}")
                cell.define_signal(
                    io_name, signal.direction,
                    output_resistance=signal.output_resistance,
                    load_capacitance=signal.load_capacitance,
                    pins=list(signal.pins))
                net = cell.add_net(f"io_{io_name}")
                net.connect_io(io_name)
                net.connect(instance, signal_name)
                created.append(io_name)
        return created


class VectorCompiler(GraphCompiler):
    """A linear array of one cell class (section 6.4.1)."""

    def __init__(self, element: CellClass, count: int,
                 direction: str = "right", spacing: float = 0.0) -> None:
        super().__init__()
        if count < 1:
            raise ValueError("count must be >= 1")
        if direction not in ("right", "up"):
            raise ValueError("direction must be 'right' or 'up'")
        self.spacing = spacing
        for index in range(count):
            position = (index, 0) if direction == "right" else (0, index)
            self.place(*position, element, name=f"{element.name}.{index}")


class WordCompiler(GraphCompiler):
    """A vector of subcells with special end-cells (section 6.4.1)."""

    def __init__(self, element: CellClass, count: int, *,
                 left_end: Optional[CellClass] = None,
                 right_end: Optional[CellClass] = None,
                 spacing: float = 0.0) -> None:
        super().__init__()
        if count < 1:
            raise ValueError("count must be >= 1")
        self.spacing = spacing
        column = 0
        if left_end is not None:
            self.place(column, 0, left_end, name=f"{left_end.name}.L")
            column += 1
        for index in range(count):
            self.place(column, 0, element, name=f"{element.name}.{index}")
            column += 1
        if right_end is not None:
            self.place(column, 0, right_end, name=f"{right_end.name}.R")


class MatrixCompiler(GraphCompiler):
    """A two-dimensional array of one cell class (section 6.4.1)."""

    def __init__(self, element: CellClass, columns: int, rows: int,
                 spacing: float = 0.0) -> None:
        super().__init__()
        if columns < 1 or rows < 1:
            raise ValueError("columns and rows must be >= 1")
        self.spacing = spacing
        for column in range(columns):
            for row in range(rows):
                self.place(column, row, element,
                           name=f"{element.name}[{column},{row}]")
