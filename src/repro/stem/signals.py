"""IO-signals, pins and nets (sections 3.3.2, 7.1).

An :class:`IOSignal` is part of a cell class's interface definition.  Its
three typing properties — bit width, data type, electrical type — live in
class-level variables (data/electrical types are *shared* by all
instances of the cell; bit widths are shared too unless a compiled
instance owns its width, section 7.1 end).

A :class:`Net` electrically connects signals of subcells to one another
and possibly to the containing cell's own io-signals.  Connecting a
signal to a net joins the signal's typing variables to the net's three
typing constraints (bit-width equality, data/electrical compatibility),
so type checking and inference run incrementally as connectivity is
edited, and disconnecting removes them again.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..checking.sigtypes import (
    BitWidthMixin,
    ClassBWidth,
    SignalTypeVariable,
    make_net_typing_constraints,
)
from ..core.variable import Variable
from .geometry import Point, Rect

_SIDES = ("left", "right", "top", "bottom")


class PinSpec:
    """A pin position: a side of the bounding box and a 0..1 fraction.

    Pin coordinates are derived from a box, which is what lets STEM
    stretch io-pins to a larger instance bounding box (Fig. 7.6): the
    same spec evaluated on the bigger box lands on its perimeter.
    """

    __slots__ = ("side", "position")

    def __init__(self, side: str, position: float = 0.5) -> None:
        if side not in _SIDES:
            raise ValueError(f"side must be one of {_SIDES}, got {side!r}")
        if not 0.0 <= position <= 1.0:
            raise ValueError(f"position must be within [0, 1], got {position}")
        self.side = side
        self.position = position

    def point_on(self, box: Rect) -> Point:
        """The pin location on ``box``'s perimeter."""
        if self.side == "left":
            return Point(box.origin.x, box.origin.y + self.position * box.height)
        if self.side == "right":
            return Point(box.corner.x, box.origin.y + self.position * box.height)
        if self.side == "bottom":
            return Point(box.origin.x + self.position * box.width, box.origin.y)
        return Point(box.origin.x + self.position * box.width, box.corner.y)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, PinSpec) and self.side == other.side
                and self.position == other.position)

    def __repr__(self) -> str:
        return f"PinSpec({self.side!r}, {self.position})"


_DEFAULT_SIDE = {"in": "left", "out": "right", "inout": "bottom"}


class IOSignal:
    """One signal of a cell class's interface.

    Parameters
    ----------
    cell_class:
        The owning cell class.
    name, direction:
        Interface identity; ``direction`` is ``"in"``, ``"out"`` or
        ``"inout"``.
    data_type, electrical_type, bit_width:
        Optional initial typing (``SignalType`` nodes / int).
    output_resistance, load_capacitance:
        RC-model electrical characteristics (section 7.3): the driving
        resistance this signal presents when it is an output, and the
        capacitance it loads a net with when it is an input.
    pins:
        Pin placement specs; defaults to one pin on a direction-dependent
        side.
    """

    def __init__(self, cell_class: Any, name: str, direction: str = "in", *,
                 data_type: Any = None, electrical_type: Any = None,
                 bit_width: Optional[int] = None,
                 output_resistance: float = 0.0,
                 load_capacitance: float = 0.0,
                 max_load_capacitance: Optional[float] = None,
                 max_fanout: Optional[int] = None,
                 pins: Sequence[PinSpec] = ()) -> None:
        if direction not in ("in", "out", "inout"):
            raise ValueError(f"direction must be in/out/inout, got {direction!r}")
        self.cell_class = cell_class
        self.name = name
        self.direction = direction
        self.output_resistance = output_resistance
        self.load_capacitance = load_capacitance
        # drive limits for electrical rule checking (None = unlimited)
        self.max_load_capacitance = max_load_capacitance
        self.max_fanout = max_fanout
        self.pins: List[PinSpec] = (list(pins)
                                    or [PinSpec(_DEFAULT_SIDE[direction])])
        context = cell_class.context
        self.data_type_var = SignalTypeVariable(
            data_type, parent=cell_class, name=f"{name}.dataType",
            context=context)
        self.electrical_type_var = SignalTypeVariable(
            electrical_type, parent=cell_class, name=f"{name}.electricalType",
            context=context)
        self.bit_width_var = ClassBWidth(
            bit_width, parent=cell_class, name=f"{name}.bitWidth",
            context=context)

    def clone_for(self, cell_class: Any) -> "IOSignal":
        """A copy of this signal definition for a subclass (inheritance)."""
        return IOSignal(
            cell_class, self.name, self.direction,
            data_type=self.data_type_var.value,
            electrical_type=self.electrical_type_var.value,
            bit_width=self.bit_width_var.value,
            output_resistance=self.output_resistance,
            load_capacitance=self.load_capacitance,
            max_load_capacitance=self.max_load_capacitance,
            max_fanout=self.max_fanout,
            pins=list(self.pins))

    def pin_points(self, box: Rect) -> List[Point]:
        """Pin locations on the given bounding box."""
        return [spec.point_on(box) for spec in self.pins]

    def __repr__(self) -> str:
        return (f"<IOSignal {self.cell_class.name}.{self.name} "
                f"{self.direction}>")


class NetBWidth(BitWidthMixin, Variable):
    """The net's own bit-width variable (the equality's netVariable)."""


Endpoint = Tuple[Optional[Any], str]  # (CellInstance or None-for-parent-io, signal)


class Net:
    """An electrical net inside a composite cell.

    ``endpoints`` are ``(owner, signal_name)`` pairs; ``owner`` is a
    subcell instance, or ``None`` for the *internal* side of one of the
    containing cell's own io-signals.
    """

    def __init__(self, parent_cell: Any, name: str) -> None:
        self.parent_cell = parent_cell
        self.name = name
        self.endpoints: List[Endpoint] = []
        context = parent_cell.context
        self.bit_width_var = NetBWidth(parent=self, name="bitWidth",
                                       context=context)
        self.data_type_var = SignalTypeVariable(parent=self, name="dataType",
                                                context=context)
        self.electrical_type_var = SignalTypeVariable(
            parent=self, name="electricalType", context=context)
        (self.width_constraint,
         self.data_constraint,
         self.electrical_constraint) = make_net_typing_constraints(
            self.bit_width_var, self.data_type_var, self.electrical_type_var)

    def __repr__(self) -> str:
        return f"<Net {self.parent_cell.name}.{self.name}>"

    # -- connectivity editing -------------------------------------------------

    def connect(self, instance: Any, signal_name: str) -> bool:
        """Connect a subcell instance's signal to this net.

        Joins the signal's typing variables to the net's constraints;
        returns the validity feedback (False when typing constraints are
        violated, as in Fig. 7.1 — the connection is still recorded so
        the designer can inspect and repair it).
        """
        signal = instance.cell_class.signal(signal_name)  # validates
        return self._attach_endpoint((instance, signal_name))

    def connect_io(self, signal_name: str) -> bool:
        """Connect the internal side of the containing cell's io-signal."""
        self.parent_cell.signal(signal_name)  # validates
        return self._attach_endpoint((None, signal_name))

    def _attach_endpoint(self, endpoint: Endpoint) -> bool:
        if endpoint in self.endpoints:
            return True
        self.endpoints.append(endpoint)
        width_var, data_var, electrical_var = self._endpoint_vars(endpoint)
        ok = self.width_constraint.add_argument(width_var)
        ok = self.data_constraint.add_argument(data_var) and ok
        ok = self.electrical_constraint.add_argument(electrical_var) and ok
        self._register_connection(endpoint)
        self.parent_cell.structure_changed("connectivity")
        ok = self._refresh_loading(endpoint) and ok
        return ok

    def disconnect(self, instance: Any, signal_name: str) -> None:
        self._detach_endpoint((instance, signal_name))

    def disconnect_io(self, signal_name: str) -> None:
        self._detach_endpoint((None, signal_name))

    def _detach_endpoint(self, endpoint: Endpoint) -> None:
        if endpoint not in self.endpoints:
            return
        self.endpoints.remove(endpoint)
        width_var, data_var, electrical_var = self._endpoint_vars(endpoint)
        self.width_constraint.remove_argument(width_var)
        self.data_constraint.remove_argument(data_var)
        self.electrical_constraint.remove_argument(electrical_var)
        owner, signal_name = endpoint
        if owner is not None:
            owner.connections.pop(signal_name, None)
        else:
            self.parent_cell.io_connections.pop(signal_name, None)
        self.parent_cell.structure_changed("connectivity")
        self._refresh_loading(endpoint)

    def _register_connection(self, endpoint: Endpoint) -> None:
        owner, signal_name = endpoint
        if owner is not None:
            owner.connections[signal_name] = self
        else:
            self.parent_cell.io_connections[signal_name] = self

    def _endpoint_vars(self, endpoint: Endpoint):
        owner, signal_name = endpoint
        if owner is None:
            signal = self.parent_cell.signal(signal_name)
            width_var = signal.bit_width_var
        else:
            signal = owner.cell_class.signal(signal_name)
            width_var = owner.bit_width_var(signal_name)
        return width_var, signal.data_type_var, signal.electrical_type_var

    def _endpoint_signal(self, endpoint: Endpoint) -> IOSignal:
        owner, signal_name = endpoint
        cell = self.parent_cell if owner is None else owner.cell_class
        return cell.signal(signal_name)

    def _refresh_loading(self, changed_endpoint: Endpoint) -> bool:
        """Loading changed: instance delays on this net must re-adjust.

        Returns False when any re-adjusted delay violated a constraint
        (the adjustment was rolled back), so connectivity edits report
        the validity feedback of section 5.2.
        """
        ok = True
        for owner, _signal_name in list(self.endpoints):
            if owner is not None:
                ok = owner.refresh_delay_adjustments() and ok
        return ok

    # -- electrical characteristics (RC model, section 7.3) -----------------------

    def drivers(self) -> List[Endpoint]:
        """Endpoints that drive the net (subcell outputs, parent inputs)."""
        result = []
        for endpoint in self.endpoints:
            owner, _ = endpoint
            signal = self._endpoint_signal(endpoint)
            if owner is None:
                if signal.direction in ("in", "inout"):
                    result.append(endpoint)
            elif signal.direction in ("out", "inout"):
                result.append(endpoint)
        return result

    def receivers(self) -> List[Endpoint]:
        """Endpoints the net feeds (subcell inputs, parent outputs)."""
        result = []
        for endpoint in self.endpoints:
            owner, _ = endpoint
            signal = self._endpoint_signal(endpoint)
            if owner is None:
                if signal.direction in ("out", "inout"):
                    result.append(endpoint)
            elif signal.direction in ("in", "inout"):
                result.append(endpoint)
        return result

    def driving_resistance(self) -> float:
        """Worst-case output resistance among the net's drivers."""
        resistances = [self._endpoint_signal(e).output_resistance
                       for e in self.drivers()]
        return max(resistances, default=0.0)

    def load_capacitance(self) -> float:
        """Total input capacitance the net's receivers present."""
        return sum(self._endpoint_signal(e).load_capacitance
                   for e in self.receivers())
