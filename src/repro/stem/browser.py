"""The Cell Browser — STEM's designer front-end, textually (chapter 8).

The thesis's designers work through browsers: inspect cells, open
constraint editors on their variables, and invoke tools as menu actions
("Module selection is implemented as a menu action in the Cell Browser.
The user can select a generic cell instance in a cell, and invoke module
selection through the menu.  A list of all cell classes that can realize
this generic cell instance is returned.  However, no automatic
replacement of the cell instance is attempted.").

:class:`CellBrowser` reproduces that interaction programmatically: a
current cell, menu actions wired through a
:class:`~repro.consistency.views.Controller`, textual renderings of the
interface/structure panes, and the module-selection action with exactly
the thesis's no-auto-replacement behaviour.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from ..consistency.views import Controller
from ..core.editor import ConstraintEditor
from ..selection.selector import DEFAULT_PRIORITIES, ModuleSelector
from .cell import CellClass, CellInstance
from .library import CellLibrary


class CellBrowser:
    """Browse a cell library; inspect and act on the selected cell."""

    def __init__(self, library: CellLibrary) -> None:
        self.library = library
        self.current: Optional[CellClass] = None
        self.controller = Controller(self)
        self.controller.add_action("open cell", CellBrowser._action_open)
        self.controller.add_action("show interface",
                                   CellBrowser._action_interface)
        self.controller.add_action("show structure",
                                   CellBrowser._action_structure)
        self.controller.add_action("edit variable",
                                   CellBrowser._action_edit_variable)
        self.controller.add_action("select module",
                                   CellBrowser._action_select_module)

    # -- navigation ---------------------------------------------------------

    def open(self, name: str) -> CellClass:
        """Make a cell current."""
        self.current = self.library.cell(name)
        return self.current

    def _require_current(self) -> CellClass:
        if self.current is None:
            raise RuntimeError("no cell is open in the browser")
        return self.current

    def cells(self) -> List[str]:
        """The browser's cell list pane."""
        return self.library.names()

    # -- panes ---------------------------------------------------------------------

    def interface_pane(self) -> str:
        """Signals, parameters and declared delays of the current cell."""
        cell = self._require_current()
        lines = [f"cell {cell.name}"
                 + (" (generic)" if cell.is_generic else "")]
        if cell.superclass is not None:
            lines.append(f"  superclass: {cell.superclass.name}")
        lines.append("  signals:")
        for signal in cell.signals.values():
            typing = []
            if signal.data_type_var.value is not None:
                typing.append(signal.data_type_var.value.name)
            if signal.electrical_type_var.value is not None:
                typing.append(signal.electrical_type_var.value.name)
            if signal.bit_width_var.value is not None:
                typing.append(f"{signal.bit_width_var.value}b")
            suffix = f"  [{', '.join(typing)}]" if typing else ""
            lines.append(f"    {signal.name:<10} {signal.direction:<5}"
                         f"{suffix}")
        if cell.parameters:
            lines.append("  parameters:")
            for name, parameter in cell.parameters.items():
                lines.append(f"    {name}: {parameter.range!r}")
        if cell.delays:
            lines.append("  delays:")
            for (source, dest), delay in cell.delays.items():
                lines.append(f"    {source}->{dest}: {delay.value!r}")
        box = cell.bounding_box_var.value
        if box is not None:
            lines.append(f"  boundingBox: {box!r}")
        return "\n".join(lines)

    def structure_pane(self) -> str:
        """Subcells and nets of the current cell."""
        cell = self._require_current()
        lines = [f"structure of {cell.name}:"]
        if not cell.subcells:
            lines.append("  (leaf cell)")
        for instance in cell.subcells:
            lines.append(f"  {instance.name}: {instance.cell_class.name} "
                         f"@ {instance.transform!r}")
        for net in cell.nets.values():
            ends = ", ".join(
                f"{owner.name if owner else 'io'}.{signal}"
                for owner, signal in net.endpoints)
            lines.append(f"  net {net.name}: {ends}")
        return "\n".join(lines)

    # -- actions ------------------------------------------------------------------------

    def edit_variable(self, name: str) -> ConstraintEditor:
        """Open a constraint editor on a variable of the current cell."""
        cell = self._require_current()
        return ConstraintEditor(cell.var(name), context=cell.context)

    def select_module(self, instance_name: str,
                      priorities: Sequence[str] = DEFAULT_PRIORITIES
                      ) -> List[CellClass]:
        """The chapter-8 menu action: valid realizations of a generic
        subcell instance.  No automatic replacement is attempted."""
        cell = self._require_current()
        instance = self._instance_named(cell, instance_name)
        return ModuleSelector(priorities).select_realizations_for(instance)

    def _instance_named(self, cell: CellClass, name: str) -> CellInstance:
        for instance in cell.subcells:
            if instance.name == name:
                return instance
        raise KeyError(f"cell {cell.name!r} has no subcell {name!r}; "
                       f"have {[i.name for i in cell.subcells]}")

    # -- controller plumbing (menu item -> message association, §3.3.1) -------------------

    def _action_open(self, name: str) -> CellClass:
        return self.open(name)

    def _action_interface(self) -> str:
        return self.interface_pane()

    def _action_structure(self) -> str:
        return self.structure_pane()

    def _action_edit_variable(self, name: str) -> ConstraintEditor:
        return self.edit_variable(name)

    def _action_select_module(self, instance_name: str) -> List[CellClass]:
        return self.select_module(instance_name)

    def menu(self) -> List[str]:
        return self.controller.menu()

    def perform(self, action: str, *args: Any) -> Any:
        """Invoke a menu action by name."""
        return self.controller.perform(action, *args)
