"""SPICE net-list extraction (section 6.4.2).

``SpiceNet`` abstracts a database cell into a paragraph of SPICE text: it
extracts a flattened net-list from the design hierarchy, maintaining
correspondence pointers between net-list entities and the actual subcells
and nets (the thesis's word↔object mapping that lets a text editor
manipulate the database cell).  As a calculated view it is erased and
recalculated whenever its model changes — except for pure-layout changes,
which cannot affect connectivity.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..consistency.views import View
from ..stem.cell import CellClass, CellInstance
from ..stem.signals import Net
from .devices import device_parameters, is_device

#: Top-level net names treated as SPICE ground (node 0).
GROUND_NAMES = ("gnd", "0", "vss")


class Card:
    """One extracted SPICE element card."""

    __slots__ = ("name", "kind", "nodes", "parameters", "instance_path")

    def __init__(self, name: str, kind: str, nodes: List[str],
                 parameters: Dict[str, float], instance_path: str) -> None:
        self.name = name
        self.kind = kind
        self.nodes = nodes
        self.parameters = dict(parameters)
        self.instance_path = instance_path

    def text(self) -> str:
        nodes = " ".join(self.nodes)
        if self.kind in ("R", "C"):
            return f"{self.name} {nodes} {self.parameters['value']:g}"
        if self.kind in ("NMOS", "PMOS"):
            return (f"{self.name} {nodes} {self.kind} "
                    f"RON={self.parameters['r_on']:g} "
                    f"VT={self.parameters['v_t']:g}")
        raise ValueError(f"unknown card kind {self.kind!r}")

    def __repr__(self) -> str:
        return f"<Card {self.text()}>"


class Netlist:
    """A flattened net-list plus correspondence pointers."""

    def __init__(self, cell: CellClass) -> None:
        self.cell = cell
        self.cards: List[Card] = []
        #: top-level net name -> SPICE node name
        self.top_nodes: Dict[str, str] = {}
        #: SPICE node name -> (hierarchical path, Net)
        self.node_objects: Dict[str, Tuple[str, Net]] = {}
        #: card name -> CellInstance (the correspondence pointers)
        self.card_objects: Dict[str, CellInstance] = {}

    def text(self) -> str:
        lines = [f"* extracted from cell {self.cell.name}"]
        lines.extend(card.text() for card in self.cards)
        return "\n".join(lines)

    def node_of(self, net_name: str) -> str:
        try:
            return self.top_nodes[net_name]
        except KeyError:
            raise KeyError(f"no top-level net {net_name!r}; have "
                           f"{sorted(self.top_nodes)}") from None


def extract_netlist(cell: CellClass,
                    ground_names: Tuple[str, ...] = GROUND_NAMES) -> Netlist:
    """Flatten ``cell`` into SPICE cards.

    Leaf cells carrying a :class:`~repro.spice.devices.DeviceSpec` become
    element cards; composite cells are descended into, binding their
    io-signals to the containing scope's nodes.  A top-level net whose
    name is in ``ground_names`` becomes node ``0``.
    """
    netlist = Netlist(cell)
    counter = {"node": 0, "card": 0}

    def fresh_node() -> str:
        counter["node"] += 1
        return str(counter["node"])

    def walk(current: CellClass, path: str,
             port_nodes: Dict[str, str]) -> None:
        net_nodes: Dict[Net, str] = {}
        for net in current.nets.values():
            bound: Optional[str] = None
            for owner, signal_name in net.endpoints:
                if owner is None and signal_name in port_nodes:
                    bound = port_nodes[signal_name]
                    break
            if bound is None:
                if path == "" and net.name.lower() in ground_names:
                    bound = "0"
                else:
                    bound = fresh_node()
            net_nodes[net] = bound
            if path == "":
                netlist.top_nodes[net.name] = bound
            netlist.node_objects.setdefault(bound, (path + net.name, net))

        for instance in current.subcells:
            child = instance.cell_class
            terminal_nodes: Dict[str, str] = {}
            for signal_name in child.signals:
                net = instance.net_on(signal_name)
                if net is not None and net in net_nodes:
                    terminal_nodes[signal_name] = net_nodes[net]
                else:
                    terminal_nodes[signal_name] = fresh_node()  # dangling
            if is_device(child):
                spec = child.device
                counter["card"] += 1
                prefix = spec.kind[0]  # R, C, N->M, P->M
                if spec.kind in ("NMOS", "PMOS"):
                    prefix = "M"
                name = f"{prefix}{counter['card']}"
                card = Card(name, spec.kind,
                            [terminal_nodes[t] for t in spec.terminals],
                            device_parameters(instance),
                            path + instance.name)
                netlist.cards.append(card)
                netlist.card_objects[name] = instance
            else:
                walk(child, path + instance.name + ".", terminal_nodes)

    walk(cell, "", {})
    return netlist


class SpiceNet(View):
    """The net-list view of a cell (Fig. 6.3's SpiceNet window).

    ``data`` is the extracted :class:`Netlist`; ``text`` renders it.  The
    view erases itself on any model change except pure layout edits.
    """

    interested_aspects = frozenset({"structure", "connectivity",
                                    "interface"})

    def __init__(self, model: CellClass,
                 ground_names: Tuple[str, ...] = GROUND_NAMES) -> None:
        self.ground_names = ground_names
        super().__init__(model)

    def calculate(self) -> Netlist:
        return extract_netlist(self.model, self.ground_names)

    @property
    def text(self) -> str:
        return self.data.text()
