"""SpiceSimulation and SpicePlot — the external-tool interface (§6.4.2).

The pattern the thesis implements: an internal application serves as an
abstract model of the external SPICE process.  It is responsible for
file-out of formatted data (the deck), initiation of the (background)
process, and file-in of the results.  Views still interface the
application to the database; all simulation and plot windows on a cell
are marked *outdated* when the cell's net-list changes, so the user is
never misled by stale waveforms.

Here the "external process" is :func:`repro.spice.simulator.run_spice_deck`
operating on the same deck text that would be piped to SPICE.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..stem.cell import CellClass
from .netlist import GROUND_NAMES, SpiceNet
from .simulator import (
    DC,
    DCSweepResult,
    Pulse,
    SimulationResult,
    run_dc_sweep,
    run_operating_point,
    run_spice_deck,
)

Waveform = Union[DC, Pulse]


class SpiceSimulation:
    """Editing and running one simulation of a cell (Fig. 6.3).

    The extracted net-list is the *non-editable* part of the deck; the
    editable part is the stimulus (sources) and the analysis directive.
    ``run`` files out the combined deck, runs the simulator, and files in
    the results.
    """

    def __init__(self, cell: CellClass, *, title: str = "",
                 ground_names: Tuple[str, ...] = GROUND_NAMES) -> None:
        self.cell = cell
        self.title = title or f"simulation of {cell.name}"
        self.netlist_view = SpiceNet(cell, ground_names)
        self.sources: List[Tuple[str, str, Waveform]] = []
        self.tran: Tuple[float, float] = (1e-9, 100e-9)
        self.output: Optional[SimulationResult] = None
        self.outdated = False
        self.runs = 0
        cell.add_dependent(self)

    def release(self) -> None:
        self.cell.remove_dependent(self)
        self.netlist_view.release()

    def model_changed(self, model: Any, aspect: Optional[str] = None) -> None:
        """Mark existing output outdated when the cell changes (§6.4.2)."""
        if aspect == "layout":
            return
        if self.output is not None:
            self.outdated = True

    # -- deck editing (the bold text of the SpiceSimulation window) ------------

    def add_source(self, net_name: str, waveform: Waveform,
                   negative_net: str = "0") -> None:
        """Drive a top-level net with a source."""
        self.sources.append((net_name, negative_net, waveform))

    def set_tran(self, dt: float, tstop: float) -> None:
        self.tran = (dt, tstop)

    def deck_text(self) -> str:
        """File-out: the complete deck (extracted net-list + stimulus)."""
        netlist = self.netlist_view.data
        lines = [f"* {self.title}", netlist.text()]
        for i, (net_name, negative, waveform) in enumerate(self.sources):
            node = netlist.node_of(net_name) if net_name != "0" else "0"
            neg_node = (netlist.node_of(negative)
                        if negative not in ("0",) else "0")
            lines.append(f"V{i + 1} {node} {neg_node} {waveform.spice_text()}")
        lines.append(f".TRAN {self.tran[0]:g} {self.tran[1]:g}")
        lines.append(".END")
        return "\n".join(lines)

    # -- running ------------------------------------------------------------------

    def run(self) -> SimulationResult:
        """File-out the deck, run the (stand-in) external process, file-in."""
        deck = self.deck_text()
        self.output = run_spice_deck(deck)
        self.outdated = False
        self.runs += 1
        return self.output

    def operating_point(self) -> Dict[str, float]:
        """The .OP analysis: net name -> DC steady-state voltage."""
        node_voltages = run_operating_point(self.deck_text())
        netlist = self.netlist_view.data
        return {net_name: node_voltages[node]
                for net_name, node in netlist.top_nodes.items()
                if node in node_voltages}

    def dc_sweep(self, net_name: str, values) -> DCSweepResult:
        """The .DC analysis: sweep the source driving ``net_name``.

        The source must have been added with :meth:`add_source` on that
        net; its stimulus is replaced by each sweep value in turn.
        """
        for i, (source_net, _negative, _waveform) in enumerate(self.sources):
            if source_net == net_name:
                return run_dc_sweep(self.deck_text(), f"V{i + 1}", values)
        raise ValueError(f"no source was added on net {net_name!r}")

    def node_of(self, net_name: str) -> str:
        return self.netlist_view.data.node_of(net_name)

    def v(self, net_name: str):
        """Waveform of a top-level net from the last run."""
        if self.output is None:
            raise RuntimeError("simulation has not been run")
        return self.output.v(self.node_of(net_name))


class SpicePlot:
    """Graphical-display stand-in: measurements on simulation output.

    Associated with the SpiceSimulation its waveforms came from, and —
    like the simulation — marked outdated when the cell changes, so plots
    from different parameters remain comparable without misleading the
    user.
    """

    def __init__(self, simulation: SpiceSimulation) -> None:
        if simulation.output is None:
            raise ValueError("run the simulation before plotting")
        self.simulation = simulation
        self.output = simulation.output

    @property
    def outdated(self) -> bool:
        return (self.simulation.outdated
                or self.output is not self.simulation.output)

    def _node(self, net_name: str) -> str:
        return self.simulation.node_of(net_name)

    def waveform(self, net_name: str):
        return self.output.v(self._node(net_name))

    def crossing_time(self, net_name: str, level: float,
                      **kwargs: Any) -> Optional[float]:
        return self.output.crossing_time(self._node(net_name), level, **kwargs)

    def delay_between(self, from_net: str, to_net: str, level: float,
                      **kwargs: Any) -> Optional[float]:
        """Point-to-point delay measurement between two nets."""
        return self.output.delay_between(self._node(from_net),
                                         self._node(to_net), level, **kwargs)

    def final_value(self, net_name: str) -> float:
        return self.output.final_value(self._node(net_name))

    def render(self, net_names: Sequence[str], *, width: int = 72,
               height: int = 12) -> str:
        """ASCII rendering of waveforms — the plot window, textually.

        Each net gets a glyph (``1``, ``2``, ...); rows run from the
        maximum voltage at the top to the minimum at the bottom; the
        x-axis is the full simulated time span.
        """
        time = self.output.time
        waves = [self.waveform(name) for name in net_names]
        v_min = min(float(w.min()) for w in waves)
        v_max = max(float(w.max()) for w in waves)
        if v_max == v_min:
            v_max = v_min + 1.0
        grid = [[" "] * width for _ in range(height)]
        t_span = float(time[-1] - time[0]) or 1.0
        for wave_index, wave in enumerate(waves):
            glyph = str((wave_index + 1) % 10)
            for column in range(width):
                t = time[0] + t_span * column / (width - 1)
                sample_index = min(len(time) - 1,
                                   int(round((t - time[0]) / t_span
                                             * (len(time) - 1))))
                value = float(wave[sample_index])
                row = int(round((v_max - value) / (v_max - v_min)
                                * (height - 1)))
                grid[row][column] = glyph
        lines = [f"{v_max:10.3g} +" + "".join(grid[0])]
        lines += ["           |" + "".join(row) for row in grid[1:-1]]
        lines.append(f"{v_min:10.3g} +" + "".join(grid[-1]))
        lines.append("           " + "-" * (width + 1))
        legend = "  ".join(f"{(i + 1) % 10}={name}"
                           for i, name in enumerate(net_names))
        lines.append(f"           t: 0 .. {float(time[-1]):g}s   {legend}")
        return "\n".join(lines)
