"""Primitive device cells for circuit-level design (section 6.4.2).

STEM's SPICE interface extracts net-lists from designs whose leaf cells
are electrical primitives.  Here primitives are ordinary
:class:`~repro.stem.cell.CellClass` objects carrying a
:class:`DeviceSpec`; the extractor recognises them by it and emits the
corresponding SPICE card.  Device values are per-instance parameters
(with class-level defaults and ranges), so the same primitive class
serves many sizings.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from ..core.engine import PropagationContext
from ..stem.cell import CellClass, CellInstance
from ..stem.types import ANALOG, DIGITAL


class DeviceSpec:
    """What kind of SPICE element a primitive cell represents.

    ``kind`` is one of ``"R"``, ``"C"``, ``"NMOS"``, ``"PMOS"``;
    ``terminals`` lists the signal names in SPICE card order.
    """

    __slots__ = ("kind", "terminals", "defaults")

    def __init__(self, kind: str, terminals: Tuple[str, ...],
                 defaults: Optional[Dict[str, float]] = None) -> None:
        self.kind = kind
        self.terminals = terminals
        self.defaults = dict(defaults or {})

    def __repr__(self) -> str:
        return f"DeviceSpec({self.kind}, {self.terminals})"


def is_device(cell: CellClass) -> bool:
    return getattr(cell, "device", None) is not None


def device_parameters(instance: CellInstance) -> Dict[str, float]:
    """Effective device parameters: class defaults overlaid by instance values."""
    spec: DeviceSpec = instance.cell_class.device
    values = dict(spec.defaults)
    for name in spec.defaults:
        if name in instance.parameters \
                and instance.parameters[name].value is not None:
            values[name] = instance.parameters[name].value
    return values


def _attach_device(cell: CellClass, spec: DeviceSpec) -> CellClass:
    cell.device = spec
    for name, default in spec.defaults.items():
        cell.add_parameter(name, low=0.0, default=default)
    return cell


def resistor(resistance: float = 1e3, *, name: str = "RES",
             context: Optional[PropagationContext] = None) -> CellClass:
    """A two-terminal resistor primitive (terminals ``p``, ``n``)."""
    cell = CellClass(name, context=context)
    cell.define_signal("p", "inout", electrical_type=ANALOG)
    cell.define_signal("n", "inout", electrical_type=ANALOG)
    return _attach_device(cell, DeviceSpec("R", ("p", "n"),
                                           {"value": resistance}))


def capacitor(capacitance: float = 1e-12, *, name: str = "CAP",
              context: Optional[PropagationContext] = None) -> CellClass:
    """A two-terminal capacitor primitive (terminals ``p``, ``n``)."""
    cell = CellClass(name, context=context)
    cell.define_signal("p", "inout", electrical_type=ANALOG)
    cell.define_signal("n", "inout", electrical_type=ANALOG)
    return _attach_device(cell, DeviceSpec("C", ("p", "n"),
                                           {"value": capacitance}))


def nmos(r_on: float = 1e3, v_t: float = 1.0, *, name: str = "NMOS",
         context: Optional[PropagationContext] = None) -> CellClass:
    """An n-channel MOS switch primitive (terminals ``d``, ``g``, ``s``).

    Modelled as a gate-controlled resistor: ``r_on`` when V(g)-V(s)
    exceeds ``v_t``, open otherwise — the switch-level abstraction
    adequate for delay-shape experiments.
    """
    cell = CellClass(name, context=context)
    cell.define_signal("d", "inout", electrical_type=ANALOG)
    cell.define_signal("g", "in", electrical_type=ANALOG)
    cell.define_signal("s", "inout", electrical_type=ANALOG)
    return _attach_device(cell, DeviceSpec("NMOS", ("d", "g", "s"),
                                           {"r_on": r_on, "v_t": v_t}))


def pmos(r_on: float = 2e3, v_t: float = 1.0, *, name: str = "PMOS",
         context: Optional[PropagationContext] = None) -> CellClass:
    """A p-channel MOS switch primitive (terminals ``d``, ``g``, ``s``)."""
    cell = CellClass(name, context=context)
    cell.define_signal("d", "inout", electrical_type=ANALOG)
    cell.define_signal("g", "in", electrical_type=ANALOG)
    cell.define_signal("s", "inout", electrical_type=ANALOG)
    return _attach_device(cell, DeviceSpec("PMOS", ("d", "g", "s"),
                                           {"r_on": r_on, "v_t": v_t}))


def inverter(*, vdd_net: str = "vdd", gnd_net: str = "gnd",
             r_on_n: float = 1e3, r_on_p: float = 2e3, v_t: float = 1.0,
             c_load: float = 10e-12, name: str = "INV",
             context: Optional[PropagationContext] = None) -> CellClass:
    """A CMOS inverter built from the switch primitives.

    Interface: ``a`` (input), ``y`` (output), ``vdd``, ``gnd``.  A load
    capacitor on the output gives the inverter its RC delay.
    """
    cell = CellClass(name, context=context)
    cell.define_signal("a", "in", electrical_type=ANALOG)
    cell.define_signal("y", "out", electrical_type=ANALOG)
    cell.define_signal("vdd", "inout", electrical_type=ANALOG)
    cell.define_signal("gnd", "inout", electrical_type=ANALOG)

    n_cls = nmos(r_on_n, v_t, name=f"{name}_N", context=cell.context)
    p_cls = pmos(r_on_p, v_t, name=f"{name}_P", context=cell.context)
    c_cls = capacitor(c_load, name=f"{name}_CL", context=cell.context)
    mn = n_cls.instantiate(cell, "MN")
    mp = p_cls.instantiate(cell, "MP")
    cl = c_cls.instantiate(cell, "CL")

    n_in = cell.add_net("n_in")
    n_in.connect_io("a"); n_in.connect(mn, "g"); n_in.connect(mp, "g")
    n_out = cell.add_net("n_out")
    n_out.connect_io("y"); n_out.connect(mn, "d"); n_out.connect(mp, "d")
    n_out.connect(cl, "p")
    n_vdd = cell.add_net(vdd_net)
    n_vdd.connect_io("vdd"); n_vdd.connect(mp, "s")
    n_gnd = cell.add_net(gnd_net)
    n_gnd.connect_io("gnd"); n_gnd.connect(mn, "s"); n_gnd.connect(cl, "n")
    return cell
