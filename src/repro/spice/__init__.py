"""SPICE-style circuit interface (thesis section 6.4.2).

Net-list extraction from the design database, an internal MNA transient
simulator standing in for the external SPICE process, and the
SpiceSimulation / SpicePlot application interfaces.
"""

from .devices import (
    DeviceSpec,
    capacitor,
    device_parameters,
    inverter,
    is_device,
    nmos,
    pmos,
    resistor,
)
from .interface import SpicePlot, SpiceSimulation
from .netlist import Card, Netlist, SpiceNet, extract_netlist
from .simulator import (
    DC,
    DCSweepResult,
    Pulse,
    SimulationResult,
    SpiceParseError,
    parse_deck,
    parse_value,
    run_dc_sweep,
    run_operating_point,
    run_spice_deck,
)

__all__ = [
    "Card", "DC", "DCSweepResult", "DeviceSpec", "Netlist", "Pulse",
    "SimulationResult", "SpiceNet", "SpiceParseError", "SpicePlot",
    "SpiceSimulation", "capacitor", "device_parameters", "extract_netlist",
    "inverter", "is_device", "nmos", "parse_deck", "parse_value", "pmos",
    "resistor", "run_dc_sweep", "run_operating_point", "run_spice_deck",
]
