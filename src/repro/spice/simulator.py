"""An internal transient circuit simulator standing in for SPICE.

The thesis integrates the real SPICE as an external UNIX process behind a
textual data-stream interface (section 6.4.2).  This reproduction has no
external SPICE, so this module implements the closest synthetic
equivalent that exercises the same code path: a parser for the SPICE-
subset deck the extractor emits, and a fixed-step modified-nodal-analysis
(MNA) transient engine with backward-Euler capacitors and switch-level
MOS devices.  ``run_spice_deck`` consumes the *text* of a deck — so the
file-out → background run → file-in pattern of the thesis is preserved —
and returns waveforms with the measurement helpers SpicePlot needs.

Supported cards::

    R<name> n1 n2 <value>
    C<name> n1 n2 <value>
    M<name> nd ng ns NMOS|PMOS RON=<r> VT=<v>
    V<name> n+ n- DC <value>
    V<name> n+ n- PULSE(<v1> <v2> <td> <tr> <tf> <pw> <per>)
    .TRAN <dt> <tstop>
    .END

Node ``0`` is ground.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Optional, Tuple

try:  # deck parsing works on the stdlib; the analyses need numpy
    import numpy as np
except ImportError:  # pragma: no cover - exercised on no-numpy CI legs
    np = None

#: True when the numeric analyses (OP, DC, transient) can run.
HAVE_NUMPY = np is not None


def _require_numpy() -> None:
    if np is None:
        raise RuntimeError(
            "SPICE analyses require numpy, which is not importable; "
            "deck parsing and netlist export remain available")


_R_OFF = 1e12  # off-state switch resistance


class Pulse:
    """A PULSE(v1 v2 td tr tf pw per) waveform."""

    def __init__(self, v1: float, v2: float, td: float = 0.0,
                 tr: float = 1e-12, tf: float = 1e-12,
                 pw: float = math.inf, per: float = math.inf) -> None:
        self.v1, self.v2 = v1, v2
        self.td, self.tr, self.tf = td, max(tr, 1e-15), max(tf, 1e-15)
        self.pw, self.per = pw, per

    def value_at(self, t: float) -> float:
        if t < self.td:
            return self.v1
        local = t - self.td
        if math.isfinite(self.per) and self.per > 0:
            local = local % self.per
        if local < self.tr:
            return self.v1 + (self.v2 - self.v1) * local / self.tr
        local -= self.tr
        if local < self.pw:
            return self.v2
        local -= self.pw
        if local < self.tf:
            return self.v2 + (self.v1 - self.v2) * local / self.tf
        return self.v1

    def spice_text(self) -> str:
        fields = [self.v1, self.v2, self.td, self.tr, self.tf]
        if math.isfinite(self.pw):
            fields.append(self.pw)
            if math.isfinite(self.per):
                fields.append(self.per)
        return "PULSE(" + " ".join(f"{f:g}" for f in fields) + ")"


class DC:
    """A constant source."""

    def __init__(self, value: float) -> None:
        self.value = value

    def value_at(self, t: float) -> float:
        return self.value

    def spice_text(self) -> str:
        return f"DC {self.value:g}"


class _Element:
    __slots__ = ("name", "kind", "nodes", "value", "params", "waveform")

    def __init__(self, name, kind, nodes, value=None, params=None,
                 waveform=None):
        self.name = name
        self.kind = kind
        self.nodes = nodes
        self.value = value
        self.params = params or {}
        self.waveform = waveform


class SpiceParseError(ValueError):
    """A malformed deck line."""


_PULSE_RE = re.compile(r"PULSE\s*\(([^)]*)\)", re.IGNORECASE)

_SUFFIXES = {"t": 1e12, "g": 1e9, "meg": 1e6, "k": 1e3, "m": 1e-3,
             "u": 1e-6, "n": 1e-9, "p": 1e-12, "f": 1e-15}


def parse_value(token: str) -> float:
    """A SPICE number, with engineering suffixes (10k, 2.5n, 3meg)."""
    token = token.strip().lower()
    match = re.fullmatch(r"([-+]?[0-9.]+(?:e[-+]?\d+)?)(meg|[tgkmunpf])?"
                         r"[a-z]*", token)
    if not match:
        raise SpiceParseError(f"cannot parse number {token!r}")
    base = float(match.group(1))
    suffix = match.group(2)
    return base * _SUFFIXES.get(suffix, 1.0) if suffix else base


def parse_deck(text: str):
    """Parse a deck into (elements, tran_params)."""
    elements: List[_Element] = []
    tran: Optional[Tuple[float, float]] = None
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("*"):
            continue
        upper = line.upper()
        if upper.startswith(".END"):
            break
        if upper.startswith(".TRAN"):
            fields = line.split()
            if len(fields) < 3:
                raise SpiceParseError(f"bad .TRAN line: {line!r}")
            tran = (parse_value(fields[1]), parse_value(fields[2]))
            continue
        if upper.startswith("."):
            continue  # other directives ignored
        elements.append(_parse_card(line))
    if tran is None:
        raise SpiceParseError("deck has no .TRAN directive")
    return elements, tran


def _parse_card(line: str) -> _Element:
    fields = line.split()
    name = fields[0]
    letter = name[0].upper()
    if letter in ("R", "C"):
        if len(fields) != 4:
            raise SpiceParseError(f"bad {letter} card: {line!r}")
        return _Element(name, letter, fields[1:3], parse_value(fields[3]))
    if letter == "M":
        if len(fields) < 5:
            raise SpiceParseError(f"bad M card: {line!r}")
        kind = fields[4].upper()
        if kind not in ("NMOS", "PMOS"):
            raise SpiceParseError(f"unknown MOS model {fields[4]!r}")
        params = {"r_on": 1e3, "v_t": 1.0}
        for assignment in fields[5:]:
            if "=" in assignment:
                key, _, value = assignment.partition("=")
                key = key.strip().lower()
                if key == "ron":
                    params["r_on"] = parse_value(value)
                elif key == "vt":
                    params["v_t"] = parse_value(value)
        return _Element(name, kind, fields[1:4], params=params)
    if letter == "V":
        pulse_match = _PULSE_RE.search(line)
        if pulse_match:
            numbers = [parse_value(tok) for tok in
                       pulse_match.group(1).replace(",", " ").split()]
            waveform = Pulse(*numbers)
        else:
            if len(fields) < 4:
                raise SpiceParseError(f"bad V card: {line!r}")
            value_token = fields[4] if fields[3].upper() == "DC" else fields[3]
            waveform = DC(parse_value(value_token))
        return _Element(name, "V", fields[1:3], waveform=waveform)
    raise SpiceParseError(f"unknown element {name!r}")


class SimulationResult:
    """Transient waveforms plus the measurements SpicePlot offers."""

    def __init__(self, time: np.ndarray,
                 voltages: Dict[str, np.ndarray]) -> None:
        self.time = time
        self.voltages = voltages

    def v(self, node: str) -> np.ndarray:
        try:
            return self.voltages[node]
        except KeyError:
            raise KeyError(f"no node {node!r}; have "
                           f"{sorted(self.voltages)}") from None

    def final_value(self, node: str) -> float:
        return float(self.v(node)[-1])

    def crossing_time(self, node: str, level: float, *,
                      rising: Optional[bool] = None,
                      after: float = 0.0) -> Optional[float]:
        """First time the node crosses ``level`` (linear interpolation)."""
        v = self.v(node)
        t = self.time
        for i in range(1, len(t)):
            if t[i] < after:
                continue
            lo, hi = v[i - 1], v[i]
            crosses_up = lo < level <= hi
            crosses_down = lo > level >= hi
            if rising is True and not crosses_up:
                continue
            if rising is False and not crosses_down:
                continue
            if crosses_up or crosses_down:
                if hi == lo:
                    return float(t[i])
                frac = (level - lo) / (hi - lo)
                return float(t[i - 1] + frac * (t[i] - t[i - 1]))
        return None

    def delay_between(self, from_node: str, to_node: str, level: float,
                      *, after: float = 0.0) -> Optional[float]:
        """Point-to-point measurement: Δt of the two nodes' crossings."""
        t_from = self.crossing_time(from_node, level, after=after)
        if t_from is None:
            return None
        t_to = self.crossing_time(to_node, level, after=t_from)
        if t_to is None:
            return None
        return t_to - t_from


def _parse_elements_only(text: str) -> List[_Element]:
    """Parse just the element cards (for non-transient analyses)."""
    elements: List[_Element] = []
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("*"):
            continue
        if line.upper().startswith(".END"):
            break
        if line.startswith("."):
            continue
        elements.append(_parse_card(line))
    return elements


def _solve_static(elements: List[_Element], *, time: float = 0.0,
                  overrides: Optional[Dict[str, float]] = None
                  ) -> Dict[str, float]:
    """Steady-state (operating point) solution: capacitors open.

    ``overrides`` replaces named sources' values for DC sweeps.
    """
    _require_numpy()
    overrides = overrides or {}
    node_names = sorted({node for element in elements
                         for node in element.nodes if node != "0"})
    index = {name: i for i, name in enumerate(node_names)}
    n = len(node_names)
    sources = [element for element in elements if element.kind == "V"]
    m = len(sources)
    state = np.zeros(n)

    def v_of(values: np.ndarray, node: str) -> float:
        return 0.0 if node == "0" else values[index[node]]

    for _iteration in range(8):
        G = np.zeros((n + m, n + m))
        rhs = np.zeros(n + m)

        def stamp(a: str, b: str, g: float) -> None:
            if a != "0":
                G[index[a], index[a]] += g
            if b != "0":
                G[index[b], index[b]] += g
            if a != "0" and b != "0":
                G[index[a], index[b]] -= g
                G[index[b], index[a]] -= g

        for element in elements:
            if element.kind == "R":
                stamp(element.nodes[0], element.nodes[1], 1.0 / element.value)
            elif element.kind == "C":
                continue  # open at DC
            elif element.kind in ("NMOS", "PMOS"):
                nd, ng, ns = element.nodes
                v_gs = v_of(state, ng) - v_of(state, ns)
                on = (v_gs > element.params["v_t"]
                      if element.kind == "NMOS"
                      else v_gs < -element.params["v_t"])
                resistance = element.params["r_on"] if on else _R_OFF
                stamp(nd, ns, 1.0 / resistance)
        for k, source in enumerate(sources):
            positive, negative = source.nodes
            row = n + k
            if positive != "0":
                G[index[positive], row] += 1.0
                G[row, index[positive]] += 1.0
            if negative != "0":
                G[index[negative], row] -= 1.0
                G[row, index[negative]] -= 1.0
            if source.name in overrides:
                rhs[row] = overrides[source.name]
            else:
                rhs[row] = source.waveform.value_at(time)
        try:
            solution = np.linalg.solve(G, rhs)
        except np.linalg.LinAlgError:
            solution, *_ = np.linalg.lstsq(G, rhs, rcond=None)
        new_state = solution[:n]
        if np.allclose(new_state, state, atol=1e-9):
            state = new_state
            break
        state = new_state
    result = {name: float(state[i]) for name, i in index.items()}
    result["0"] = 0.0
    return result


def run_operating_point(text: str) -> Dict[str, float]:
    """The .OP analysis: DC steady-state node voltages (capacitors open)."""
    return _solve_static(_parse_elements_only(text))


class DCSweepResult:
    """Node voltages as a function of a swept source value."""

    def __init__(self, sweep_values: np.ndarray,
                 voltages: Dict[str, np.ndarray]) -> None:
        self.sweep_values = sweep_values
        self.voltages = voltages

    def v(self, node: str) -> np.ndarray:
        try:
            return self.voltages[node]
        except KeyError:
            raise KeyError(f"no node {node!r}; have "
                           f"{sorted(self.voltages)}") from None

    def transfer_crossing(self, node: str, level: float) -> Optional[float]:
        """The swept value at which the node crosses ``level``."""
        v = self.v(node)
        x = self.sweep_values
        for i in range(1, len(x)):
            lo, hi = v[i - 1], v[i]
            if (lo < level <= hi) or (lo > level >= hi):
                if hi == lo:
                    return float(x[i])
                frac = (level - lo) / (hi - lo)
                return float(x[i - 1] + frac * (x[i] - x[i - 1]))
        return None


def run_dc_sweep(text: str, source_name: str,
                 values: Any) -> DCSweepResult:
    """The .DC analysis: sweep one source, record static node voltages."""
    _require_numpy()
    elements = _parse_elements_only(text)
    if not any(e.kind == "V" and e.name == source_name for e in elements):
        raise SpiceParseError(f"no source named {source_name!r} in the deck")
    sweep = np.asarray(list(values), dtype=float)
    collected: Dict[str, List[float]] = {}
    for value in sweep:
        solution = _solve_static(elements, overrides={source_name: value})
        for node, voltage in solution.items():
            collected.setdefault(node, []).append(voltage)
    return DCSweepResult(sweep, {node: np.asarray(column)
                                 for node, column in collected.items()})


def run_spice_deck(text: str) -> SimulationResult:
    """Simulate a deck text: the stand-in for the external SPICE run."""
    _require_numpy()
    elements, (dt, tstop) = parse_deck(text)

    node_names = sorted({node for element in elements
                         for node in element.nodes if node != "0"})
    index = {name: i for i, name in enumerate(node_names)}
    n = len(node_names)
    sources = [element for element in elements if element.kind == "V"]
    m = len(sources)
    steps = max(2, int(round(tstop / dt)) + 1)
    time = np.linspace(0.0, dt * (steps - 1), steps)

    voltages = np.zeros((steps, n))
    prev = np.zeros(n)

    def v_of(state: np.ndarray, node: str) -> float:
        return 0.0 if node == "0" else state[index[node]]

    for step in range(steps):
        t = time[step]
        state = prev.copy()
        # Fixed-point iteration over switch states within the step.
        for _iteration in range(4):
            G = np.zeros((n + m, n + m))
            rhs = np.zeros(n + m)

            def stamp_conductance(a: str, b: str, g: float) -> None:
                if a != "0":
                    ia = index[a]
                    G[ia, ia] += g
                if b != "0":
                    ib = index[b]
                    G[ib, ib] += g
                if a != "0" and b != "0":
                    G[index[a], index[b]] -= g
                    G[index[b], index[a]] -= g

            def stamp_current(a: str, b: str, i: float) -> None:
                # current i flowing from a to b
                if a != "0":
                    rhs[index[a]] -= i
                if b != "0":
                    rhs[index[b]] += i

            for element in elements:
                if element.kind == "R":
                    stamp_conductance(element.nodes[0], element.nodes[1],
                                      1.0 / element.value)
                elif element.kind == "C":
                    # Backward-Euler companion model; prev starts at zero,
                    # which models a from-rest initial condition.
                    g = element.value / dt
                    stamp_conductance(element.nodes[0], element.nodes[1], g)
                    v_prev = (v_of(prev, element.nodes[0])
                              - v_of(prev, element.nodes[1]))
                    # companion current source enforcing dv/dt
                    stamp_current(element.nodes[1], element.nodes[0],
                                  g * v_prev)
                elif element.kind in ("NMOS", "PMOS"):
                    nd, ng, ns = element.nodes
                    v_gs = v_of(state, ng) - v_of(state, ns)
                    v_t = element.params["v_t"]
                    if element.kind == "NMOS":
                        on = v_gs > v_t
                    else:
                        on = v_gs < -v_t
                    resistance = element.params["r_on"] if on else _R_OFF
                    stamp_conductance(nd, ns, 1.0 / resistance)

            for k, source in enumerate(sources):
                positive, negative = source.nodes
                row = n + k
                if positive != "0":
                    G[index[positive], row] += 1.0
                    G[row, index[positive]] += 1.0
                if negative != "0":
                    G[index[negative], row] -= 1.0
                    G[row, index[negative]] -= 1.0
                rhs[row] = source.waveform.value_at(t)

            try:
                solution = np.linalg.solve(G, rhs)
            except np.linalg.LinAlgError:
                solution, *_ = np.linalg.lstsq(G, rhs, rcond=None)
            new_state = solution[:n]
            if np.allclose(new_state, state, atol=1e-9):
                state = new_state
                break
            state = new_state
        voltages[step] = state
        prev = state

    waveform_map = {name: voltages[:, i] for name, i in index.items()}
    waveform_map["0"] = np.zeros(steps)
    return SimulationResult(time, waveform_map)
