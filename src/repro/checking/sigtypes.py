"""Signal typing variables and constraints (section 7.1).

Each io-signal and net carries three properties — ``bit_width``,
``data_type`` and ``electrical_type``.  Nets imply typing constraints:
connected signals must have equal bit widths (equality-constraints) and
pairwise compatible data/electrical types (compatible-constraints).
Unspecified signal types are *inferred* from connections, reducing data
entry; incompatible connections trigger violations (Fig. 7.1).

Two behaviours specific to this chapter are implemented here:

* :class:`SignalTypeVariable` — the overwrite rule of Fig. 7.4: a type
  value may change to or from unknown freely, may be refined to a *less
  abstract* (descendant) type, silently keeps the more specific of two
  compatible values, and violates on incompatible values.
* :class:`ClassBWidth` / :class:`InstanceBWidth` — dual bit-width
  variables.  Composite cells share one class-level width across all
  instances; compiled instances may own their width (section 7.1 end).
"""

from __future__ import annotations

from typing import Any, Optional

from ..core.justification import STRUCTURE, may_overwrite
from ..core.library import CompatibleConstraint, EqualityConstraint
from ..core.variable import Variable
from ..stem.implicit import ClassInstVar, InstanceInstVar


class SignalTypeVariable(Variable):
    """A dataType or electricalType variable (class-level, shared).

    Values are :class:`~repro.stem.types.SignalType` nodes.  The overwrite
    rule replaces the default user-priority rule: abstraction order
    decides (Fig. 7.4), because every source of type information — user or
    net inference — is a *refinement* request.
    """

    def can_change_value_to(self, new_value: Any) -> bool:
        """Fig. 7.4: free to/from None; otherwise only refinement."""
        current = self.value
        if current is None or new_value is None:
            return True
        return new_value.is_less_abstract_than(current)

    def classify_propagated(self, value: Any, constraint: Any) -> str:
        current = self.value
        if current is value:
            return "ignore"
        if current is None or value is None:
            return "apply"
        if not current.is_compatible_with(value):
            return "violate"
        if value.is_less_abstract_than(current):
            return "apply"
        # The propagated type is more abstract: the current, more specific
        # value already satisfies it.
        return "ignore"


class BitWidthMixin:
    """Shared violation semantics for bit-width variables.

    A constrained width — user-specified or implied by a realized
    internal structure (#STRUCTURE) — rejects any disagreeing propagated
    value, producing the Fig. 7.1 violation.
    """

    def classify_propagated(self, value: Any, constraint: Any) -> str:
        current = self.value
        if current == value:
            return "ignore"
        if current is None or value is None:
            return "apply"
        if not may_overwrite(self.last_set_by):
            return "violate"
        return "apply"

    def constrain_by_structure(self, width: int) -> bool:
        """Fix the width as implied by the cell's internal structure."""
        return self.set(width, STRUCTURE)


class ClassBWidth(BitWidthMixin, ClassInstVar):
    """Class-level bit width of a signal, shared by instances by default."""

    def consistent_with_instance(self, instance_width: Optional[int]) -> bool:
        return (self.value is None or instance_width is None
                or self.value == instance_width)


class InstanceBWidth(BitWidthMixin, InstanceInstVar):
    """Per-instance bit width for compiled cells with varying widths."""

    def consistent_with_class(self) -> bool:
        class_var = self.class_var
        if class_var is None or class_var.value is None or self.value is None:
            return True
        return self.value == class_var.value


def make_net_typing_constraints(net_bit_width: Variable,
                                net_data_type: Variable,
                                net_electrical_type: Variable):
    """Create the three per-net typing constraints (section 7.1).

    Returns ``(width_equality, data_compatible, electrical_compatible)``;
    signals join and leave them as they connect to / disconnect from the
    net.  The net's own type variables are the first argument of each —
    the thesis's ``netVariable``.
    """
    width_equality = EqualityConstraint(net_bit_width)
    data_compatible = CompatibleConstraint(net_data_type)
    electrical_compatible = CompatibleConstraint(net_electrical_type)
    return width_equality, data_compatible, electrical_compatible
