"""Process-corner delay values (an open-endedness demonstration).

Chapter 7 closes: "Additional design checks can be easily integrated
into the existing system with new types of constraints" — and because
constraints operate on *values through a protocol*, new value types
integrate too.  A :class:`Corners` value carries slow/typical/fast
figures simultaneously; it adds component-wise and orders by the slow
(worst) corner, so the unmodified ``UniAdditionConstraint`` /
``UniMaximumConstraint`` delay networks of section 7.3 propagate all
three corners in one pass, and ``UpperBoundConstraint`` specs check the
worst case.

``derate`` builds a corner value from a typical figure with process
factors — the usual way a library characterises corners.
"""

from __future__ import annotations

import math
from typing import Any, Union

Number = Union[int, float]


class Corners:
    """A (slow, typical, fast) delay triple.

    Arithmetic is component-wise; comparisons order by the *slow* corner
    (the worst case, which is what longest-path delay analysis must
    keep).  Scalars mix in as corner-independent values.
    """

    __slots__ = ("slow", "typical", "fast")

    def __init__(self, slow: Number, typical: Number, fast: Number) -> None:
        if not (fast <= typical <= slow):
            raise ValueError(f"corners must satisfy fast <= typical <= slow "
                             f"(got slow={slow}, typical={typical}, "
                             f"fast={fast})")
        self.slow = slow
        self.typical = typical
        self.fast = fast

    @classmethod
    def of(cls, value: Any) -> "Corners":
        """Coerce a scalar (corner-independent) or pass a Corners through."""
        if isinstance(value, Corners):
            return value
        return cls(value, value, value)

    # -- arithmetic -----------------------------------------------------------

    def __add__(self, other: Any) -> "Corners":
        other = Corners.of(other)
        return Corners(self.slow + other.slow,
                       self.typical + other.typical,
                       self.fast + other.fast)

    def __radd__(self, other: Any) -> "Corners":
        return Corners.of(other) + self

    def __mul__(self, factor: Number) -> "Corners":
        if factor < 0:
            raise ValueError("negative scaling would reorder the corners")
        return Corners(self.slow * factor, self.typical * factor,
                       self.fast * factor)

    __rmul__ = __mul__

    # -- ordering by the worst case -----------------------------------------------

    def _key(self) -> Number:
        return self.slow

    def __lt__(self, other: Any) -> bool:
        return self._key() < Corners.of(other)._key()

    def __le__(self, other: Any) -> bool:
        return self._key() <= Corners.of(other)._key()

    def __gt__(self, other: Any) -> bool:
        return self._key() > Corners.of(other)._key()

    def __ge__(self, other: Any) -> bool:
        return self._key() >= Corners.of(other)._key()

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, (Corners, int, float)):
            return NotImplemented
        other = Corners.of(other)
        return (self.slow, self.typical, self.fast) == \
            (other.slow, other.typical, other.fast)

    def __hash__(self) -> int:
        return hash((self.slow, self.typical, self.fast))

    def is_close_to(self, other: Any, rel_tol: float = 1e-9) -> bool:
        other = Corners.of(other)
        return (math.isclose(self.slow, other.slow, rel_tol=rel_tol)
                and math.isclose(self.typical, other.typical, rel_tol=rel_tol)
                and math.isclose(self.fast, other.fast, rel_tol=rel_tol))

    def __repr__(self) -> str:
        return (f"Corners(slow={self.slow:g}, typical={self.typical:g}, "
                f"fast={self.fast:g})")


def derate(typical: Number, *, slow_factor: float = 1.3,
           fast_factor: float = 0.7) -> Corners:
    """Corner values from a typical figure and process derating factors."""
    if not fast_factor <= 1.0 <= slow_factor:
        raise ValueError("factors must bracket 1.0")
    return Corners(typical * slow_factor, typical, typical * fast_factor)
