"""Incremental design checking (thesis chapter 7).

Signal typing (bit widths, data/electrical type compatibility), bounding
boxes (class vs. instance, stretching) and delays (RC model, hierarchical
delay networks).
"""

from .bbox import ClassBBox, InstanceBBox, calculate_bounding_box
from .corners import Corners, derate
from .delay import (
    ClassDelay,
    DelayNetwork,
    DelayPathExplosion,
    InstanceDelay,
    PathDelayVariable,
    build_delay_network,
    enumerate_delay_paths,
)
from .electrical import (
    DriveLoadConstraint,
    ElectricalFinding,
    FanoutConstraint,
    NetWatch,
    check_cell,
    watch_net,
)
from .sigtypes import (
    ClassBWidth,
    InstanceBWidth,
    SignalTypeVariable,
    make_net_typing_constraints,
)

__all__ = [
    "ClassBBox", "ClassBWidth", "ClassDelay", "Corners", "DelayNetwork",
    "DelayPathExplosion", "DriveLoadConstraint", "ElectricalFinding",
    "FanoutConstraint", "derate",
    "InstanceBBox", "InstanceBWidth", "InstanceDelay", "NetWatch",
    "PathDelayVariable", "SignalTypeVariable", "build_delay_network",
    "calculate_bounding_box", "check_cell", "enumerate_delay_paths",
    "make_net_typing_constraints", "watch_net",
]
