"""Bounding-box checking (section 7.2).

The bounding box of a cell *class* is the smallest rectangle containing
its internal structure; the bounding box of a cell *instance* is the area
the instance is placed in.  An instance box may be equal to or larger
than the (transformed) class box — never smaller.  When larger, STEM
stretches the cell's io-pins to the instance box perimeter (Fig. 7.6; see
:meth:`repro.stem.cell.CellInstance.io_pins`).

Propagation and checking follow Fig. 7.7:

* a new class box propagates down, becoming the default instance box
  (with the placement transformation applied), except where the designer
  fixed the instance box — which is then only *checked*;
* instance boxes never propagate up; instead, a changed instance box
  procedurally resets its parent cell's class box (Fig. 7.8 — a
  hard-coded update-constraint), which is recalculated lazily.
"""

from __future__ import annotations

import math
from typing import Any, Optional

from ..core.justification import UPDATE
from ..stem.geometry import Rect, Transform
from ..stem.implicit import ClassInstVar, InstanceInstVar


class ClassBBox(ClassInstVar):
    """The characteristic (minimum) bounding box of a cell class."""

    def values_equal(self, a: Any, b: Any) -> bool:
        return a == b

    def on_stored_by_assignment(self) -> None:
        """A geometry change is broadcast to views as a layout change."""
        changed = getattr(self.parent, "changed", None)
        if callable(changed):
            changed("layout")


class InstanceBBox(InstanceInstVar):
    """The placement area of one cell instance.

    ``parent`` must be the cell instance, which supplies the placement
    ``transform`` and its containing cell (``parent_cell``).
    """

    def adjust_class_value(self, value: Rect) -> Rect:
        """Default instance box: the class box under the placement transform."""
        transform: Transform = self.parent.transform
        return transform.apply_to(value)

    def consistent_with_class(self) -> bool:
        """The instance box must be able to contain the transformed class box."""
        class_var = self.class_var
        if class_var is None or class_var.value is None or self.value is None:
            return True
        required = self.adjust_class_value(class_var.value)
        return self.value.can_contain(required)

    def on_stored_by_assignment(self) -> None:
        """Fig. 7.8: a changed subcell box invalidates the parent's box.

        Implemented procedurally (not as a declarative update-constraint)
        because the operation is localized, well defined and very frequent.
        """
        from ..core.justification import is_user

        instance = self.parent
        parent_cell = getattr(instance, "parent_cell", None)
        if parent_cell is None:
            return
        parent_box = parent_cell.variables.get("boundingBox")
        if parent_box is None or parent_box.value is None:
            return
        if is_user(parent_box.last_set_by):
            return  # an explicit floorplan box is only ever checked
        parent_box.set(None, UPDATE)


def calculate_bounding_box(subcell_boxes) -> Optional[Rect]:
    """The inherited ``calculateBoundingBox`` routine: union of subcell boxes."""
    return Rect.bounding(box for box in subcell_boxes if box is not None)
