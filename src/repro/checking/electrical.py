"""Electrical rule checking over the RC net model.

An extension of chapter 7's incremental checking family ("arbitrary
design checking can be added to the system by introducing additional
types of constraints"): drive-strength rules derived from the same RC
electrical model the delay constraints use (section 7.3).

Rules:

* **drive load** — the total load capacitance a net presents must not
  exceed the driving signal's ``max_load_capacitance``;
* **fanout** — the number of receivers must not exceed the driver's
  ``max_fanout``;
* **drive conflicts / floating nets** — a net must have exactly one
  driver (sweep check only; multiple tri-state drivers are beyond the
  model).

The first two exist both as constraints (attach :func:`watch_net` and
connection edits are checked incrementally, like signal types) and as a
batch sweep (:func:`check_cell`) usable on imported designs.
"""

from __future__ import annotations

from typing import Any, List, NamedTuple, Optional

from ..core.constraint import Constraint
from ..core.variable import Variable


class ElectricalFinding(NamedTuple):
    """One ERC diagnosis from the batch sweep."""

    cell: Any
    net: Any
    rule: str
    detail: str


class NetLoadVariable(Variable):
    """Derived per-net variable holding the current total load."""


class DriveLoadConstraint(Constraint):
    """The net's load must not exceed its driver's capability."""

    def __init__(self, net: Any, attach: bool = True) -> None:
        self.net = net
        load_var = NetLoadVariable(parent=net, name="totalLoad",
                                   context=net.parent_cell.context)
        super().__init__(load_var, attach=attach)

    @property
    def load_variable(self) -> NetLoadVariable:
        return self._arguments[0]

    def refresh(self) -> bool:
        """Recompute the load after a connectivity edit."""
        return self.load_variable.calculate(self.net.load_capacitance())

    def is_satisfied(self) -> bool:
        limit = _drive_limit(self.net)
        if limit is None:
            return True
        load = self.load_variable.value
        if load is None:
            return True
        return load <= limit

    def qualified_name(self) -> str:
        return f"driveLoad({self.net!r})"


class FanoutConstraint(Constraint):
    """The net's receiver count must not exceed the driver's max fanout."""

    def __init__(self, net: Any, attach: bool = True) -> None:
        self.net = net
        fanout_var = Variable(parent=net, name="fanout",
                              context=net.parent_cell.context)
        super().__init__(fanout_var, attach=attach)

    @property
    def fanout_variable(self) -> Variable:
        return self._arguments[0]

    def refresh(self) -> bool:
        return self.fanout_variable.calculate(len(self.net.receivers()))

    def is_satisfied(self) -> bool:
        limit = _fanout_limit(self.net)
        if limit is None:
            return True
        fanout = self.fanout_variable.value
        if fanout is None:
            return True
        return fanout <= limit


def _driver_signals(net: Any) -> List[Any]:
    return [net._endpoint_signal(endpoint) for endpoint in net.drivers()]


def _drive_limit(net: Any) -> Optional[float]:
    limits = [signal.max_load_capacitance for signal in _driver_signals(net)
              if signal.max_load_capacitance is not None]
    return min(limits) if limits else None


def _fanout_limit(net: Any) -> Optional[int]:
    limits = [signal.max_fanout for signal in _driver_signals(net)
              if signal.max_fanout is not None]
    return min(limits) if limits else None


class NetWatch:
    """Incremental ERC on one net: constraints plus a refresh hook."""

    def __init__(self, net: Any) -> None:
        self.net = net
        self.load_constraint = DriveLoadConstraint(net)
        self.fanout_constraint = FanoutConstraint(net)

    def refresh(self) -> bool:
        """Re-derive both figures; False signals an ERC violation."""
        ok = self.load_constraint.refresh()
        ok = self.fanout_constraint.refresh() and ok
        return ok

    def release(self) -> None:
        self.load_constraint.remove()
        self.fanout_constraint.remove()


def watch_net(net: Any) -> NetWatch:
    """Install incremental drive checking on a net."""
    watch = NetWatch(net)
    watch.refresh()
    return watch


def check_cell(cell: Any, *, require_single_driver: bool = True
               ) -> List[ElectricalFinding]:
    """Batch ERC sweep over every net of a composite cell."""
    findings: List[ElectricalFinding] = []
    for net in cell.nets.values():
        drivers = net.drivers()
        receivers = net.receivers()
        if require_single_driver:
            if not drivers and receivers:
                findings.append(ElectricalFinding(
                    cell, net, "floating",
                    f"net {net.name!r} has receivers but no driver"))
            elif len(drivers) > 1:
                findings.append(ElectricalFinding(
                    cell, net, "drive-conflict",
                    f"net {net.name!r} has {len(drivers)} drivers"))
        limit = _drive_limit(net)
        load = net.load_capacitance()
        if limit is not None and load > limit:
            findings.append(ElectricalFinding(
                cell, net, "overload",
                f"net {net.name!r} load {load:g} exceeds drive "
                f"capability {limit:g}"))
        fanout_limit = _fanout_limit(net)
        if fanout_limit is not None and len(receivers) > fanout_limit:
            findings.append(ElectricalFinding(
                cell, net, "fanout",
                f"net {net.name!r} fanout {len(receivers)} exceeds "
                f"limit {fanout_limit}"))
    return findings
