"""Delay estimation and checking (section 7.3).

Delay constraints incrementally compute worst-case delay estimates
between input and output signals of cells by searching for the longest
paths in *delay networks*.  The delay model is the simple RC model of
Fig. 7.10 (as in CRYSTAL): each declared cell delay is an internal delay,
and an instance's delay adds a transient ``R * C`` term — the output
resistance driving the instance's input net times the total load
capacitance on its output net.  Delays of cascaded components are
additive.

Dual delay variables (Fig. 7.11): a :class:`ClassDelay` per declared
input→output pair of a cell class, and a corresponding
:class:`InstanceDelay` in each instance.  A changed class delay
propagates (adjusted) to every instance delay; instance delays never
propagate up — instead they feed the containing cell's delay network of
:class:`~repro.core.functional.UniAdditionConstraint` (per path) and
:class:`~repro.core.functional.UniMaximumConstraint` (over paths,
Fig. 7.12), whose result *is* the containing cell's class delay.

Delay networks are built on demand by :func:`build_delay_network` —
enumerating all delay paths between a class delay's source and
destination through subcell delays and nets — and discarded whenever the
cell's internal structure changes (consistency before incrementality, as
the thesis chose).
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple

import networkx as nx

from ..core.functional import UniAdditionConstraint, UniMaximumConstraint
from ..core.variable import Variable
from ..stem.implicit import ClassInstVar, InstanceInstVar

#: Relative tolerance for delay value comparisons (floats from RC sums).
_REL_TOL = 1e-9


def _close(a: Any, b: Any) -> bool:
    if a is None or b is None:
        return a is b
    try:
        return math.isclose(a, b, rel_tol=_REL_TOL, abs_tol=1e-15)
    except TypeError:
        return a == b


class DelayValueMixin:
    """Float-tolerant equality for delay variables."""

    def values_equal(self, a: Any, b: Any) -> bool:
        return _close(a, b)


class PathDelayVariable(DelayValueMixin, Variable):
    """Hidden variable holding one delay path's total delay."""


class ClassDelay(DelayValueMixin, ClassInstVar):
    """Characteristic delay of a cell class between two io-signals.

    ``source_name``/``dest_name`` identify the pair.  The designer may
    seed the value with an estimate before the cell's internals exist
    (least-commitment); once the internal delay network is built, the
    computed value replaces the estimate.
    """

    def __init__(self, *args: Any, source_name: str = "",
                 dest_name: str = "", **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.source_name = source_name
        self.dest_name = dest_name


class InstanceDelay(DelayValueMixin, InstanceInstVar):
    """One instance's delay for a (source, dest) pair of its class.

    The downward adjustment implements the RC model: the class delay plus
    the driving resistance on the instance's input net times the load
    capacitance on its output net.
    """

    def __init__(self, *args: Any, source_name: str = "",
                 dest_name: str = "", **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.source_name = source_name
        self.dest_name = dest_name

    def loading_penalty(self) -> float:
        """R_out(input net) * C_load(output net) for this instance."""
        instance = self.parent
        input_net = instance.net_on(self.source_name)
        output_net = instance.net_on(self.dest_name)
        resistance = input_net.driving_resistance() if input_net is not None else 0.0
        capacitance = output_net.load_capacitance() if output_net is not None else 0.0
        return resistance * capacitance

    def adjust_class_value(self, value: float) -> float:
        return value + self.loading_penalty()

    def consistent_with_class(self) -> bool:
        """An instance can never be faster than its class characteristic."""
        class_var = self.class_var
        if class_var is None or class_var.value is None or self.value is None:
            return True
        return (self.value > class_var.value
                or _close(self.value, class_var.value))


class DelayPathExplosion(RuntimeError):
    """Path enumeration exceeded the configured ``max_paths`` guard."""


class DelayNetwork:
    """The constraints realizing one cell's delay characteristics.

    Holds, per declared class delay, the path variables, per-path addition
    constraints and the top maximum constraint, so the whole network can
    be erased when the cell's structure changes (section 7.3 end).
    """

    def __init__(self, cell_class: Any) -> None:
        self.cell_class = cell_class
        self.path_variables: Dict[Tuple[str, str], List[Variable]] = {}
        self.constraints: List[Any] = []

    def discard(self) -> None:
        """Remove every constraint of the network (dependency erasure)."""
        for constraint in self.constraints:
            constraint.remove()
        self.constraints.clear()
        self.path_variables.clear()


def enumerate_delay_paths(cell_class: Any, source: str, dest: str, *,
                          cutoff: Optional[int] = None,
                          max_paths: Optional[int] = None
                          ) -> List[List[InstanceDelay]]:
    """All delay paths from io ``source`` to io ``dest`` of a composite cell.

    A path is the sequence of subcell :class:`InstanceDelay` variables it
    traverses.  Only subcell delays *declared* in their cell classes are
    considered (the designer focuses STEM on critical paths, limiting
    combinatorial explosion).  Connectivity flows through nets: a net is
    driven by parent inputs and subcell outputs and feeds parent outputs
    and subcell inputs.

    ``cutoff`` bounds path length (in graph edges) and ``max_paths``
    truncates enumeration — the explicit guards for the combinatorial
    explosion section 7.3 warns about; truncation raises
    :class:`DelayPathExplosion` rather than silently dropping paths (a
    missing path would silently under-estimate the worst case).
    """
    graph = nx.MultiDiGraph()
    source_node = ("io", source)
    dest_node = ("io", dest)
    graph.add_node(source_node)
    graph.add_node(dest_node)

    for net in cell_class.nets.values():
        drivers: List[Any] = []
        receivers: List[Any] = []
        for owner, signal_name in net.endpoints:
            if owner is None:
                direction = cell_class.signal(signal_name).direction
                node = ("io", signal_name)
                # Internal side of the parent io: an 'in' io drives the net.
                if direction in ("in", "inout"):
                    drivers.append(node)
                if direction in ("out", "inout"):
                    receivers.append(node)
            else:
                direction = owner.cell_class.signal(signal_name).direction
                node = (owner, signal_name)
                if direction in ("out", "inout"):
                    drivers.append(node)
                if direction in ("in", "inout"):
                    receivers.append(node)
        for driver in drivers:
            for receiver in receivers:
                if driver != receiver:
                    graph.add_edge(driver, receiver, delay_var=None)

    for instance in cell_class.subcells:
        for (src_name, dst_name), delay_var in instance.delays.items():
            graph.add_edge((instance, src_name), (instance, dst_name),
                           delay_var=delay_var)

    if source_node not in graph or dest_node not in graph:
        return []

    paths: List[List[InstanceDelay]] = []
    for edge_path in nx.all_simple_edge_paths(graph, source_node, dest_node,
                                              cutoff=cutoff):
        delay_vars = [graph.edges[edge]["delay_var"] for edge in edge_path]
        delay_vars = [var for var in delay_vars if var is not None]
        if delay_vars:
            if max_paths is not None and len(paths) >= max_paths:
                raise DelayPathExplosion(
                    f"more than {max_paths} delay paths from "
                    f"{source!r} to {dest!r} in {cell_class.name!r}; "
                    f"declare fewer subcell delays or raise max_paths")
            paths.append(delay_vars)
    return paths


def build_delay_network(cell_class: Any, *,
                        cutoff: Optional[int] = None,
                        max_paths: Optional[int] = None) -> DelayNetwork:
    """Construct the Fig. 7.12 constraint network for a composite cell.

    For each declared class delay: every source→dest path becomes a
    :class:`PathDelayVariable` fed by a ``UniAdditionConstraint`` over the
    instance delays along the path, and the class delay variable becomes
    the ``UniMaximumConstraint`` of all path variables.  ``cutoff`` /
    ``max_paths`` pass through to :func:`enumerate_delay_paths`.
    """
    network = DelayNetwork(cell_class)
    for (source, dest), class_delay in cell_class.delays.items():
        paths = enumerate_delay_paths(cell_class, source, dest,
                                      cutoff=cutoff, max_paths=max_paths)
        if not paths:
            continue
        path_vars: List[Variable] = []
        for index, delay_vars in enumerate(paths):
            path_var = PathDelayVariable(
                parent=cell_class,
                name=f"delayPath[{source}->{dest}][{index}]",
                context=cell_class.context)
            addition = UniAdditionConstraint(path_var, delay_vars)
            network.constraints.append(addition)
            path_vars.append(path_var)
        maximum = UniMaximumConstraint(class_delay, path_vars)
        network.constraints.append(maximum)
        network.path_variables[(source, dest)] = path_vars
    return network
