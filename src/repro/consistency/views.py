"""Calculated views and controllers — the MVC construct (sections 3.3.1, 6.5.2).

A *view* translates part of a model's data into a representation suited
to one application or display.  Views are dependents of their models:
whenever an object changes a model it broadcasts ``changed``, and every
dependent view erases its calculated data; recalculation happens on next
access.  Selective erasure uses the aspect key of the broadcast (the
``#changed:key`` of section 6.5.2): a view declares which aspects it
cares about and ignores the rest (a SPICE net-list view survives a
pure-layout change).

A *controller* maps user input — menu selections here, programmatic —
onto messages to the model, with the context-dependent dispatch the MVC
construct provides.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Optional


class View:
    """Base calculated view: dependent of a model, lazily recalculated.

    Subclasses implement :meth:`calculate` (derive the representation
    from the model) and optionally narrow ``interested_aspects``.
    """

    #: Aspects whose changes invalidate this view; None means every change.
    interested_aspects: Optional[frozenset] = None

    def __init__(self, model: Any) -> None:
        self.model = model
        self._data: Any = None
        self.outdated = False
        self.calculations = 0
        model.add_dependent(self)

    def release(self) -> None:
        """Detach from the model."""
        self.model.remove_dependent(self)

    # -- change broadcast ----------------------------------------------------

    def model_changed(self, model: Any, aspect: Optional[str] = None) -> None:
        if self.interested_aspects is not None and aspect is not None \
                and aspect not in self.interested_aspects:
            return
        self.erase()

    def erase(self) -> None:
        """Throw away derived data; marks the view outdated until re-read."""
        self._data = None
        self.outdated = True

    # -- access ------------------------------------------------------------------

    @property
    def data(self) -> Any:
        """The view's representation, recalculated on demand."""
        if self._data is None:
            self._data = self.calculate()
            self.calculations += 1
            self.outdated = False
        return self._data

    def calculate(self) -> Any:
        """Derive the representation from the model; subclasses implement."""
        raise NotImplementedError


class FunctionView(View):
    """A view whose calculation is a plain callable over the model."""

    def __init__(self, model: Any, fn: Callable[[Any], Any],
                 aspects: Optional[Iterable[str]] = None) -> None:
        if aspects is not None:
            self.interested_aspects = frozenset(aspects)
        self.fn = fn
        super().__init__(model)

    def calculate(self) -> Any:
        return self.fn(self.model)


class Controller:
    """Maps named user actions onto messages to the model (section 3.3.1).

    The association between menu items and messages lives in the
    controller; the association between messages and methods lives in the
    model — the two levels of context dependence the thesis describes.
    """

    def __init__(self, model: Any, view: Optional[View] = None) -> None:
        self.model = model
        self.view = view
        self._actions: Dict[str, Callable[..., Any]] = {}

    def add_action(self, name: str, handler: Callable[..., Any]) -> None:
        """Associate a menu item with a handler (model message)."""
        self._actions[name] = handler

    def menu(self) -> list:
        """The available menu items."""
        return sorted(self._actions)

    def perform(self, name: str, *args: Any, **kwargs: Any) -> Any:
        """Dispatch a menu selection to its handler."""
        try:
            handler = self._actions[name]
        except KeyError:
            raise KeyError(f"controller has no action {name!r}; "
                           f"menu: {self.menu()}") from None
        return handler(self.model, *args, **kwargs)
