"""Consistency maintenance and tool integration (thesis chapter 6).

Property variables with implicit invocation, update-constraints, and the
calculated views / controllers through which application programs
interface to the design database.
"""

from .properties import PropertyVariable, add_stored_view
from .views import Controller, FunctionView, View

__all__ = ["Controller", "FunctionView", "PropertyVariable", "View",
           "add_stored_view"]
