"""Property variables and implicit invocation (sections 6.3, 6.5.1).

A *property variable* stores derived data (a calculated design property)
and behaves like a daemon (Fig. 6.1): when read while empty, it sends its
*recalculate message* to its parent, invoking the application program
that computes the value.  An ``eval`` flag guards against infinite
evaluation loops.

Combined with :class:`~repro.core.library.UpdateConstraint` — which
erases property variables whenever data they depend on change — this
gives the database's internal consistency maintenance: derived data are
never stale, and recalculation is delayed until actually needed.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence, Union

from ..core.justification import APPLICATION
from ..core.library import UpdateConstraint
from ..core.variable import Variable

Recalculate = Union[str, Callable[..., Any]]


class PropertyVariable(Variable):
    """Derived-data storage with lazy recalculation (Fig. 6.1).

    Parameters
    ----------
    parent:
        The object the recalculate message is sent to.
    recalculate:
        Either the name of a method on ``parent`` (the Smalltalk
        ``reCalculateMessage`` style) or a callable invoked as
        ``recalculate(parent, *arguments)``.
    arguments:
        Extra arguments passed along with the message.
    """

    def __init__(self, parent: Any = None, name: str = "",
                 recalculate: Optional[Recalculate] = None,
                 arguments: Sequence[Any] = (), context: Any = None) -> None:
        super().__init__(parent=parent, name=name, context=context)
        self.recalculate_message = recalculate
        self.arguments = tuple(arguments)
        self._eval_flag = False
        self.recalculations = 0

    @property
    def value(self) -> Any:
        """Current value, recalculating through implicit invocation if empty."""
        if self._value is None and not self._eval_flag \
                and self.recalculate_message is not None:
            self._eval_flag = True
            try:
                self.recalculate()
            finally:
                self._eval_flag = False
        return self._value

    @property
    def stored_value(self) -> Any:
        """The raw stored value, without triggering recalculation."""
        return self._value

    def recalculate(self) -> None:
        """Send the recalculate message and store the result."""
        message = self.recalculate_message
        if callable(message):
            result = message(self.parent, *self.arguments)
        else:
            result = getattr(self.parent, message)(*self.arguments)
        self.recalculations += 1
        if result is not None:
            self.context.assign(self, result, APPLICATION)


def add_stored_view(parent: Any, name: str, recalculate: Recalculate,
                    watched: Sequence[Variable] = (),
                    arguments: Sequence[Any] = (),
                    context: Any = None) -> PropertyVariable:
    """Declare a stored view: a property variable kept fresh by erasure.

    Creates the :class:`PropertyVariable` and, when ``watched`` variables
    are given, an :class:`~repro.core.library.UpdateConstraint` that
    erases it whenever any of them changes — the tool-integration recipe
    of section 6.5.1.  If ``parent`` has a ``variables`` registry the new
    property is recorded there.
    """
    if context is None and watched:
        context = watched[0].context
    prop = PropertyVariable(parent=parent, name=name, recalculate=recalculate,
                            arguments=arguments, context=context)
    if watched:
        UpdateConstraint(list(watched), [prop])
    registry = getattr(parent, "variables", None)
    if isinstance(registry, dict):
        registry[name] = prop
    return prop
