"""Functional constraints — unidirectional mappings scheduled on agendas.

Section 4.2.1: a functional constraint expresses one variable (the
*result*) as a function of the others.  Its propagation direction never
depends on which variable changed, so it defers its inference onto the
``functional_constraints`` agenda via ``context.schedule``, letting every
argument change before the (possibly expensive) computation runs; the
engine's wavefront loop pops the entry once the immediate spread is done.
This suppresses redundant calculation of transient results — measured by
experiment E2.

``UniAdditionConstraint`` and ``UniMaximumConstraint`` are the building
blocks of STEM's delay networks (section 7.3, Fig. 7.12): each delay path
is a sum of instance delays, and a class delay is the maximum over its
paths.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

from .agenda import FUNCTIONAL
from .constraint import Constraint


class FunctionalConstraint(Constraint):
    """``result = compute(inputs)`` with agenda-deferred propagation.

    The first constructor argument is the result variable; the rest are
    inputs.  Changes of the result variable itself do not drive the
    constraint (Fig. 4.7's ``permitChangesByVariable:``); the final
    satisfaction sweep still detects a result that disagrees with the
    function of its inputs.
    """

    agenda = FUNCTIONAL

    def __init__(self, result: Any, inputs: Sequence[Any],
                 attach: bool = True) -> None:
        super().__init__(result, *inputs, attach=attach)

    @property
    def result_variable(self) -> Any:
        return self._arguments[0]

    @property
    def inputs(self) -> List[Any]:
        return self._arguments[1:]

    def permits_changes_by(self, variable: Any) -> bool:
        return variable is not self.result_variable

    def compute(self, values: List[Any]) -> Any:
        """The functional mapping; subclasses implement."""
        raise NotImplementedError

    def _input_values(self) -> Optional[List[Any]]:
        values = [variable.value for variable in self.inputs]
        if any(value is None for value in values):
            return None
        return values

    def immediate_inference_by_changing(self, variable: Any) -> None:
        values = self._input_values()
        if values is None:
            return  # incomplete inputs: nothing to infer yet
        result = self.compute(values)
        # Null dependency record: the result implicitly depends on every
        # input (section 4.2.4).
        self.result_variable.set_propagated(result, self, dependency_record=None)

    def is_satisfied(self) -> bool:
        values = self._input_values()
        result = self.result_variable
        if values is None or result.value is None:
            return True
        return result.values_equal(result.value, self.compute(values))

    def plan_derivation(self, target: Any, changed: Any):
        """Plan-cache certification: recompute the result from live inputs."""
        if target is not self.result_variable:
            return None
        from .plancache import NOT_DERIVED

        inputs = self._arguments[1:]
        compute = self.compute

        def derive() -> Any:
            values = [variable.value for variable in inputs]
            for value in values:
                if value is None:
                    return NOT_DERIVED  # the engine would skip this, too
            return compute(values)

        return derive

    def plan_silence_guard(self):
        """Guard for a traced round where this constraint popped but
        computed nothing: its inputs must *still* be incomplete, else the
        general engine would now produce a result the plan lacks."""
        inputs = self._arguments[1:]

        def silent() -> bool:
            return any(variable.value is None for variable in inputs)

        return silent

    def test_membership_of(self, variable: Any, dependency_record: Any) -> bool:
        # The result depends on every input; nothing depends on the result
        # through this constraint.
        return variable is not self.result_variable


class UniAdditionConstraint(FunctionalConstraint):
    """result = sum(inputs); one delay path's total delay (section 7.3)."""

    def compute(self, values: List[Any]) -> Any:
        total = values[0]
        for value in values[1:]:
            total = total + value
        return total


class UniMaximumConstraint(FunctionalConstraint):
    """result = max(inputs); the longest of several delay paths."""

    def compute(self, values: List[Any]) -> Any:
        return max(values)


class UniMinimumConstraint(FunctionalConstraint):
    """result = min(inputs)."""

    def compute(self, values: List[Any]) -> Any:
        return min(values)


class ScaleOffsetConstraint(FunctionalConstraint):
    """result = scale * input + offset.

    Used e.g. to adjust a nominal class delay for local loading
    (``instance_delay = class_delay + R_out * C_load``, section 7.3).
    """

    def __init__(self, result: Any, source: Any, *, scale: Any = 1,
                 offset: Any = 0, attach: bool = True) -> None:
        self.scale = scale
        self.offset = offset
        super().__init__(result, [source], attach=attach)

    def compute(self, values: List[Any]) -> Any:
        return self.scale * values[0] + self.offset


class FormulaConstraint(FunctionalConstraint):
    """result = fn(*inputs) for an arbitrary callable.

    ``label`` names the formula in editor displays and violation messages.
    """

    def __init__(self, result: Any, inputs: Sequence[Any],
                 fn: Callable[..., Any], label: str = "",
                 attach: bool = True) -> None:
        self.fn = fn
        self.label = label or getattr(fn, "__name__", "fn")
        super().__init__(result, inputs, attach=attach)

    def compute(self, values: List[Any]) -> Any:
        return self.fn(*values)

    def qualified_name(self) -> str:
        names = ", ".join(v.qualified_name() for v in self.inputs)
        return (f"{self.result_variable.qualified_name()} = "
                f"{self.label}({names})")
