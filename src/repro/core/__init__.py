"""Constraint propagation kernel (thesis chapter 4).

The public surface of the kernel: variables, constraints, the propagation
context, justifications, dependency analysis and the constraint editor.
"""

from .agenda import FUNCTIONAL, IMPLICIT, Agenda, AgendaScheduler
from .compile import CompilationError, CompiledNetwork, compile_network
from .constraint import Constraint
from .control import PropagationControl, control_for
from .dependency import antecedents, consequences, variable_consequences
from .editor import ConstraintEditor
from .explain import Diagnosis, ExplainingHandler, Recommendation, explain
from .engine import (
    PropagationContext,
    PropagationStats,
    RoundBudget,
    default_context,
    reset_default_context,
)
from .functional import (
    FormulaConstraint,
    FunctionalConstraint,
    ScaleOffsetConstraint,
    UniAdditionConstraint,
    UniMaximumConstraint,
    UniMinimumConstraint,
)
from .islands import (
    IslandIndex,
    SerialIslandExecutor,
    ThreadIslandExecutor,
    bfs_partition,
    install_islands,
    islands_for,
)
from .justification import (
    APPLICATION,
    DEFAULT,
    TENTATIVE,
    UPDATE,
    USER,
    ExternalJustification,
    PropagatedJustification,
    is_propagated,
    is_user,
    may_overwrite,
    source_constraint,
)
from .library import CompatibleConstraint, EqualityConstraint, UpdateConstraint
from .plancache import (
    NOT_DERIVED,
    PlanCache,
    PropagationPlan,
    PropagationPlanChain,
    plan_cache_for,
)
from .predicates import (
    AreaBoundConstraint,
    AspectRatioPredicate,
    FunctionPredicate,
    LowerBoundConstraint,
    OrderingConstraint,
    PitchMatchPredicate,
    PredicateConstraint,
    RangeConstraint,
    UpperBoundConstraint,
)
from .strengths import (
    DEFAULT_STRENGTH,
    MEDIUM,
    REQUIRED,
    STRONG,
    StrengthAwareVariable,
    USER_STRENGTH,
    WEAK,
    WEAKEST,
    strength_of_constraint,
    with_strength,
)
from .sweep import (
    HAVE_NUMPY,
    SweepError,
    SweepPlan,
    SweepResult,
    compile_island_sweeps,
    compile_sweep,
    sweep,
)
from .satisfaction import (
    Infeasible,
    Interval,
    IntervalSolver,
    RelaxationSolver,
    plan_one_pass,
    solve_one_pass,
)
from .trace import PropagationTrace, trace
from .variable import Variable
from .violations import (
    BudgetExceeded,
    ConstraintViolationError,
    PropagationViolation,
    RaisingHandler,
    ViolationHandler,
    ViolationRecord,
    WarningHandler,
)

__all__ = [
    "APPLICATION", "DEFAULT", "TENTATIVE", "UPDATE", "USER",
    "Agenda", "AgendaScheduler", "CompilationError", "CompiledNetwork",
    "DEFAULT_STRENGTH", "Diagnosis", "ExplainingHandler", "FUNCTIONAL",
    "IMPLICIT", "Infeasible", "Interval", "IntervalSolver", "MEDIUM",
    "PropagationControl", "REQUIRED", "Recommendation", "RelaxationSolver",
    "STRONG", "StrengthAwareVariable", "USER_STRENGTH", "WEAK", "WEAKEST",
    "IslandIndex", "SerialIslandExecutor", "ThreadIslandExecutor",
    "bfs_partition", "install_islands", "islands_for",
    "NOT_DERIVED", "PlanCache", "PropagationPlan", "PropagationPlanChain",
    "PropagationTrace",
    "HAVE_NUMPY", "SweepError", "SweepPlan", "SweepResult",
    "compile_island_sweeps",
    "compile_network", "compile_sweep", "control_for", "explain",
    "plan_cache_for",
    "plan_one_pass", "solve_one_pass", "strength_of_constraint", "sweep",
    "trace", "with_strength",
    "AreaBoundConstraint", "AspectRatioPredicate", "BudgetExceeded",
    "CompatibleConstraint",
    "Constraint", "ConstraintEditor", "ConstraintViolationError",
    "EqualityConstraint", "ExternalJustification", "FormulaConstraint",
    "FunctionPredicate", "FunctionalConstraint", "LowerBoundConstraint",
    "OrderingConstraint", "PitchMatchPredicate", "PredicateConstraint",
    "PropagatedJustification", "PropagationContext", "PropagationStats",
    "PropagationViolation", "RaisingHandler", "RangeConstraint",
    "RoundBudget",
    "ScaleOffsetConstraint", "UniAdditionConstraint", "UniMaximumConstraint",
    "UniMinimumConstraint", "UpdateConstraint", "UpperBoundConstraint",
    "Variable", "ViolationHandler", "ViolationRecord", "WarningHandler",
    "antecedents", "consequences", "default_context", "is_propagated",
    "is_user", "may_overwrite", "reset_default_context", "source_constraint",
    "variable_consequences",
]
