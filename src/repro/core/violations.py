"""Constraint violations and violation handlers.

Section 4.2.3 / 5.2 of the thesis: a constraint violation is detected
either during propagation (a propagated value disagrees with a variable's
value and overwriting is not possible) or by the final ``is_satisfied``
sweep over all visited constraints.  When a violation is detected the
violated constraint's *violation handler* runs.  The default handler
issues a warning and restores the constraint networks to their original
states; STEM's interactive handler offers the designer a "debug" (open a
constraint editor) or "proceed" choice.

The propagation engine signals violations internally with
:class:`PropagationViolation` (an exception, so the depth-first traversal
unwinds the way the NIL-status returns do in the Smalltalk code).  The
engine catches it, restores state, and hands a :class:`ViolationRecord`
to the context's handler.  Assignment methods then return ``False`` —
the validity feedback of section 5.2.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional


class PropagationViolation(Exception):
    """Internal signal raised mid-propagation when a violation is detected.

    Carries enough context to explain the failure: the variable whose
    assignment failed, the constraint involved (``None`` for final-check
    failures that have only a constraint), the attempted value and a
    human-readable reason.
    """

    #: Violation category — ``"violation"`` for ordinary constraint
    #: conflicts, ``"budget"`` for watchdog aborts (:class:`BudgetExceeded`).
    kind = "violation"

    def __init__(self, *, variable: Any = None, constraint: Any = None,
                 attempted_value: Any = None, reason: str = "") -> None:
        self.variable = variable
        self.constraint = constraint
        self.attempted_value = attempted_value
        self.reason = reason
        super().__init__(reason)


class BudgetExceeded(PropagationViolation):
    """A propagation round overran its :class:`~repro.core.engine.RoundBudget`.

    Raised by the wavefront loop when a round's step or wall-time budget
    is exhausted — the watchdog against runaway propagation (divergent
    cycles under a relaxed N-change rule, pathological fan-out, buggy
    constraint implementations).  Rides the ordinary violation machinery:
    the engine aborts the round via the same rollback path, so the
    network is byte-identical to its pre-round state, and the context's
    handler receives a :class:`ViolationRecord` with ``kind="budget"``.
    """

    kind = "budget"

    def __init__(self, *, steps: int, elapsed: float,
                 reason: str, variable: Any = None) -> None:
        super().__init__(variable=variable, reason=reason)
        self.steps = steps
        self.elapsed = elapsed


class ConstraintViolationError(Exception):
    """Raised by :class:`RaisingHandler` after state has been restored."""

    def __init__(self, record: "ViolationRecord") -> None:
        self.record = record
        super().__init__(str(record))


class ViolationRecord:
    """An after-the-fact description of one constraint violation."""

    __slots__ = ("variable", "constraint", "attempted_value", "reason",
                 "kind")

    def __init__(self, variable: Any, constraint: Any,
                 attempted_value: Any, reason: str,
                 kind: str = "violation") -> None:
        self.variable = variable
        self.constraint = constraint
        self.attempted_value = attempted_value
        self.reason = reason
        self.kind = kind

    @classmethod
    def from_signal(cls, signal: PropagationViolation) -> "ViolationRecord":
        return cls(signal.variable, signal.constraint,
                   signal.attempted_value, signal.reason,
                   getattr(signal, "kind", "violation"))

    def __str__(self) -> str:
        parts = []
        if self.variable is not None:
            parts.append(f"variable {describe(self.variable)}")
        if self.constraint is not None:
            parts.append(f"constraint {describe(self.constraint)}")
        where = " / ".join(parts) or "constraint network"
        return f"constraint violation at {where}: {self.reason}"


def describe(obj: Any) -> str:
    """Best-effort short description of a variable or constraint."""
    name = getattr(obj, "qualified_name", None)
    if callable(name):
        try:
            return name()
        except Exception:
            pass
    elif isinstance(name, str):
        return name
    return repr(obj)


class ViolationHandler:
    """Base handler: collect the violation record silently.

    Subclasses customise what the designer sees (section 5.2).  State
    restoration is performed by the engine *before* the handler runs, so
    handlers only decide how to report.
    """

    def __init__(self) -> None:
        self.records: List[ViolationRecord] = []

    @property
    def last(self) -> Optional[ViolationRecord]:
        return self.records[-1] if self.records else None

    def handle(self, record: ViolationRecord) -> None:
        self.records.append(record)

    def clear(self) -> None:
        self.records.clear()


class WarningHandler(ViolationHandler):
    """Default handler: record and emit the warning text via a callback.

    The callback defaults to a no-op sink; tests and the constraint editor
    install a collector, interactive front-ends may print.
    """

    def __init__(self, sink: Optional[Callable[[str], None]] = None) -> None:
        super().__init__()
        self.sink = sink
        self.messages: List[str] = []

    def handle(self, record: ViolationRecord) -> None:
        super().handle(record)
        message = str(record)
        self.messages.append(message)
        if self.sink is not None:
            self.sink(message)


class RaisingHandler(ViolationHandler):
    """Handler that raises :class:`ConstraintViolationError`.

    Useful for application code that prefers exceptions to checking the
    boolean validity feedback of assignment methods.
    """

    def handle(self, record: ViolationRecord) -> None:
        super().handle(record)
        raise ConstraintViolationError(record)
