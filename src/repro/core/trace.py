"""Propagation tracing — observing rounds as they happen.

The constraint editor (section 5.4) inspects networks *after* the fact;
debugging mis-propagation often needs the order of events *during* a
round: which constraint fired, what it assigned, what was ignored, what
was scheduled, where the violation surfaced.  A
:class:`PropagationTrace` installed on a context records exactly that
stream; :meth:`PropagationTrace.render` prints it like a call log.
Events for constraint activity (``infer``, ``schedule``) are emitted from
the wavefront loop's single dispatch site and the ``context.schedule``
choke point, so the trace is a faithful linearisation of the round.

Tracing costs one attribute check per event when disabled; installs and
uninstalls at runtime (e.g. just around one suspicious assignment).
"""

from __future__ import annotations

from typing import Any, Callable, List, NamedTuple, Optional

from .engine import PropagationContext
from .violations import describe


class TraceEvent(NamedTuple):
    kind: str          # round-start, store, ignore, schedule, infer,
                       # violation, restore, round-end
    subject: Any       # variable or constraint
    detail: str


class PropagationTrace:
    """Recorder of one context's propagation events."""

    def __init__(self, context: PropagationContext,
                 sink: Optional[Callable[[str], None]] = None) -> None:
        self.context = context
        self.sink = sink
        self.events: List[TraceEvent] = []
        self._installed = False
        self._previous: Optional["PropagationTrace"] = None

    # -- lifecycle ----------------------------------------------------------

    def install(self) -> "PropagationTrace":
        """Start recording; saves any previously installed tracer.

        Install/uninstall must leave the context exactly as found even
        when a propagation round raises inside a ``with`` body: the
        previous tracer (usually ``None``) is restored on uninstall, so
        nested traces compose and a failing round cannot leak a stale
        recorder onto the context.
        """
        if not self._installed:
            self._previous = getattr(self.context, "tracer", None)
            self.context.tracer = self
            self._installed = True
        return self

    def uninstall(self) -> None:
        if not self._installed:
            return
        if getattr(self.context, "tracer", None) is self:
            self.context.tracer = self._previous
        self._installed = False
        self._previous = None

    def __enter__(self) -> "PropagationTrace":
        return self.install()

    def __exit__(self, *exc_info: Any) -> None:
        self.uninstall()

    def clear(self) -> None:
        self.events.clear()

    # -- recording -------------------------------------------------------------

    def record(self, kind: str, subject: Any, detail: str = "") -> None:
        event = TraceEvent(kind, subject, detail)
        self.events.append(event)
        if self.sink is not None:
            self.sink(self._line(event))

    # -- reporting ----------------------------------------------------------------

    @staticmethod
    def _line(event: TraceEvent) -> str:
        subject = describe(event.subject) if event.subject is not None else ""
        parts = [f"{event.kind:<11}", subject]
        if event.detail:
            parts.append(f"  {event.detail}")
        return " ".join(part for part in parts if part)

    def render(self) -> str:
        return "\n".join(self._line(event) for event in self.events)

    def events_of(self, kind: str) -> List[TraceEvent]:
        return [event for event in self.events if event.kind == kind]


def trace(context: PropagationContext,
          sink: Optional[Callable[[str], None]] = None) -> PropagationTrace:
    """Context manager: record propagation events during the block.

    ::

        with trace(default_context()) as t:
            variable.set(9)
        print(t.render())
    """
    return PropagationTrace(context, sink)
