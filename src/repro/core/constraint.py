"""Constraint objects — assertions over variable objects.

Section 4.1.2 of the thesis: a constraint's semantics are collectively
defined by two methods.  ``immediate_inference_by_changing(variable)``
examines the changed variable and assigns inferred values to the other
arguments; ``is_satisfied()`` tests whether the current argument values
satisfy the relation.  Subclasses customise propagation behaviour chiefly
by redefining these two methods — the open-endedness the thesis contrasts
with MOLGEN and CONSTRAINTS.

Network editing (section 4.2.5) lives here too: attaching a constraint
re-propagates its arguments in precedence order (Fig. 4.13); removing an
argument performs dependency-directed erasure of every value the
constraint justified (Fig. 4.14).
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence

from . import dependency
from .engine import PropagationContext, default_context
from .violations import PropagationViolation, ViolationHandler


class Constraint:
    """Base class of all explicit constraints.

    Parameters
    ----------
    *variables:
        The initial argument variables.  Unless ``attach=False``, the
        constraint immediately links itself to them and re-propagates,
        exactly as adding a constraint does in the thesis.
    attach:
        Pass False to build the object without touching the network (the
        caller then calls :meth:`attach`).
    """

    #: Agenda this constraint defers to, or None for immediate propagation
    #: (section 4.2.1).  Subclasses override (e.g. functional constraints).
    agenda: Optional[str] = None

    #: Optional per-constraint violation handler (section 5.2); None means
    #: use the context's handler.
    violation_handler: Optional[ViolationHandler] = None

    def __init__(self, *variables: Any, attach: bool = True) -> None:
        self._arguments: List[Any] = []
        self._attached = False
        self._context: Optional[PropagationContext] = None
        for variable in variables:
            self.basic_add_argument(variable)
        if attach:
            self.attach()

    # -- identity -----------------------------------------------------------

    @property
    def arguments(self) -> List[Any]:
        return self._arguments

    @property
    def context(self) -> PropagationContext:
        if self._context is None:
            return default_context()
        return self._context

    @property
    def attached(self) -> bool:
        return self._attached

    def qualified_name(self) -> str:
        names = ", ".join(v.qualified_name() for v in self._arguments)
        return f"{type(self).__name__}({names})"

    def __repr__(self) -> str:
        return f"<{self.qualified_name()}>"

    # -- network editing -------------------------------------------------------

    def basic_add_argument(self, variable: Any) -> None:
        """Link an argument without re-propagation (``basicAddArgument:``)."""
        if variable in self._arguments:
            return
        if self._context is None:
            self._context = variable.context
        elif variable.context is not self._context:
            raise ValueError(
                f"variable {variable!r} belongs to a different propagation "
                f"context than constraint {self!r}")
        self._arguments.append(variable)
        if self._attached:
            variable.add_constraint(self)

    def attach(self) -> bool:
        """Register with every argument and re-propagate (Fig. 4.13).

        Returns the validity feedback: False when attaching immediately
        produced a constraint violation (the constraint stays attached so
        the designer can inspect and fix it, as in STEM).
        """
        if self._attached:
            return True
        self._attached = True
        with self.context.structural_operation():
            # One logical edit, one topology epoch: the N argument links
            # coalesce instead of bumping N times.
            for variable in self._arguments:
                variable.add_constraint(self)
        return self.reinitialize_variables()

    def reinitialize_variables(self) -> bool:
        """Give every argument a chance to assert its value (Fig. 4.13)."""
        return self.context.repropagate_constraint(self)

    def add_argument(self, variable: Any) -> bool:
        """Add an argument to an attached constraint, with re-propagation."""
        self.basic_add_argument(variable)
        if not self._attached:
            return True
        variable.add_constraint(self)
        return self.reinitialize_variables()

    def remove_argument(self, variable: Any) -> bool:
        """Detach one argument with dependency-directed erasure (Fig. 4.14).

        Values that were justified by this constraint/variable pair are
        reset to None; the constraint then re-propagates its remaining
        arguments.
        """
        if variable not in self._arguments:
            return True
        # Collect the erasure set before unlinking (traversal needs links).
        if variable.source_constraint() is self:
            to_reset = {variable} | variable.variable_consequences()
        else:
            to_reset = dependency.constraint_consequences(self, variable)
        with self.context.structural_operation():
            variable.remove_constraint(self)
            self._arguments.remove(variable)
        for dependent in to_reset:
            dependent.reset()
        if self._attached and self._arguments:
            return self.reinitialize_variables()
        return True

    def remove(self) -> None:
        """Detach from every argument, erasing all values it justified."""
        to_reset = set()
        for variable in self._arguments:
            if variable.source_constraint() is self:
                to_reset.add(variable)
                to_reset |= variable.variable_consequences()
            else:
                to_reset |= dependency.constraint_consequences(self, variable)
        with self.context.structural_operation():
            # One logical edit, one topology epoch, however many unlinks.
            for variable in self._arguments:
                variable.remove_constraint(self)
        self._arguments = []
        self._attached = False
        for dependent in to_reset:
            dependent.reset()

    # -- propagation protocol ------------------------------------------------------

    def propagate_variable(self, variable: Any) -> None:
        """React to a changed argument (``propagateVariable:``).

        Immediate constraints run their inference at once; agenda-based
        constraints schedule themselves if the changed variable is allowed
        to drive them (Fig. 4.7).
        """
        if self.agenda is None:
            self.immediate_inference_by_changing(variable)
        elif self.permits_changes_by(variable):
            self.context.schedule(self, None, agenda=self.agenda)

    def propagate_scheduled(self, variable: Any) -> None:
        """Run a deferred propagation popped from an agenda."""
        self.immediate_inference_by_changing(variable)

    def immediate_inference_by_changing(self, variable: Any) -> None:
        """Assign inferred values to the other arguments.  Default: none."""

    def is_satisfied(self) -> bool:
        """Do the current argument values satisfy the relation?"""
        return True

    def permits_changes_by(self, variable: Any) -> bool:
        """May a change of ``variable`` drive this constraint's inference?"""
        return True

    # -- plan-cache protocol (repro.core.plancache) -------------------------------------

    #: True for constraint classes whose inference is a no-op exactly when
    #: the activating value is ``None`` (the library's null-driven skip):
    #: the plan cache may keep such a constraint silent in a plan because
    #: the ``None``-ness of every traced value is guard-protected.
    plan_silent_on_none = False

    def plan_derivation(self, target: Any, changed: Any) -> Optional[Any]:
        """Express one traced propagation as a pure derivation, or refuse.

        ``target`` is the variable this constraint assigned during the
        traced round; ``changed`` is the activating variable recorded in
        the justification's dependency record (``None`` when the record
        carries no variable).  Return a zero-argument callable computing,
        from *current* network state, the value the constraint would
        propagate to ``target`` — or the
        :data:`~repro.core.plancache.NOT_DERIVED` sentinel when the
        inference would not fire (incomplete inputs, an inline violation).
        Returning ``None`` marks the trace unplannable; the base class
        always refuses, so only explicitly certified constraint types
        participate in plan specialization.
        """
        return None

    # -- dependency protocol ----------------------------------------------------------

    def test_membership_of(self, variable: Any, dependency_record: Any) -> bool:
        """Is ``variable`` among the dependencies in ``dependency_record``?

        The record was created by this constraint during propagation and is
        interpreted only here.  The conservative default treats every
        argument as a dependency.
        """
        return True

    # -- convenience -------------------------------------------------------------------

    def violate(self, variable: Any = None, value: Any = None,
                reason: str = "") -> None:
        """Raise a violation attributed to this constraint."""
        raise PropagationViolation(variable=variable, constraint=self,
                                   attempted_value=value,
                                   reason=reason or f"{self!r} violated")

    def non_nil_values(self) -> List[Any]:
        """Values of arguments that currently hold a value."""
        return [v.value for v in self._arguments if v.value is not None]
