"""Fine-grained propagation control (thesis section 9.3, suggestion 2).

The base system has one global switch (``CPSwitch``, section 5.3).  The
thesis suggests "a higher degree of control ... disabling propagation
and/or checking of individual constraints, constraints in particular
networks, specified types of constraints, and constraints connected to
specific sets of variables".  This module implements exactly that set of
selectors as a :class:`PropagationControl` attached to a context.

Disabled constraints neither propagate nor check: the engine consults
the control (when one is installed) before activating a constraint and
before the final satisfaction sweep.  Everything composes: a constraint
is active only if no selector disables it.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional, Set, Type

from .engine import PropagationContext


class PropagationControl:
    """Selective enabling/disabling of constraints for one context.

    Selectors:

    * individual constraint objects (:meth:`disable_constraint`);
    * constraint types (:meth:`disable_type` — subclasses included);
    * constraints touching specific variables (:meth:`disable_variable`);
    * whole networks, given any member variable
      (:meth:`disable_network_of` — the connected component);
    * arbitrary predicates (:meth:`add_filter`).
    """

    def __init__(self, context: PropagationContext) -> None:
        self.context = context
        self._constraints: Set[int] = set()
        self._constraint_refs: List[Any] = []  # keep objects alive/listable
        self._types: List[Type] = []
        self._variables: Set[int] = set()
        self._variable_refs: List[Any] = []
        self._filters: List[Callable[[Any], bool]] = []
        context.control = self
        # Installing a control changes the engine's _allows identity;
        # conservatively treat it (and every selector mutation below) as
        # a topology change so cached propagation plans are invalidated.
        context.bump_topology_epoch()

    def _note_change(self) -> None:
        self.context.bump_topology_epoch()

    # -- selectors -------------------------------------------------------------

    def disable_constraint(self, constraint: Any) -> None:
        if id(constraint) not in self._constraints:
            self._constraints.add(id(constraint))
            self._constraint_refs.append(constraint)
            self._note_change()

    def enable_constraint(self, constraint: Any) -> None:
        if id(constraint) in self._constraints:
            self._constraints.discard(id(constraint))
            self._constraint_refs = [c for c in self._constraint_refs
                                     if c is not constraint]
            self._note_change()

    def disable_type(self, constraint_type: Type) -> None:
        if constraint_type not in self._types:
            self._types.append(constraint_type)
            self._note_change()

    def enable_type(self, constraint_type: Type) -> None:
        if constraint_type in self._types:
            self._types.remove(constraint_type)
            self._note_change()

    def disable_variable(self, variable: Any) -> None:
        """Disable every constraint connected to ``variable``."""
        if id(variable) not in self._variables:
            self._variables.add(id(variable))
            self._variable_refs.append(variable)
            self._note_change()

    def enable_variable(self, variable: Any) -> None:
        if id(variable) in self._variables:
            self._variables.discard(id(variable))
            self._variable_refs = [v for v in self._variable_refs
                                   if v is not variable]
            self._note_change()

    def disable_network_of(self, variable: Any) -> int:
        """Disable the whole connected constraint network of ``variable``.

        Walks the variable-constraint graph and disables every constraint
        found; returns how many were disabled.
        """
        seen_variables: Set[int] = set()
        count = 0
        stack = [variable]
        while stack:
            current = stack.pop()
            if id(current) in seen_variables:
                continue
            seen_variables.add(id(current))
            for constraint in current.all_constraints():
                if id(constraint) not in self._constraints:
                    self.disable_constraint(constraint)
                    count += 1
                for argument in getattr(constraint, "arguments", []):
                    if id(argument) not in seen_variables:
                        stack.append(argument)
        return count

    def add_filter(self, predicate: Callable[[Any], bool]) -> None:
        """Disable every constraint for which ``predicate`` is true."""
        self._filters.append(predicate)
        self._note_change()

    def clear(self) -> None:
        """Re-enable everything."""
        self._constraints.clear()
        self._constraint_refs.clear()
        self._types.clear()
        self._variables.clear()
        self._variable_refs.clear()
        self._filters.clear()
        self._note_change()

    # -- the engine's query -------------------------------------------------------

    def allows(self, constraint: Any) -> bool:
        """May this constraint propagate / be checked?"""
        if id(constraint) in self._constraints:
            return False
        for constraint_type in self._types:
            if isinstance(constraint, constraint_type):
                return False
        if self._variables:
            for argument in getattr(constraint, "arguments", []):
                if id(argument) in self._variables:
                    return False
        for predicate in self._filters:
            if predicate(constraint):
                return False
        return True

    def disabled_constraints(self) -> List[Any]:
        """The individually disabled constraints (for editor display)."""
        return list(self._constraint_refs)


def control_for(context: PropagationContext) -> PropagationControl:
    """The context's control, creating one on first use."""
    existing = getattr(context, "control", None)
    if isinstance(existing, PropagationControl):
        return existing
    return PropagationControl(context)
