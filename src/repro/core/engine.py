"""The constraint propagation engine — an iterative wavefront.

Implements the propagation process of thesis section 4.2: a depth-first
traversal of the constraint network triggered by a value assignment,
alternating between variables (spreading to their constraints) and
constraints (inferring values for further variables), followed by draining
the fixed-priority agendas and a final ``is_satisfied`` sweep over every
visited constraint.

The thesis (and earlier versions of this module) realise the traversal as
literal recursion: every ``spread -> propagate_variable -> set_propagated``
hop consumes an interpreter stack frame, which caps network depth and
requires raising the recursion limit for long chains.  Following the
generic *propagator iteration* architecture of constraint-engine
literature (Schulte & Stuckey, "Efficient Constraint Propagation Engines";
Apt, "The Essence of Constraint Propagation"), the traversal is instead
driven by an explicit per-round **event queue**:

* ``("variable-changed", variable, exclude)`` — a changed variable must
  activate its constraints (the thesis's ``propagate`` message);
* ``("activate-constraint", constraint, variable)`` — one constraint
  reacts to one changed argument (``propagateVariable:``);
* ``("drain-agendas",)`` — pop scheduled entries off the fixed-priority
  agendas until all are empty, letting each inference's wavefront finish
  before the next entry pops;
* ``("repropagate", constraint, remaining)`` — re-assert an edited
  constraint's arguments in precedence order (Fig. 4.13), one argument
  per dispatch with an agenda drain in between.

:meth:`PropagationContext._drain` pops events in **LIFO** order; events
posted while dispatching one event are pushed so the first-posted pops
first.  The result is exactly the depth-first activation order of the
recursive engine — same visited order, same violation points, same
counter values — but depth is limited by heap memory, not the C stack,
the interpreter's recursion limit is never touched, and all stats
counting, tracing and observability hooks (``context.observer``, see
:mod:`repro.obs`) for constraint activity happen at one dispatch site.

The Smalltalk implementation keeps its bookkeeping in globals
(``VisitedConstraintsAndVariables``, the agenda scheduler, the ``CPSwitch``
disable flag).  Here the equivalent state lives in an explicit
:class:`PropagationContext`; variables and constraints belong to a context
and all propagation rounds for a network run inside it.  A module-level
default context preserves the convenience of the global style for small
programs and tests.

Key behaviours reproduced:

* **One-value-change rule** (section 4.2.2): no variable may change value
  twice in one round; cyclic networks therefore terminate with a violation
  rather than looping (Fig. 4.9).  The relaxed N-change rule suggested in
  section 9.2.3 is available via ``max_changes_per_variable``.
* **Violation handling** (section 4.2.3 / 5.2): on violation the network is
  restored to its pre-round state, the context's handler is notified, and
  the assignment returns ``False`` — the validity feedback design tools use.
* **Propagation disable switch** (section 5.3): with ``enabled = False``
  assignments store values directly and constraint editing performs no
  local propagation.
* **Tentative probing** (Fig. 8.2 ``canBeSetTo:``): propagate a trial value
  and restore unconditionally, reporting only whether a violation occurred.
"""

from __future__ import annotations

import threading
from collections import deque
from contextlib import contextmanager
from time import perf_counter
from typing import Any, Deque, Dict, Iterator, List, Optional, Tuple

from .agenda import AgendaScheduler, DEFAULT_PRIORITY_ORDER
from .justification import TENTATIVE, USER, Justification
from .violations import (
    BudgetExceeded,
    PropagationViolation,
    ViolationHandler,
    ViolationRecord,
    WarningHandler,
)


class PropagationStats:
    """Counters describing propagation activity.

    These are the raw material for the efficiency experiments: agenda
    deferral (E2) is measured by ``inference_runs``, hierarchical sharing
    (E6) by ``propagated_assignments``, and the complexity claim (E16) by
    ``constraint_activations``.
    """

    __slots__ = ("rounds", "external_assignments", "propagated_assignments",
                 "ignored_propagations", "constraint_activations",
                 "inference_runs", "scheduled_entries", "violations",
                 "satisfaction_checks", "budget_aborts",
                 "coalesced_assignments")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.rounds = 0
        self.external_assignments = 0
        self.propagated_assignments = 0
        self.ignored_propagations = 0
        self.constraint_activations = 0
        self.inference_runs = 0
        self.scheduled_entries = 0
        self.violations = 0
        self.satisfaction_checks = 0
        self.budget_aborts = 0
        self.coalesced_assignments = 0

    def snapshot(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:
        body = ", ".join(f"{k}={v}" for k, v in self.snapshot().items())
        return f"PropagationStats({body})"


_UNLIMITED = float("inf")


class RoundBudget:
    """Per-round watchdog limits for the wavefront loop.

    A budget bounds one propagation round by dispatched queue events
    (``max_steps``) and/or wall-clock time (``max_seconds``).  Crossing
    either limit raises :class:`~repro.core.violations.BudgetExceeded`,
    which aborts the round through the ordinary violation rollback — the
    network comes back byte-identical to its pre-round state and the
    assignment reports ``False``.

    Step budgets are **deterministic**: the same round overruns at the
    same event on every machine, so durable sessions journal them and
    replay reproduces the abort exactly.  Wall-time budgets are a
    liveness backstop (a slow machine may abort a round a fast one
    completes) — use them for interactive safety, not for anything that
    must replay bit-identically.
    """

    __slots__ = ("max_steps", "max_seconds")

    def __init__(self, max_steps: Optional[int] = None,
                 max_seconds: Optional[float] = None) -> None:
        if max_steps is None and max_seconds is None:
            raise ValueError("a RoundBudget needs max_steps and/or "
                             "max_seconds")
        if max_steps is not None and max_steps < 1:
            raise ValueError(f"max_steps must be positive, not {max_steps}")
        if max_seconds is not None and max_seconds <= 0:
            raise ValueError(f"max_seconds must be positive, "
                             f"not {max_seconds}")
        self.max_steps = max_steps if max_steps is not None else _UNLIMITED
        self.max_seconds = max_seconds

    def __repr__(self) -> str:
        steps = None if self.max_steps == _UNLIMITED else self.max_steps
        return f"RoundBudget(max_steps={steps}, max_seconds={self.max_seconds})"


#: Queue event kinds (first element of each event tuple).
_VARIABLE_CHANGED = "variable-changed"
_ACTIVATE = "activate-constraint"
_DRAIN_AGENDAS = "drain-agendas"
_REPROPAGATE = "repropagate"


class _Round:
    """Bookkeeping for one propagation round.

    ``visited`` maps each touched variable to its pre-round
    ``(last_set_by, value)`` so the network can be restored (the global
    dictionary of section 4.2.2); ``changes`` counts value changes per
    variable for the one-value-change rule; ``visited_constraints`` records
    activation order for the final satisfaction sweep.

    ``queue`` is the round's explicit work deque: pending propagation
    events, drained LIFO by :meth:`PropagationContext._drain` so that the
    wavefront visits the network in the thesis's depth-first activation
    order.  ``draining`` flags whether the drain loop is currently running
    (events posted while it runs are picked up by it; events posted
    outside — e.g. by a tool assigning during the satisfaction sweep — are
    drained on the spot).  ``dispatch_mark`` is the queue length at the
    start of the event dispatch currently executing; events above the mark
    are the current dispatch's own postings.
    """

    __slots__ = ("visited", "changes", "visited_constraints",
                 "_constraint_ids", "max_changes", "silent",
                 "_tick", "set_ticks", "queue", "draining", "dispatch_mark",
                 "budget", "steps", "deadline", "started", "visited_floor",
                 "stats", "scheduler")

    def __init__(self, max_changes: int, silent: bool = False) -> None:
        self.visited: Dict[Any, Tuple[Justification, Any]] = {}
        self.changes: Dict[Any, int] = {}
        self.visited_constraints: List[Any] = []
        self._constraint_ids: set = set()
        self.max_changes = max_changes
        self.silent = silent
        self._tick = 0
        self.set_ticks: Dict[Any, int] = {}
        self.queue: Deque[Tuple[Any, ...]] = deque()
        self.draining = False
        self.dispatch_mark = 0
        #: Visited-count baseline of the current batch entry; the
        #: livelock cap in :meth:`may_recompute` measures round size
        #: from here so each entry of a batched round gets the same
        #: headroom a standalone round would.
        self.visited_floor = 0
        # Watchdog state (see RoundBudget): dispatched-event count and,
        # for wall-time budgets, the perf_counter deadline.
        self.budget: Optional[RoundBudget] = None
        self.steps = 0
        self.deadline: Optional[float] = None
        self.started = 0.0
        #: Where this round's activity counts and agenda entries go.
        #: Context rounds alias the context's own stats/scheduler (set by
        #: ``_round_scope``); island rounds carry private ones so several
        #: rounds can drain concurrently and merge their effects at the
        #: end (see ``_run_island_rounds``).
        self.stats: Optional[PropagationStats] = None
        self.scheduler: Optional[AgendaScheduler] = None

    def record_visit(self, variable: Any) -> None:
        if variable not in self.visited:
            self.visited[variable] = (variable.last_set_by,
                                      variable.raw_value)

    def was_visited(self, variable: Any) -> bool:
        return variable in self.visited

    def times_changed(self, variable: Any) -> int:
        return self.changes.get(variable, 0)

    def note_change(self, variable: Any) -> None:
        self.changes[variable] = self.changes.get(variable, 0) + 1
        self._tick += 1
        self.set_ticks[variable] = self._tick

    def begin_entry(self) -> None:
        """Reset per-entry bookkeeping between batch entries.

        A batched round applies its entries sequentially inside one
        rollback/budget/sweep scope.  Each entry starts with the same
        change-counting state a standalone round would: the one-value-
        change rule, the transient-update ticks and the livelock cap all
        reset, while ``visited`` (pre-states for the atomic rollback) and
        ``visited_constraints`` (the single final sweep) accumulate.
        """
        self.changes.clear()
        self.set_ticks.clear()
        self._tick = 0
        self.visited_floor = len(self.visited)

    def may_recompute(self, variable: Any, constraint: Any) -> bool:
        """May ``constraint`` update a result it already set this round?

        Reconvergent fan-out support (thesis section 9.2.3 discusses the
        limitation; this is the dependency-aware refinement it points to):
        a constraint that owns a variable's current value may recompute it
        when one of its other arguments changed *after* the value was
        computed — a legitimate transient update, not a cycle.  A cap tied
        to the round size bounds divergent cyclic networks.
        """
        if variable.source_constraint() is not constraint:
            return False
        if self.times_changed(variable) >= \
                len(self.visited) - self.visited_floor + 2:
            return False  # livelock guard for divergent cycles
        computed_at = self.set_ticks.get(variable, 0)
        return any(self.set_ticks.get(argument, 0) > computed_at
                   for argument in constraint.arguments
                   if argument is not variable)

    def note_constraint(self, constraint: Any) -> None:
        key = id(constraint)
        if key not in self._constraint_ids:
            self._constraint_ids.add(key)
            self.visited_constraints.append(constraint)


class PropagationContext:
    """Propagation state and event-queue wavefront engine for one
    family of constraint networks.

    Parameters
    ----------
    priority_order:
        Agenda names, highest priority first (section 4.2.1 / 5.1.2).
    max_changes_per_variable:
        The N of the (relaxed) one-value-change rule; 1 reproduces the
        thesis's rule exactly.
    handler:
        Violation handler invoked after state restoration; defaults to a
        silent :class:`~repro.core.violations.WarningHandler`.
    """

    def __init__(self, *,
                 priority_order: Tuple[str, ...] = DEFAULT_PRIORITY_ORDER,
                 max_changes_per_variable: int = 1,
                 handler: Optional[ViolationHandler] = None) -> None:
        self.enabled = True
        self.scheduler = AgendaScheduler(priority_order)
        self.max_changes_per_variable = max_changes_per_variable
        self.handler = handler if handler is not None else WarningHandler()
        self.stats = PropagationStats()
        #: Optional fine-grained enable/disable control (section 9.3);
        #: installed by :class:`repro.core.control.PropagationControl`.
        self.control = None
        #: Optional :class:`repro.core.trace.PropagationTrace` recorder.
        self.tracer = None
        #: Optional :class:`repro.obs.observer.Observer` hub feeding the
        #: metrics registry, span recorder and hot-constraint profiler.
        #: Costs one attribute check per dispatch while ``None``.
        self.observer = None
        #: Optional mutation recorder (``repro.session``): an object with a
        #: ``record_assign(variable, value, justification)`` method called
        #: *before* an external assignment mutates the network — the
        #: write-ahead capture point for durable sessions.  Costs one
        #: attribute check per external assignment while ``None``.
        self.recorder = None
        #: Optional :class:`repro.core.plancache.PlanCache` — the hot-round
        #: trace specializer.  Consulted by :meth:`assign` before opening a
        #: general round; costs one attribute check while ``None``.
        self.plan_cache = None
        #: Monotonic counter of structural network changes (constraint
        #: links, implicit hierarchy topology, control state).  Plan-cache
        #: keys embed it, so any edit invalidates stale plans.
        self.topology_epoch = 0
        #: Optional :class:`RoundBudget` — the propagation watchdog.
        #: While installed, every round is bounded in dispatched events
        #: and/or wall time and aborts (with full rollback) via
        #: :class:`~repro.core.violations.BudgetExceeded` when it
        #: overruns.  Costs one attribute check per round plus one
        #: pointer compare per dispatched event while ``None``.
        self.round_budget: Optional[RoundBudget] = None
        #: Active plan-cache trace recording, or ``None``.  Fed by
        #: :meth:`propagated_assignment`; one attribute check per
        #: propagated assignment while ``None``.
        self._plan_recording = None
        #: Optional round-effect sink (``repro.spaces``): an object with
        #: ``absorb_visited(visited)`` called after every non-silent
        #: round with the round's pre-state map, ``round_rolled_back()``
        #: called when a non-silent round restores, and
        #: ``absorb_undo(undo)`` called by plan-cache replays.  Costs
        #: one attribute check per round while ``None``.
        self.shadow = None
        #: Optional :class:`repro.core.islands.IslandIndex` — the
        #: incrementally-maintained connected-component partition of the
        #: constraint graph.  Maintained from the structural choke points
        #: (:meth:`note_structure_link` / :meth:`note_structure_unlink`);
        #: costs one attribute check per structural edit while ``None``.
        self.islands = None
        #: Optional island executor (``repro.core.islands``): when both
        #: an index and an executor are installed, ``assign_many``
        #: batches spanning several islands drain each island as its own
        #: round — concurrently for parallel executors — with effects
        #: merged so results are byte-identical to the fused round.
        self.island_executor = None
        #: Thread-local holding the island round being drained by the
        #: current thread (created on first island-structured batch).
        #: ``current_round`` checks it before ``_round`` so constraints
        #: running inside an island wavefront see their own round.
        self._island_rounds: Optional[threading.local] = None
        # Epoch-coalescing state for structural_operation(): while the
        # hold count is positive, bump_topology_epoch defers (at most one
        # pending bump), so a multi-link edit costs one epoch.
        self._epoch_hold = 0
        self._epoch_pending = False
        self._round: Optional[_Round] = None

    def _trace(self, kind, subject, detail: str = "") -> None:
        tracer = self.tracer
        if tracer is not None:
            tracer.record(kind, subject, detail)

    def _allows(self, constraint: Any) -> bool:
        control = self.control
        return control is None or control.allows(constraint)

    def bump_topology_epoch(self) -> None:
        """Note a structural network change.

        Called from every choke point that alters which constraints a
        round can activate: ``Variable.add_constraint`` /
        ``remove_constraint`` (and through them all constraint editing),
        implicit hierarchy registration, ``PropagationControl`` mutations
        and session undo/redo.  Invalidates every cached propagation plan.

        Inside a :meth:`structural_operation` scope the bump is deferred
        and coalesced: one logical edit (e.g. attaching a three-variable
        constraint, which links three times) advances the epoch exactly
        once, instead of once per link.
        """
        if self._epoch_hold:
            self._epoch_pending = True
            return
        self.topology_epoch += 1
        cache = self.plan_cache
        if cache is not None:
            cache.note_topology_change()

    @contextmanager
    def structural_operation(self) -> Iterator[None]:
        """Scope one logical structural edit: epoch bumps inside coalesce
        to a single bump at exit.  Nests (the outermost scope bumps);
        island-index maintenance is unaffected — links and unlinks keep
        flowing to the index eagerly."""
        self._epoch_hold += 1
        try:
            yield
        finally:
            self._epoch_hold -= 1
            if not self._epoch_hold and self._epoch_pending:
                self._epoch_pending = False
                self.bump_topology_epoch()

    def note_structure_link(self, variable: Any, constraint: Any) -> None:
        """Structural choke point: ``variable`` gained ``constraint``.

        Feeds the island index (eager merge) and bumps the topology
        epoch.  Every path that grows the constraint graph — explicit
        ``Variable.add_constraint`` and implicit hierarchy registration —
        funnels through here.
        """
        islands = self.islands
        if islands is not None:
            islands.note_link(variable, constraint)
        self.bump_topology_epoch()

    def note_structure_unlink(self, variable: Any, constraint: Any) -> None:
        """Structural choke point: ``variable`` lost ``constraint``.

        Feeds the island index (lazy split — the touched component is
        rebuilt on the next partition query) and bumps the topology
        epoch.
        """
        islands = self.islands
        if islands is not None:
            islands.note_unlink(variable, constraint)
        self.bump_topology_epoch()

    # -- round management -------------------------------------------------

    @property
    def current_round(self) -> Optional[_Round]:
        """The round the calling thread is propagating in, or ``None``.

        An island round being drained by this thread takes precedence
        over the context-wide round — constraints firing inside an
        island wavefront must join *their* island's bookkeeping.
        """
        local = self._island_rounds
        if local is not None:
            rnd = getattr(local, "round", None)
            if rnd is not None:
                return rnd
        return self._round

    @property
    def in_round(self) -> bool:
        return self.current_round is not None

    def require_round(self) -> _Round:
        rnd = self.current_round
        if rnd is None:
            raise RuntimeError("propagated assignment outside a propagation round")
        return rnd

    @contextmanager
    def _round_scope(self, silent: bool = False) -> Iterator[_Round]:
        if self._round is not None:
            raise RuntimeError("propagation rounds do not nest")
        rnd = _Round(self.max_changes_per_variable, silent=silent)
        rnd.stats = self.stats
        rnd.scheduler = self.scheduler
        budget = self.round_budget
        if budget is not None:
            rnd.budget = budget
            rnd.started = perf_counter()
            if budget.max_seconds is not None:
                rnd.deadline = rnd.started + budget.max_seconds
        self._round = rnd
        self.stats.rounds += 1
        try:
            yield rnd
        finally:
            self._round = None
            self.scheduler.clear()
            shadow = self.shadow
            if shadow is not None and not silent and rnd.visited:
                shadow.absorb_visited(rnd.visited)

    @contextmanager
    def propagation_disabled(self) -> Iterator[None]:
        """Temporarily set the ``CPSwitch`` off (section 5.3)."""
        previous = self.enabled
        self.enabled = False
        try:
            yield
        finally:
            self.enabled = previous

    # -- assignment entry points ------------------------------------------

    def assign(self, variable: Any, value: Any,
               justification: Justification = USER) -> bool:
        """External value assignment (``setTo:justification:``).

        Returns True when the assignment and all triggered propagation
        completed without violation; False when a violation occurred (the
        network is then restored to its prior state).
        """
        recorder = self.recorder
        if not self.enabled:
            if recorder is not None:
                recorder.record_assign(variable, value, justification)
            variable._store(value, justification)
            return True
        if self.current_round is not None:
            # A tool assigning a value while propagation is running (e.g.
            # a recalculation triggered mid-round) joins the active round.
            # Not recorded: the round itself was opened by a recorded
            # mutation, so replaying that mutation regenerates this one.
            self._in_round_external_assignment(variable, value, justification)
            return True
        if recorder is not None:
            # Write-ahead capture: the intent is journaled before any state
            # changes, so a crash between journaling and mutation replays
            # the assignment rather than losing it.
            recorder.record_assign(variable, value, justification)
        cache = self.plan_cache
        if cache is not None and self.tracer is None:
            # Hot-round fast path: a cached plan replays the round under
            # guards and returns True; None means "no plan for this key —
            # run the general round" (with a trace recording installed
            # while the key warms up).  Consulted after the recorder so
            # journaling is identical with the cache on or off, and before
            # the stats increment so the recorded stats delta covers it.
            handled = cache.on_external_assign(variable, value, justification)
            if handled is not None:
                return handled
        self.stats.external_assignments += 1
        if self.tracer is not None:
            self._trace("round-start", variable, f"set to {value!r}")
        observer = self.observer
        if observer is not None:
            observer.round_started("assign", variable)
        outcome = "error"
        rnd = None
        try:
            with self._round_scope() as rnd:
                rnd.record_visit(variable)
                variable._store(value, justification)
                rnd.note_change(variable)
                queue = rnd.queue
                queue.append((_DRAIN_AGENDAS,))
                queue.append((_VARIABLE_CHANGED, variable, None))
                try:
                    variable.on_stored_by_assignment()
                    self._drain(rnd)
                    self.check_visited_constraints()
                except PropagationViolation as signal:
                    self._abort_round(rnd, signal)
                    outcome = signal.kind
                    return False
                except BaseException:
                    # A defective constraint implementation must not leave
                    # the network half-updated: restore, then re-raise.
                    self._restore(rnd)
                    if observer is not None:
                        observer.restored(len(rnd.visited), "error")
                    raise
            outcome = "ok"
        finally:
            recording = self._plan_recording
            if recording is not None:
                self._plan_recording = None
                recording.cache.finish_recording(recording, rnd,
                                                 outcome == "ok")
            if observer is not None:
                observer.round_finished(outcome)
        self._trace("round-end", variable)
        return True

    def _in_round_external_assignment(self, variable: Any, value: Any,
                                      justification: Justification) -> None:
        rnd = self.require_round()
        recording = self._plan_recording
        if recording is not None:
            # A tool assigned mid-round: the round's shape depends on
            # state a straight-line plan cannot guard.  Never cache it.
            recording.poison("in-round external assignment")
        rnd.stats.external_assignments += 1
        rnd.record_visit(variable)
        variable._store(value, justification)
        rnd.note_change(variable)
        watermark = len(rnd.queue)
        rnd.queue.append((_VARIABLE_CHANGED, variable, None))
        variable.on_stored_by_assignment()
        if not rnd.draining:
            # Assignment from outside the wavefront loop (e.g. a property
            # recalculation triggered by the satisfaction sweep): spread
            # on the spot.  Agenda entries it schedules stay scheduled,
            # for an enclosing drain to pick up.
            self._drain(rnd, watermark)

    def assign_many(self, assignments: Any,
                    justification: Justification = USER) -> bool:
        """Apply a batch of external assignments in **one** round.

        ``assignments`` is an iterable of ``(variable, value)`` pairs or
        ``(variable, value, justification)`` triples; pairs take the
        call's ``justification``.  The batch runs inside a single
        :class:`_Round`: entries are seeded into the event queue in
        order, each entry's wavefront drains before the next entry
        stores (per-entry change bookkeeping resets, so values and
        justifications match applying the entries one-by-one), and one
        satisfaction sweep runs over every visited constraint at the
        end.  A violation anywhere rolls **all** entries back atomically
        and returns False; an installed :class:`RoundBudget` covers the
        whole batch.

        Redundant same-variable entries are coalesced before seeding
        (last write wins, taking the last occurrence's position), and
        counted in ``stats.coalesced_assignments``.
        """
        entries: List[Tuple[Any, Any, Justification]] = []
        for item in assignments:
            if len(item) == 2:
                variable, value = item
                entries.append((variable, value, justification))
            else:
                variable, value, just = item
                entries.append((variable, value, just))
        if not entries:
            return True
        recorder = self.recorder
        if not self.enabled:
            if recorder is not None:
                recorder.record_batch(entries)
            for variable, value, just in entries:
                variable._store(value, just)
            return True
        if self.current_round is not None:
            # Joining an active round, like ``assign`` mid-round: each
            # entry spreads on the spot; no batch bookkeeping applies.
            for variable, value, just in entries:
                self._in_round_external_assignment(variable, value, just)
            return True
        if recorder is not None:
            # Write-ahead capture of the *requested* batch: replaying it
            # re-coalesces deterministically, so stats (and therefore
            # fingerprints) match the live run.
            recorder.record_batch(entries)
        # Last-write-wins coalescing: a later entry for the same variable
        # supersedes an earlier one and keeps the later position, exactly
        # as sequential application would leave the later value standing.
        slots: Dict[int, int] = {}
        merged: List[Optional[Tuple[Any, Any, Justification]]] = []
        for entry in entries:
            key = id(entry[0])
            previous = slots.get(key)
            if previous is not None:
                merged[previous] = None
            slots[key] = len(merged)
            merged.append(entry)
        if len(slots) != len(merged):
            seeds = [entry for entry in merged if entry is not None]
        else:
            seeds = entries
        dropped = len(entries) - len(seeds)
        if self.island_executor is not None and self.islands is not None \
                and len(seeds) > 1 and self.tracer is None \
                and self.shadow is None and self.round_budget is None \
                and self._plan_recording is None:
            # Island-structured fast path: a batch whose entries span
            # several islands drains each island as an independent round
            # (concurrently, with a parallel executor).  Consulted after
            # the recorder — journal bytes are identical islands on or
            # off — and gated off whenever round-wide machinery (tracer,
            # space shadow, budget, an in-flight trace recording) needs
            # the single fused round.
            groups = self.islands.group_entries(seeds)
            if len(groups) > 1:
                return self._run_island_rounds(groups, seeds, dropped)
        cache = self.plan_cache
        if cache is not None and self.tracer is None:
            # Hot-batch fast path: a promoted plan chain replays the whole
            # batch under guards.  Consulted after the recorder (identical
            # journaling cache on or off) and before the stats increments
            # (the recorded stats delta covers them).
            handled = cache.on_external_batch(seeds, dropped)
            if handled is not None:
                return handled
        return self._run_batch_round(seeds, dropped)

    def _run_batch_round(self, entries: List[Tuple[Any, Any, Justification]],
                         dropped: int) -> bool:
        """The general batched round: seed, drain, sweep once."""
        stats = self.stats
        stats.coalesced_assignments += dropped
        stats.external_assignments += len(entries)
        first = entries[0][0]
        if self.tracer is not None:
            self._trace("round-start", first,
                        f"batch of {len(entries)} assignment(s)")
        observer = self.observer
        if observer is not None:
            batch_hook = getattr(observer, "batch_submitted", None)
            if batch_hook is not None:
                batch_hook(len(entries) + dropped, dropped)
            observer.round_started("batch", first)
        outcome = "error"
        rnd = None
        try:
            with self._round_scope() as rnd:
                try:
                    queue = rnd.queue
                    recording = self._plan_recording
                    for variable, value, just in entries:
                        rnd.begin_entry()
                        if recording is not None:
                            recording.note_entry(variable, value)
                        rnd.record_visit(variable)
                        variable._store(value, just)
                        rnd.note_change(variable)
                        queue.append((_DRAIN_AGENDAS,))
                        queue.append((_VARIABLE_CHANGED, variable, None))
                        variable.on_stored_by_assignment()
                        self._drain(rnd)
                        # A poisoning in-round assignment may have
                        # replaced the recording reference; re-read it.
                        recording = self._plan_recording
                    self.check_visited_constraints()
                except PropagationViolation as signal:
                    self._abort_round(rnd, signal)
                    outcome = signal.kind
                    return False
                except BaseException:
                    self._restore(rnd)
                    if observer is not None:
                        observer.restored(len(rnd.visited), "error")
                    raise
            outcome = "ok"
        finally:
            recording = self._plan_recording
            if recording is not None:
                self._plan_recording = None
                recording.cache.finish_recording(recording, rnd,
                                                 outcome == "ok")
            if observer is not None:
                observer.round_finished(outcome)
        self._trace("round-end", first)
        return True

    # -- island-structured batches (repro.core.islands) ---------------------

    def _run_island_rounds(self, groups: List[List[Tuple[Any, Any,
                                                         Justification]]],
                           entries: List[Tuple[Any, Any, Justification]],
                           dropped: int) -> bool:
        """Drain a multi-island batch as independent per-island rounds.

        Optimistic execution with an authoritative serial fallback: each
        island's slice runs as a private :class:`_Round` (own stats, own
        agenda scheduler, own undo map) — concurrently when the executor
        is parallel — and only if **every** island completes cleanly and
        the topology stayed put are the island effects committed: local
        stats merge commutatively into the context's, the parent applies
        the round-level counters (``rounds``, ``external_assignments``,
        ``coalesced_assignments``) exactly once, and promoted island
        chains' stats deltas apply.  On any violation, error or mid-round
        structural edit, *all* island effects are rolled back quietly (no
        handler, no violation record) and the whole batch reruns through
        :meth:`_run_batch_round` — the fused round is the authority for
        violation handling, so handler invocations, violation records and
        every counter are byte-identical to running with islands off.

        One journaled batch frame covers either path (the recorder ran in
        :meth:`assign_many` before this branch), and with an observer
        installed the islands drain serially in the calling thread (the
        metrics hub is not thread-safe) wrapped in per-island spans.
        """
        index = self.islands
        cache = self.plan_cache
        observer = self.observer
        executor = self.island_executor
        epoch0 = self.topology_epoch
        first = entries[0][0]
        island_hook = None
        if observer is not None:
            batch_hook = getattr(observer, "batch_submitted", None)
            if batch_hook is not None:
                batch_hook(len(entries) + dropped, dropped)
            observer.round_started("batch", first)
            island_hook = getattr(observer, "island_event", None)
            if island_hook is not None:
                island_hook("batches")
                island_hook("groups", len(groups))
        local = self._island_rounds
        if local is None:
            local = self._island_rounds = threading.local()
        replayed: List[Tuple[List[Tuple[Any, Any, Any]], Any]] = []
        outcomes: List[Tuple[str, _Round, Any]] = []
        recorded: Optional[Tuple[Any, _Round]] = None
        index.freeze()
        try:
            pending = []  # (group, key_state) for general island rounds
            for group in groups:
                state = None
                if cache is not None:
                    state = cache.island_chain_state(group)
                    if state is not None and state.plan is not None:
                        replay = cache.replay_island(state, group)
                        if replay is not None:
                            replayed.append(replay)
                            continue
                        if state.plan is not None:
                            state = None  # foreign plan on the key
                pending.append((group, state))
            # At most one island per batch records a trace (the recording
            # slot is context-global), drained inline in this thread
            # before anything reaches the executor.
            recording = None
            rest = []
            for group, state in pending:
                if recording is None and state is not None \
                        and state.plan is None:
                    stats = PropagationStats()
                    recording = cache.begin_island_recording(state, stats)
                    if recording is not None:
                        outcome = self._island_task(group, local, stats,
                                                    recording)
                        outcomes.append(outcome)
                        recorded = (recording, outcome[1])
                        continue
                rest.append(group)
            failed = any(status != "ok" for status, _rnd, _err in outcomes) \
                or self.topology_epoch != epoch0
            if not failed and rest:
                if observer is not None or len(rest) == 1 \
                        or not getattr(executor, "parallel", False):
                    span_hook = None if observer is None \
                        else getattr(observer, "island_span", None)
                    for group in rest:
                        stats = PropagationStats()
                        if span_hook is not None:
                            with span_hook("round", entries=len(group)):
                                outcome = self._island_task(group, local,
                                                            stats)
                        else:
                            outcome = self._island_task(group, local, stats)
                        outcomes.append(outcome)
                else:
                    tasks = []
                    for group in rest:
                        stats = PropagationStats()
                        tasks.append(_island_thunk(self, group, local, stats))
                    outcomes.extend(executor.run(tasks))
                failed = any(status != "ok"
                             for status, _rnd, _err in outcomes) \
                    or self.topology_epoch != epoch0
            if failed:
                # Quiet whole-batch rollback: restore every island round's
                # pre-states and reverse every replayed chain, discard the
                # island-local stats, then rerun the batch fused — the
                # authoritative path for handlers and violation records.
                for _status, rnd, _err in reversed(outcomes):
                    self._restore(rnd)
                for undo, _plan in reversed(replayed):
                    for var, just, val in reversed(undo):
                        var._store(val, just)
                if recorded is not None and cache is not None:
                    cache.finish_recording(recorded[0], recorded[1], False)
                if island_hook is not None:
                    island_hook("fallbacks")
                if observer is not None:
                    observer.round_finished("island-fallback")
                return self._run_batch_round(entries, dropped)
            # Commit: one round frame, island effects merged.
            stats = self.stats
            stats.rounds += 1
            stats.coalesced_assignments += dropped
            stats.external_assignments += len(entries)
            for _status, rnd, _err in outcomes:
                island_stats = rnd.stats
                for name in PropagationStats.__slots__:
                    setattr(stats, name,
                            getattr(stats, name) + getattr(island_stats,
                                                           name))
            for _undo, plan in replayed:
                for name, delta in plan.stats_delta:
                    setattr(stats, name, getattr(stats, name) + delta)
            if recorded is not None and cache is not None:
                cache.finish_recording(recorded[0], recorded[1], True)
            if island_hook is not None:
                if outcomes:
                    island_hook("rounds", len(outcomes))
                if replayed:
                    island_hook("replays", len(replayed))
            if observer is not None:
                observer.round_finished("ok")
            return True
        finally:
            index.thaw()

    def _island_task(self, group: List[Tuple[Any, Any, Justification]],
                     local: threading.local, stats: PropagationStats,
                     recording: Any = None) -> Tuple[str, _Round, Any]:
        """Drain one island's slice of a batch as a private round.

        Runs in the calling thread or an executor worker.  All effects
        are round-local: private stats, a private agenda scheduler, and
        the round itself bound thread-locally so constraints firing
        inside the wavefront find *their* island's round.  The round is
        **not** restored on violation or error — the caller owns the
        whole-batch rollback — and no handler or observer violation
        event fires here (the fused fallback rerun is authoritative).
        """
        rnd = _Round(self.max_changes_per_variable)
        rnd.stats = stats
        scheduler = AgendaScheduler(self.scheduler.priority_order)
        scheduler.observer = self.scheduler.observer
        rnd.scheduler = scheduler
        installed = recording is not None
        if installed:
            self._plan_recording = recording
        local.round = rnd
        try:
            queue = rnd.queue
            for variable, value, just in group:
                rnd.begin_entry()
                if recording is not None:
                    recording.note_entry(variable, value)
                rnd.record_visit(variable)
                variable._store(value, just)
                rnd.note_change(variable)
                queue.append((_DRAIN_AGENDAS,))
                queue.append((_VARIABLE_CHANGED, variable, None))
                variable.on_stored_by_assignment()
                self._drain(rnd)
                if recording is not None:
                    # A poisoning in-round assignment may have replaced
                    # the recording reference; re-read it (as the fused
                    # batched round does).
                    recording = self._plan_recording
            self.check_visited_constraints()
            return ("ok", rnd, None)
        except PropagationViolation as signal:
            return ("violation", rnd, signal)
        except BaseException as error:  # noqa: BLE001 - fallback reruns it
            return ("error", rnd, error)
        finally:
            local.round = None
            if installed:
                self._plan_recording = None

    def probe(self, variable: Any, value: Any,
              justification: Justification = TENTATIVE) -> bool:
        """Tentatively assign, propagate, then restore (Fig. 8.2).

        Returns True when the value would be accepted without violation.
        No violation handler runs; the network is always restored.

        With propagation disabled (``enabled = False``) a probe is a
        **no-op accept**: the trial value is neither stored nor checked —
        exactly as external assignments skip checking while the CPSwitch
        is off — and the method returns True.
        """
        if not self.enabled:
            return True
        if self.current_round is not None:
            raise RuntimeError("cannot probe while propagation is running")
        observer = self.observer
        if observer is not None:
            observer.round_started("probe", variable)
        ok = True
        outcome = "error"
        try:
            with self._round_scope(silent=True) as rnd:
                rnd.record_visit(variable)
                variable._store(value, justification)
                rnd.note_change(variable)
                queue = rnd.queue
                queue.append((_DRAIN_AGENDAS,))
                queue.append((_VARIABLE_CHANGED, variable, None))
                try:
                    self._drain(rnd)
                    self.check_visited_constraints()
                except PropagationViolation:
                    ok = False
                finally:
                    self._restore(rnd)
                    if observer is not None:
                        observer.restored(len(rnd.visited), "probe")
            outcome = "ok" if ok else "violation"
        finally:
            if observer is not None:
                observer.round_finished(outcome)
        return ok

    def repropagate_constraint(self, constraint: Any) -> bool:
        """Re-initialise a constraint's variables after network editing.

        Implements ``reinitializeVariables`` / ``rePropagate`` (Fig. 4.13):
        the constraint's arguments, ordered user-specified first, then
        constraint-dependent, then other independents, each assert and
        propagate their current value through the edited constraint.
        """
        if not self.enabled:
            return True
        if self.current_round is not None:
            # Constraint created while a round runs (e.g. by a compiler
            # invoked from propagation): its repropagation joins the
            # active round's queue.
            rnd = self.require_round()
            recording = self._plan_recording
            if recording is not None:
                recording.poison("in-round constraint repropagation")
            watermark = len(rnd.queue)
            rnd.queue.append((_REPROPAGATE, constraint, None))
            if not rnd.draining:
                self._drain(rnd, watermark)
            return True
        observer = self.observer
        if observer is not None:
            observer.round_started("repropagate", constraint)
        outcome = "error"
        try:
            with self._round_scope() as rnd:
                rnd.queue.append((_REPROPAGATE, constraint, None))
                try:
                    self._drain(rnd)
                    self.check_visited_constraints()
                except PropagationViolation as signal:
                    self._abort_round(rnd, signal)
                    outcome = signal.kind
                    return False
                except BaseException:
                    self._restore(rnd)
                    if observer is not None:
                        observer.restored(len(rnd.visited), "error")
                    raise
            outcome = "ok"
        finally:
            if observer is not None:
                observer.round_finished(outcome)
        return True

    # -- the wavefront loop ------------------------------------------------

    def _drain(self, rnd: _Round, watermark: int = 0) -> None:
        """Dispatch queued events (LIFO) until ``len(queue) == watermark``.

        This loop is the whole propagation process: the single site where
        constraints are activated, scheduled inference runs and stats and
        traces for constraint activity are recorded.  LIFO order, with
        each dispatch posting its events first-posted-on-top, reproduces
        the recursive engine's depth-first activation order exactly —
        with constant interpreter stack depth however deep the network.
        """
        queue = rnd.queue
        stats = rnd.stats
        scheduler = rnd.scheduler
        observer = self.observer
        budget = rnd.budget
        previous_draining = rnd.draining
        previous_mark = rnd.dispatch_mark
        rnd.draining = True
        try:
            while len(queue) > watermark:
                if budget is not None:
                    # The watchdog: count every dispatched event (a
                    # deterministic measure of propagation work) and
                    # sample the clock every 32 events for wall-time
                    # budgets.  Both overruns abort through the normal
                    # violation rollback.
                    steps = rnd.steps = rnd.steps + 1
                    if steps > budget.max_steps:
                        raise BudgetExceeded(
                            steps=steps,
                            elapsed=perf_counter() - rnd.started,
                            reason=(f"propagation exceeded its step "
                                    f"budget ({int(budget.max_steps)} "
                                    f"events)"))
                    if rnd.deadline is not None and not steps & 31 \
                            and perf_counter() > rnd.deadline:
                        raise BudgetExceeded(
                            steps=steps,
                            elapsed=perf_counter() - rnd.started,
                            reason=(f"propagation exceeded its wall-time "
                                    f"budget ({budget.max_seconds}s)"))
                event = queue.pop()
                rnd.dispatch_mark = len(queue)
                kind = event[0]
                if kind is _ACTIVATE:
                    constraint, variable = event[1], event[2]
                    rnd.note_constraint(constraint)
                    stats.constraint_activations += 1
                    if observer is None:
                        constraint.propagate_variable(variable)
                    else:
                        t0 = perf_counter()
                        try:
                            constraint.propagate_variable(variable)
                        finally:
                            observer.activation(constraint, variable, t0,
                                                perf_counter(), len(queue))
                elif kind is _VARIABLE_CHANGED:
                    variable, exclude = event[1], event[2]
                    allows = self._allows
                    # reversed: the first constraint pops (activates) first
                    for constraint in reversed(variable.all_constraints()):
                        if constraint is exclude or not allows(constraint):
                            continue
                        queue.append((_ACTIVATE, constraint, variable))
                elif kind is _DRAIN_AGENDAS:
                    entry = scheduler.remove_highest_priority_entry()
                    while entry is not None and not self._allows(entry[0]):
                        entry = scheduler.remove_highest_priority_entry()
                    if entry is None:
                        continue  # agendas empty: the barrier dissolves
                    # Re-arm below the inference's events: the next entry
                    # pops only after this inference's wavefront finishes.
                    queue.append(event)
                    rnd.dispatch_mark = len(queue)
                    constraint, variable = entry
                    rnd.note_constraint(constraint)
                    stats.inference_runs += 1
                    self._trace("infer", constraint)
                    if observer is None:
                        constraint.propagate_scheduled(variable)
                    else:
                        t0 = perf_counter()
                        try:
                            constraint.propagate_scheduled(variable)
                        finally:
                            observer.inference(constraint, variable, t0,
                                               perf_counter())
                else:  # _REPROPAGATE
                    self._dispatch_repropagate(rnd, event[1], event[2])
        finally:
            rnd.draining = previous_draining
            rnd.dispatch_mark = previous_mark

    def _dispatch_repropagate(self, rnd: _Round, constraint: Any,
                              remaining: Optional[List[Any]]) -> None:
        """One argument of an edited constraint asserts its value.

        The precedence order is snapshot on the first dispatch; each
        dispatch propagates the next still-unvisited argument, then
        requeues itself *below* an agenda drain, so the argument's
        wavefront and any scheduled inference complete before the next
        argument is examined (the per-argument ``drain_agendas`` of the
        recursive engine).
        """
        if remaining is None:
            if not self._allows(constraint):
                return
            rnd.note_constraint(constraint)
            remaining = _precedence_ordered(constraint.arguments)
        queue = rnd.queue
        while remaining:
            argument = remaining.pop(0)
            if rnd.was_visited(argument):
                continue
            rnd.record_visit(argument)
            rnd.stats.constraint_activations += 1
            queue.append((_REPROPAGATE, constraint, remaining))
            queue.append((_DRAIN_AGENDAS,))
            rnd.dispatch_mark = len(queue)
            constraint.propagate_variable(argument)
            return

    # -- propagation machinery --------------------------------------------

    def spread(self, variable: Any, exclude: Any = None) -> None:
        """Enqueue activation of every constraint of a changed variable.

        ``exclude`` is the constraint that produced the change, which must
        not be re-activated (``setTo:constraint:justification:``).  The
        activations dispatch from the round's queue; when called from
        outside the wavefront loop the queue is drained immediately.
        """
        rnd = self.require_round()
        watermark = len(rnd.queue)
        rnd.queue.append((_VARIABLE_CHANGED, variable, exclude))
        if not rnd.draining:
            self._drain(rnd, watermark)

    def schedule(self, constraint: Any, variable: Any = None, *,
                 agenda: str) -> None:
        """Defer a constraint's inference onto a named agenda.

        The single choke point for agenda scheduling (sections 4.2.1 and
        5.1.2): counts the attempt, traces it, and queues the entry —
        duplicates are rejected by the agenda itself.
        """
        rnd = self.current_round
        stats = self.stats if rnd is None else rnd.stats
        scheduler = self.scheduler if rnd is None else rnd.scheduler
        stats.scheduled_entries += 1
        self._trace("schedule", constraint)
        observer = self.observer
        if observer is not None:
            observer.scheduled(constraint, agenda)
        scheduler.schedule(constraint, variable, agenda=agenda)

    def propagated_assignment(self, variable: Any, value: Any,
                              constraint: Any, justification: Justification) -> None:
        """Assignment performed by a constraint during propagation.

        Applies the termination criteria of section 4.2.2 before storing:
        an agreeing value stops the wavefront silently; a disagreeing value
        on a protected or already-changed variable raises a violation.
        The change's spread is posted to the round's queue rather than
        propagated by re-entering the engine.
        """
        rnd = self.require_round()
        if rnd.draining and len(rnd.queue) > rnd.dispatch_mark:
            # A constraint assigning its second value within one inference
            # run: finish the first value's wavefront before this store,
            # exactly as the recursive engine's nested message sends did
            # (E2's transient-update accounting depends on it).
            self._drain(rnd, rnd.dispatch_mark)
        decision = variable.classify_propagated(value, constraint)
        if decision == "ignore":
            rnd.stats.ignored_propagations += 1
            recording = self._plan_recording
            if recording is not None:
                recording.note_ignore(variable, value, constraint,
                                      justification)
            if self.tracer is not None:
                self._trace("ignore", variable, f"{value!r} agrees/defers")
            return
        if rnd.times_changed(variable) >= rnd.max_changes \
                and not rnd.may_recompute(variable, constraint):
            raise PropagationViolation(
                variable=variable, constraint=constraint, attempted_value=value,
                reason=(f"variable already changed {rnd.times_changed(variable)} "
                        f"time(s) this round (one-value-change rule)"))
        if decision == "violate":
            raise PropagationViolation(
                variable=variable, constraint=constraint, attempted_value=value,
                reason=(f"propagated value {value!r} conflicts with "
                        f"{variable.last_set_by!r} value {variable.value!r}"))
        rnd.record_visit(variable)
        variable._store(value, justification)
        rnd.note_change(variable)
        rnd.stats.propagated_assignments += 1
        recording = self._plan_recording
        if recording is not None:
            recording.note_write(variable, value, constraint, justification)
        if self.tracer is not None:
            self._trace("store", variable, f":= {value!r} by {constraint!r}")
        watermark = len(rnd.queue)
        rnd.queue.append((_VARIABLE_CHANGED, variable, constraint))
        variable.on_stored_by_assignment()
        if not rnd.draining:
            self._drain(rnd, watermark)

    def drain_agendas(self) -> None:
        """Enqueue an agenda drain: scheduled constraints propagate until
        all agendas are empty, each entry's wavefront finishing before the
        next pops."""
        rnd = self.require_round()
        watermark = len(rnd.queue)
        rnd.queue.append((_DRAIN_AGENDAS,))
        if not rnd.draining:
            self._drain(rnd, watermark)

    def check_visited_constraints(self) -> None:
        """Final sweep: every visited constraint must be satisfied."""
        rnd = self.require_round()
        for constraint in list(rnd.visited_constraints):
            if not self._allows(constraint):
                continue
            rnd.stats.satisfaction_checks += 1
            if not constraint.is_satisfied():
                raise PropagationViolation(
                    constraint=constraint,
                    reason=f"constraint unsatisfied after propagation: "
                           f"{constraint!r}")

    # -- violation handling -------------------------------------------------

    def _abort_round(self, rnd: _Round, signal: PropagationViolation) -> None:
        """Report, then restore (section 5.2).

        The handler runs while the violating state is still in place —
        STEM's "debug" option opens the constraint editor on exactly that
        state — and restoration happens unconditionally afterwards (the
        "proceed" semantics), even if the handler raises.
        """
        rnd.stats.violations += 1
        if signal.kind == "budget":
            rnd.stats.budget_aborts += 1
        self._trace("violation", signal.constraint or signal.variable,
                    signal.reason)
        observer = self.observer
        if observer is not None:
            observer.violation(signal)
            if signal.kind == "budget":
                hook = getattr(observer, "budget_exceeded", None)
                if hook is not None:
                    hook(signal.steps, signal.elapsed)
        record = ViolationRecord.from_signal(signal)
        try:
            if not rnd.silent:
                constraint = signal.constraint
                handler = (getattr(constraint, "violation_handler", None)
                           or self.handler)
                handler.handle(record)
        finally:
            self._restore(rnd)
            if observer is not None:
                observer.restored(len(rnd.visited), "violation")
            self._trace("restore", None,
                        f"{len(rnd.visited)} variable(s) restored")
            rnd.queue.clear()
            rnd.scheduler.clear()

    def _restore(self, rnd: _Round) -> None:
        """Restore every visited variable to its pre-round state."""
        for variable, (justification, value) in rnd.visited.items():
            variable._store(value, justification)
        shadow = self.shadow
        if shadow is not None and not rnd.silent:
            shadow.round_rolled_back()


def _island_thunk(context: "PropagationContext", group: List[Tuple[Any, ...]],
                  local: threading.local, stats: PropagationStats):
    """A zero-argument island task for the executor (loop-capture safe)."""
    def run() -> Tuple[str, "_Round", Any]:
        return context._island_task(group, local, stats)
    return run


def _precedence_ordered(arguments: List[Any]) -> List[Any]:
    """Order arguments for re-propagation (Fig. 4.13).

    User-specified values assert first, then constraint-dependent values,
    then other independents (#APPLICATION etc.), so higher-precedence
    values win any tug-of-war over the edited constraint.
    """
    from .justification import is_propagated, is_user

    user_specified, dependents, others = [], [], []
    for argument in arguments:
        justification = argument.last_set_by
        if is_user(justification):
            user_specified.append(argument)
        elif is_propagated(justification):
            dependents.append(argument)
        else:
            others.append(argument)
    return user_specified + dependents + others


#: Module-level default context — the convenient "global" of the thesis.
_default_context = PropagationContext()


def default_context() -> PropagationContext:
    """Return the process-wide default :class:`PropagationContext`."""
    return _default_context


def reset_default_context(**kwargs: Any) -> PropagationContext:
    """Replace the default context (used by test isolation fixtures)."""
    global _default_context
    _default_context = PropagationContext(**kwargs)
    return _default_context
