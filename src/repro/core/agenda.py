"""Fixed-priority agenda scheduling of constraint propagation.

Section 4.2.1 of the thesis: constraints whose propagation direction does
not depend on which variable changed ("functional" constraints) defer their
propagation onto an *agenda* so that every argument has a chance to change
before the (possibly expensive) inference runs.  This reduces redundant
recomputation of transient results.

An agenda is a first-in-first-out queue that rejects duplicate entries.
The scheduler holds several named agendas in a fixed priority order; after
the initial un-scheduled spread of a value change, the propagation
engine's wavefront loop repeatedly pops the first entry of the
highest-priority non-empty agenda — via a ``drain-agendas`` barrier event
that re-arms itself after each popped inference's wavefront completes —
until all agendas are empty.

STEM's hierarchical extension (section 5.1.2) adds a lowest-priority
``implicit_constraints`` agenda so propagation tends to finish one level of
the design hierarchy before crossing to another.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Any, Deque, Dict, Iterable, List, Optional, Tuple

#: Default agenda names, highest priority first.
FUNCTIONAL = "functional_constraints"
IMPLICIT = "implicit_constraints"
DEFAULT_PRIORITY_ORDER = (FUNCTIONAL, IMPLICIT)

ScheduledEntry = Tuple[Any, Any]  # (constraint, variable-or-None)


class Agenda:
    """A FIFO queue of ``(constraint, variable)`` entries without duplicates."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._queue: Deque[ScheduledEntry] = deque()
        self._members: set = set()

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)

    def schedule(self, constraint: Any, variable: Any = None) -> bool:
        """Append an entry unless an equal entry is already queued.

        Returns True if the entry was added.
        """
        key = (id(constraint), id(variable))
        if key in self._members:
            return False
        self._members.add(key)
        self._queue.append((constraint, variable))
        return True

    def pop(self) -> ScheduledEntry:
        """Remove and return the oldest entry."""
        entry = self._queue.popleft()
        self._members.discard((id(entry[0]), id(entry[1])))
        return entry

    def clear(self) -> None:
        self._queue.clear()
        self._members.clear()

    def entries(self) -> List[ScheduledEntry]:
        """A snapshot of queued entries, oldest first."""
        return list(self._queue)


class AgendaScheduler:
    """Multi-queue, fixed-priority scheduler for deferred propagation.

    ``priority_order`` lists agenda names from highest to lowest priority.
    Unknown agenda names are created on first use at the *lowest* priority,
    matching the open-ended extension style of the thesis (new constraint
    types may introduce new agendas).
    """

    def __init__(self, priority_order: Iterable[str] = DEFAULT_PRIORITY_ORDER) -> None:
        self._agendas: "OrderedDict[str, Agenda]" = OrderedDict(
            (name, Agenda(name)) for name in priority_order
        )
        #: Optional :class:`repro.obs.observer.Observer` fed with enqueue
        #: and pop events (queue-depth histograms); installed alongside
        #: ``context.observer``, one attribute check when absent.
        self.observer = None

    @property
    def priority_order(self) -> List[str]:
        return list(self._agendas)

    def agenda_named(self, name: str) -> Agenda:
        """Return (creating if necessary) the agenda with this name."""
        agenda = self._agendas.get(name)
        if agenda is None:
            agenda = Agenda(name)
            self._agendas[name] = agenda
        return agenda

    def schedule(self, constraint: Any, variable: Any = None,
                 agenda: str = FUNCTIONAL) -> bool:
        """Schedule ``constraint`` (with optional triggering ``variable``)."""
        target = self.agenda_named(agenda)
        added = target.schedule(constraint, variable)
        if added:
            observer = self.observer
            if observer is not None:
                observer.agenda_enqueued(target.name, len(target))
        return added

    def remove_highest_priority_entry(self) -> Optional[ScheduledEntry]:
        """Pop the first entry of the highest-priority non-empty agenda."""
        for agenda in self._agendas.values():
            if agenda:
                entry = agenda.pop()
                observer = self.observer
                if observer is not None:
                    observer.agenda_popped(agenda.name, len(agenda))
                return entry
        return None

    def is_empty(self) -> bool:
        return all(not agenda for agenda in self._agendas.values())

    def clear(self) -> None:
        for agenda in self._agendas.values():
            agenda.clear()

    def pending_counts(self) -> Dict[str, int]:
        """Number of queued entries per agenda (for inspection/benchmarks)."""
        return {name: len(agenda) for name, agenda in self._agendas.items()}
