"""Variable objects — active storage nodes of constraint networks.

Section 4.1.1 of the thesis: a variable is a *handle* for a datum so that
constraints can be specified on it independent of its value.  Each
variable carries

* ``parent`` — the object containing it (a cell, a compiler, ...),
* ``name`` — the field of the parent that points at it (together with the
  parent this gives a unique identification path),
* ``value`` — the last value assigned,
* ``constraints`` — every constraint referencing the variable,
* ``last_set_by`` — the justification of the current value.

Two assignment paths exist.  :meth:`Variable.set` is the external
``setTo:justification:`` used by designers and tools; it opens a
propagation round on the variable's context.  Constraints assign
propagated values through :meth:`Variable.set_propagated`
(``setTo:constraint:justification:``), which applies the termination and
overwrite rules before spreading further.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Set

from . import dependency
from .engine import PropagationContext, default_context
from .justification import (
    APPLICATION,
    USER,
    Justification,
    PropagatedJustification,
    is_propagated,
    may_overwrite,
    source_constraint,
)


class Variable:
    """An active storage node in a constraint network.

    Parameters
    ----------
    value:
        Initial value; stored directly, without propagation.
    parent, name:
        Identification path (section 4.1.1); both optional for free-standing
        variables.
    context:
        The :class:`~repro.core.engine.PropagationContext` this variable
        propagates in; defaults to the process-wide context.
    justification:
        Justification recorded for the initial value (default ``None`` for a
        ``None`` initial value, ``#APPLICATION`` otherwise — a constructor
        value is calculated state that later propagation may overwrite;
        designer decisions enter through :meth:`set`, which defaults to
        ``#USER``).
    """

    def __init__(self, value: Any = None, *, parent: Any = None,
                 name: str = "", context: Optional[PropagationContext] = None,
                 justification: Justification = None) -> None:
        self.parent = parent
        self.name = name
        self.context = context if context is not None else default_context()
        self._value = value
        if justification is None and value is not None:
            justification = APPLICATION
        self._last_set_by: Justification = justification
        self.constraints: List[Any] = []

    # -- identification -----------------------------------------------------

    def qualified_name(self) -> str:
        """Dotted identification path, e.g. ``ADDER.boundingBox``."""
        if self.parent is None:
            return self.name or f"<variable@{id(self):x}>"
        parent_name = getattr(self.parent, "name", None) or repr(self.parent)
        return f"{parent_name}.{self.name}" if self.name else f"{parent_name}.?"

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.qualified_name()}={self._value!r}>"

    # -- value access ---------------------------------------------------------

    @property
    def value(self) -> Any:
        return self._value

    @property
    def raw_value(self) -> Any:
        """The stored value without side effects.

        ``value`` and ``raw_value`` coincide here; daemon variables
        (:class:`~repro.consistency.properties.PropertyVariable`) override
        ``value`` to recalculate on demand, and the engine's bookkeeping
        must not trigger that.
        """
        return self._value

    @property
    def last_set_by(self) -> Justification:
        return self._last_set_by

    def is_dependent(self) -> bool:
        """True when the current value was produced by propagation."""
        return is_propagated(self._last_set_by)

    def source_constraint(self) -> Optional[Any]:
        """The constraint that set the current value, if any."""
        return source_constraint(self._last_set_by)

    def _store(self, value: Any, justification: Justification) -> None:
        """Raw store without propagation (engine/internal use only)."""
        self._value = value
        self._last_set_by = justification

    def on_stored_by_assignment(self) -> None:
        """Hook run after an assignment stores a value (not on restores).

        Subclasses use it for hard-coded, procedural update-constraints —
        e.g. an instance bounding box invalidating its parent cell's box
        (Fig. 7.8).  Default: nothing.
        """

    # -- assignment -----------------------------------------------------------

    def set(self, value: Any, justification: Justification = USER) -> bool:
        """External assignment (``setTo:justification:``).

        Triggers constraint propagation (when the context is enabled) and
        returns the validity feedback of section 5.2: True when no
        constraint violation occurred, False otherwise (the network is then
        restored to its previous state).
        """
        return self.context.assign(self, value, justification)

    def calculate(self, value: Any) -> bool:
        """Assignment by an application program (``#APPLICATION``)."""
        return self.context.assign(self, value, APPLICATION)

    def set_propagated(self, value: Any, constraint: Any,
                       dependency_record: Any = None) -> None:
        """Assignment by a constraint during propagation.

        Raises :class:`~repro.core.violations.PropagationViolation` when the
        value conflicts with the variable's current state; silently stops
        the wavefront when the value agrees (section 4.2.2).
        """
        justification = PropagatedJustification(constraint, dependency_record)
        self.context.propagated_assignment(self, value, constraint, justification)

    def can_be_set_to(self, value: Any) -> bool:
        """Would this value propagate without violation?  (Fig. 8.2)

        Tentatively assigns, propagates, restores, and reports.  Used by
        module selection to test candidate realizations.
        """
        return self.context.probe(self, value)

    def reset(self) -> None:
        """Erase the value (reset to None) without propagation.

        Used by dependency-directed erasure when constraints are removed
        (section 4.2.5) and by update-constraints (section 6.5.1).
        """
        self._store(None, None)

    # -- propagation hooks ----------------------------------------------------

    def values_equal(self, a: Any, b: Any) -> bool:
        """Equality used by the agreeing-value termination criterion."""
        return a == b

    def classify_propagated(self, value: Any, constraint: Any) -> str:
        """Decide the fate of a propagated value: apply / ignore / violate.

        The default rule (section 4.2.4): an agreeing value is ignored; a
        disagreeing value overwrites unless the current value is
        user-specified.  Subclasses redefine this to recognise different
        constraint strengths or type-abstraction orders (section 7.1).
        """
        if self.values_equal(self._value, value):
            return "ignore"
        if self._value is not None and not may_overwrite(self._last_set_by):
            return "violate"
        return "apply"

    # -- constraint links -------------------------------------------------------

    def all_constraints(self) -> List[Any]:
        """Explicit plus implicit constraints to activate on change."""
        implicit = self.implicit_constraints()
        if implicit:
            return self.constraints + list(implicit)
        return self.constraints

    def implicit_constraints(self) -> Sequence[Any]:
        """Hard-coded constraints embedded in the variable (section 5.1.1).

        The base variable has none; hierarchical dual variables return
        their counterpart variables, which respond to the constraint
        protocol themselves.
        """
        return ()

    def add_constraint(self, constraint: Any) -> None:
        """Low-level link; use ``Constraint.attach``/``add_argument`` to edit
        networks with re-propagation.  The universal choke point for
        constraint links, so it notifies the context's structural hook
        (advancing the topology epoch, which invalidates cached
        propagation plans, and merging constraint-graph islands)."""
        if constraint not in self.constraints:
            self.constraints.append(constraint)
            self.context.note_structure_link(self, constraint)

    def remove_constraint(self, constraint: Any) -> None:
        """Low-level unlink (no dependency erasure)."""
        try:
            self.constraints.remove(constraint)
        except ValueError:
            return
        self.context.note_structure_unlink(self, constraint)

    # -- dependency analysis ------------------------------------------------------

    def antecedents(self) -> Set[Any]:
        """All variables and constraints this value depends on (Fig. 4.11)."""
        return dependency.antecedents(self)

    def consequences(self) -> Set[Any]:
        """All variables depending on this value (Fig. 4.12)."""
        return dependency.consequences(self)

    def variable_consequences(self) -> Set["Variable"]:
        """Only the variable consequences (used by constraint removal)."""
        return dependency.variable_consequences(self)
