"""Predicate constraints — pure checks without inference.

These capture design *specifications*: they never assign values, they only
veto inconsistent ones.  The designer's "delay from A to B must not exceed
100ns" (section 5.3), aspect-ratio / area / pitch-matching constraints on
bounding boxes (section 7.2, Fig. 7.9) and parameter range restrictions
(section 5.1.1) are all predicates.

A predicate over values that are still ``None`` is trivially satisfied —
specifications wait silently until characteristics become available, the
essence of least-commitment checking.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

from .constraint import Constraint


class PredicateConstraint(Constraint):
    """Base class: ``is_satisfied`` tests a predicate, inference is empty."""

    def holds_for(self, values: Sequence[Any]) -> bool:
        """The predicate over the (all non-None) argument values."""
        raise NotImplementedError

    def is_satisfied(self) -> bool:
        values = [variable.value for variable in self._arguments]
        if any(value is None for value in values):
            return True
        return self.holds_for(values)


class FunctionPredicate(PredicateConstraint):
    """Predicate given as an arbitrary callable over the argument values."""

    def __init__(self, *variables: Any, fn: Callable[..., bool],
                 label: str = "", attach: bool = True) -> None:
        self.fn = fn
        self.label = label or getattr(fn, "__name__", "predicate")
        super().__init__(*variables, attach=attach)

    def holds_for(self, values: Sequence[Any]) -> bool:
        return bool(self.fn(*values))

    def qualified_name(self) -> str:
        names = ", ".join(v.qualified_name() for v in self._arguments)
        return f"{self.label}({names})"


class UpperBoundConstraint(PredicateConstraint):
    """value <= bound — e.g. a "120ns or less" delay specification."""

    def __init__(self, variable: Any, bound: Any, attach: bool = True) -> None:
        self.bound = bound
        super().__init__(variable, attach=attach)

    def holds_for(self, values: Sequence[Any]) -> bool:
        return values[0] <= self.bound

    def qualified_name(self) -> str:
        return f"{self._arguments[0].qualified_name()} <= {self.bound!r}"


class LowerBoundConstraint(PredicateConstraint):
    """value >= bound."""

    def __init__(self, variable: Any, bound: Any, attach: bool = True) -> None:
        self.bound = bound
        super().__init__(variable, attach=attach)

    def holds_for(self, values: Sequence[Any]) -> bool:
        return values[0] >= self.bound

    def qualified_name(self) -> str:
        return f"{self._arguments[0].qualified_name()} >= {self.bound!r}"


class RangeConstraint(PredicateConstraint):
    """low <= value <= high — a parameter range (section 5.1.1)."""

    def __init__(self, variable: Any, low: Any, high: Any,
                 attach: bool = True) -> None:
        self.low = low
        self.high = high
        super().__init__(variable, attach=attach)

    def holds_for(self, values: Sequence[Any]) -> bool:
        return self.low <= values[0] <= self.high

    def qualified_name(self) -> str:
        return (f"{self.low!r} <= {self._arguments[0].qualified_name()} "
                f"<= {self.high!r}")


class OrderingConstraint(PredicateConstraint):
    """first <= second over two variables."""

    def holds_for(self, values: Sequence[Any]) -> bool:
        return values[0] <= values[1]


class AspectRatioPredicate(PredicateConstraint):
    """bounding box width / height == ratio (Fig. 7.9).

    The argument values must expose ``.extent`` with ``.x`` / ``.y``
    (the :class:`~repro.stem.geometry.Rect` protocol) or be such a pair
    themselves.
    """

    def __init__(self, variable: Any, ratio: float, *,
                 tolerance: float = 1e-9, attach: bool = True) -> None:
        self.ratio = ratio
        self.tolerance = tolerance
        super().__init__(variable, attach=attach)

    def holds_for(self, values: Sequence[Any]) -> bool:
        box = values[0]
        extent = getattr(box, "extent", box)
        if extent.y == 0:
            return False
        return abs(extent.x / extent.y - self.ratio) <= self.tolerance

    def qualified_name(self) -> str:
        return f"aspect({self._arguments[0].qualified_name()}) == {self.ratio}"


class AreaBoundConstraint(PredicateConstraint):
    """bounding box area <= max_area (a section 7.2 designer constraint)."""

    def __init__(self, variable: Any, max_area: float,
                 attach: bool = True) -> None:
        self.max_area = max_area
        super().__init__(variable, attach=attach)

    def holds_for(self, values: Sequence[Any]) -> bool:
        box = values[0]
        extent = getattr(box, "extent", box)
        return extent.x * extent.y <= self.max_area

    def qualified_name(self) -> str:
        return f"area({self._arguments[0].qualified_name()}) <= {self.max_area}"


class PitchMatchPredicate(PredicateConstraint):
    """Two bounding boxes share a pitch: equal extents along an axis.

    ``axis`` is ``"x"`` (equal widths) or ``"y"`` (equal heights) —
    the pitch-matching constraint mentioned in section 7.2.
    """

    def __init__(self, first: Any, second: Any, axis: str = "y",
                 attach: bool = True) -> None:
        if axis not in ("x", "y"):
            raise ValueError(f"axis must be 'x' or 'y', got {axis!r}")
        self.axis = axis
        super().__init__(first, second, attach=attach)

    def holds_for(self, values: Sequence[Any]) -> bool:
        extents = [getattr(v, "extent", v) for v in values]
        return getattr(extents[0], self.axis) == getattr(extents[1], self.axis)
