"""Vectorized parameter sweeps — whole-network evaluation over N bindings.

A design-space exploration ("what delay does every feasible driver width
give?") asks the same constraint network the same question N times with
different entry values.  Running N propagation rounds pays queue, agenda
and satisfaction-sweep overhead per candidate; this module evaluates the
functional forward closure of the swept variables **once per
constraint** over arrays of N candidate bindings, and derives a
vectorized satisfaction mask from the predicate/equality constraints —
a handful of array evaluations instead of N rounds.

The evaluator is a pure function of the network: nothing is stored, no
round opens, no journal entry is written.  Two execution backends share
one compiled plan:

* ``numpy`` — array kernels over ``float64`` columns;
* ``python`` — a stdlib per-element loop.

The backends are **byte-identical**: both coerce candidates and network
constants to ``float`` and apply the same IEEE-754 operations in the
same association order (the numpy max/min kernels fold with
``np.where(b > a, b, a)``, exactly the scalar fold), and constraints
without a vector kernel (``FormulaConstraint``, custom predicates)
evaluate element-wise on Python floats under either backend.  ``NaN``
candidates are unsupported (comparison semantics diverge between
``max`` and array folds).

Scope: the forward closure may contain functional constraints
(:class:`~repro.core.functional.FunctionalConstraint`), equality
aliases (:class:`~repro.core.library.EqualityConstraint`), predicates
(:class:`~repro.core.predicates.PredicateConstraint`) and
:class:`~repro.core.library.UpdateConstraint` (a cache eraser — inert
under pure evaluation).  Implicit hierarchy links (stem's dual
variables doubling as constraints) are inert in their checking-only
direction and rejected when a varying *class* characteristic would
adopt procedurally into instances.  Any other constraint type reachable
from the swept variables raises :class:`SweepError`: the general engine
is the only sound evaluator for side-effecting or bidirectional
propagation.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from .functional import (
    FormulaConstraint,
    FunctionalConstraint,
    ScaleOffsetConstraint,
    UniAdditionConstraint,
    UniMaximumConstraint,
    UniMinimumConstraint,
)
from .library import EqualityConstraint, UpdateConstraint
from .variable import Variable
from .predicates import (
    LowerBoundConstraint,
    OrderingConstraint,
    PredicateConstraint,
    RangeConstraint,
    UpperBoundConstraint,
)

try:  # pragma: no cover - exercised via both CI matrix legs
    import numpy as _numpy
except ImportError:  # pragma: no cover
    _numpy = None

#: True when the numpy backend is available in this process.
HAVE_NUMPY = _numpy is not None

__all__ = ["HAVE_NUMPY", "SweepError", "SweepPlan", "SweepResult",
           "compile_island_sweeps", "compile_sweep", "sweep"]


class SweepError(Exception):
    """The network cannot be swept (unsupported constraint, bad input)."""


class SweepResult:
    """Values and satisfaction mask for one executed sweep.

    ``values`` maps every swept and derived variable to its list of N
    Python floats; ``mask`` holds N booleans — candidate *i* satisfies
    every checked constraint iff ``mask[i]`` is True.
    """

    __slots__ = ("values", "mask", "backend")

    def __init__(self, values: Dict[Any, List[float]], mask: List[bool],
                 backend: str) -> None:
        self.values = values
        self.mask = mask
        self.backend = backend

    def __len__(self) -> int:
        return len(self.mask)

    @property
    def satisfied_count(self) -> int:
        return sum(1 for ok in self.mask if ok)

    def as_dict(self) -> Dict[str, List[float]]:
        """Values keyed by qualified variable name (JSON-friendly)."""
        return {variable.qualified_name(): column
                for variable, column in self.values.items()}

    def __repr__(self) -> str:
        return (f"<SweepResult {len(self.mask)} candidate(s), "
                f"{self.satisfied_count} satisfied, {self.backend}>")


# Source descriptors inside a compiled plan: where a value column comes
# from.  ("in", i) = swept input column i; ("slot", i) = computed column
# i; ("const", variable) = the variable's current network value,
# broadcast (resolved at run time, so a sweep always sees fresh
# constants).
_IN = "in"
_SLOT = "slot"
_CONST = "const"


class SweepPlan:
    """A compiled sweep: ordered array ops plus mask checks.

    Build with :func:`compile_sweep`; execute with :meth:`run`.  The
    plan is valid until the network's topology changes (it holds the
    constraint objects directly); constants are re-read per run.
    """

    def __init__(self, inputs: List[Any], ops: List[Tuple[Any, ...]],
                 outputs: List[Tuple[Any, Tuple[Any, ...]]],
                 slot_count: int) -> None:
        self.inputs = inputs
        self._ops = ops
        self._outputs = outputs
        self._slot_count = slot_count

    def __repr__(self) -> str:
        computes = sum(1 for op in self._ops if op[0] == "compute")
        masks = sum(1 for op in self._ops if op[0] == "mask")
        return (f"<SweepPlan {len(self.inputs)} input(s) {computes} "
                f"compute(s) {masks} check(s)>")

    # -- execution ----------------------------------------------------------

    def run(self, candidates: Any, backend: str = "auto") -> SweepResult:
        """Evaluate the plan over N candidate bindings.

        ``candidates`` is one sequence of values for a single swept
        input, or a sequence of per-input columns (same length) for
        several.  ``backend`` is ``"auto"`` (numpy when available),
        ``"numpy"`` or ``"python"``.
        """
        columns = self._normalize(candidates)
        if backend == "auto":
            backend = "numpy" if HAVE_NUMPY else "python"
        if backend == "numpy":
            if not HAVE_NUMPY:
                raise SweepError("numpy backend requested but numpy is "
                                 "not importable")
            return self._run_numpy(columns)
        if backend == "python":
            return self._run_python(columns)
        raise SweepError(f"unknown sweep backend {backend!r}")

    def _normalize(self, candidates: Any) -> List[List[float]]:
        if len(self.inputs) == 1 and candidates \
                and not isinstance(candidates[0], (list, tuple)):
            candidates = [candidates]
        if len(candidates) != len(self.inputs):
            raise SweepError(f"expected {len(self.inputs)} candidate "
                             f"column(s), got {len(candidates)}")
        columns: List[List[float]] = []
        length: Optional[int] = None
        for variable, column in zip(self.inputs, candidates):
            try:
                floats = [float(value) for value in column]
            except (TypeError, ValueError) as error:
                raise SweepError(
                    f"non-numeric candidate for "
                    f"{variable.qualified_name()}: {error}") from None
            if length is None:
                length = len(floats)
            elif len(floats) != length:
                raise SweepError("candidate columns differ in length")
            columns.append(floats)
        return columns

    def _constant(self, variable: Any) -> float:
        value = variable.value
        if value is None:
            raise SweepError(f"swept network input "
                             f"{variable.qualified_name()} has no value")
        try:
            return float(value)
        except (TypeError, ValueError):
            raise SweepError(f"non-numeric network value {value!r} at "
                             f"{variable.qualified_name()}") from None

    # -- numpy backend ------------------------------------------------------

    def _run_numpy(self, columns: List[List[float]]) -> SweepResult:
        np = _numpy
        length = len(columns[0]) if columns else 0
        ins = [np.asarray(column, dtype=np.float64) for column in columns]
        slots: List[Any] = [None] * self._slot_count

        def resolve(source: Tuple[Any, ...]) -> Any:
            kind = source[0]
            if kind is _IN:
                return ins[source[1]]
            if kind is _SLOT:
                return slots[source[1]]
            return self._constant(source[1])  # scalar broadcasts

        mask = np.ones(length, dtype=bool)
        for op in self._ops:
            if op[0] == "compute":
                _, kernel, sources, slot = op
                slots[slot] = self._numpy_kernel(np, kernel, sources,
                                                 resolve, length)
            else:  # "mask"
                _, kernel, sources = op
                mask &= self._numpy_check(np, kernel, sources, resolve,
                                          length)
        values = {variable: self._column(resolve(source), length)
                  for variable, source in self._outputs}
        return SweepResult(values, mask.tolist(), "numpy")

    @staticmethod
    def _column(resolved: Any, length: int) -> List[float]:
        if isinstance(resolved, float):  # broadcast constant
            return [resolved] * length
        return resolved.tolist() if hasattr(resolved, "tolist") \
            else list(resolved)

    def _numpy_kernel(self, np: Any, kernel: Tuple[Any, ...],
                      sources: List[Tuple[Any, ...]], resolve: Any,
                      length: int) -> Any:
        kind = kernel[0]
        arrays = [resolve(source) for source in sources]
        if kind == "sum":
            out = arrays[0]
            for array in arrays[1:]:
                out = out + array
        elif kind == "max":
            out = arrays[0]
            for array in arrays[1:]:
                out = np.where(array > out, array, out)
        elif kind == "min":
            out = arrays[0]
            for array in arrays[1:]:
                out = np.where(array < out, array, out)
        elif kind == "scale":
            _, scale, offset = kernel
            out = scale * arrays[0] + offset
        else:
            # "element": no vector kernel — element-wise scalar
            # evaluation, byte-identical to the python backend by
            # construction.
            compute = kernel[1]
            rows = zip(*(self._column(array, length) for array in arrays))
            out = [float(compute(list(row))) for row in rows]
        out = np.asarray(out, dtype=np.float64)
        if out.ndim == 0:
            out = np.broadcast_to(out, (length,))
        return out

    def _numpy_check(self, np: Any, kernel: Tuple[Any, ...],
                     sources: List[Tuple[Any, ...]], resolve: Any,
                     length: int) -> Any:
        kind = kernel[0]
        arrays = [resolve(source) for source in sources]
        if kind == "eq":
            result = arrays[0] == arrays[1]
        elif kind == "le":
            result = arrays[0] <= kernel[1]
        elif kind == "ge":
            result = arrays[0] >= kernel[1]
        elif kind == "range":
            result = (kernel[1] <= arrays[0]) & (arrays[0] <= kernel[2])
        elif kind == "le2":
            result = arrays[0] <= arrays[1]
        else:  # "holds": element-wise predicate
            holds = kernel[1]
            rows = zip(*(self._column(array, length) for array in arrays))
            result = [bool(holds(list(row))) for row in rows]
        result = np.asarray(result, dtype=bool)
        if result.ndim == 0:
            result = np.broadcast_to(result, (length,))
        return result

    # -- python backend -----------------------------------------------------

    def _run_python(self, columns: List[List[float]]) -> SweepResult:
        length = len(columns[0]) if columns else 0
        slots: List[Any] = [None] * self._slot_count
        consts: Dict[int, float] = {}

        def resolve(source: Tuple[Any, ...]) -> Any:
            kind = source[0]
            if kind is _IN:
                return columns[source[1]]
            if kind is _SLOT:
                return slots[source[1]]
            variable = source[1]
            key = id(variable)
            if key not in consts:
                consts[key] = self._constant(variable)
            return consts[key]

        def column_of(resolved: Any) -> List[float]:
            if isinstance(resolved, float):
                return [resolved] * length
            return resolved

        mask = [True] * length
        for op in self._ops:
            if op[0] == "compute":
                _, kernel, sources, slot = op
                slots[slot] = _python_kernel(kernel, [
                    column_of(resolve(source)) for source in sources],
                    length)
            else:  # "mask"
                _, kernel, sources = op
                checked = _python_check(kernel, [
                    column_of(resolve(source)) for source in sources],
                    length)
                mask = [a and b for a, b in zip(mask, checked)]
        values = {variable: list(column_of(resolve(source)))
                  for variable, source in self._outputs}
        return SweepResult(values, mask, "python")


def _python_kernel(kernel: Tuple[Any, ...], arrays: List[List[float]],
                   length: int) -> List[float]:
    kind = kernel[0]
    if kind == "sum":
        out = list(arrays[0])
        for array in arrays[1:]:
            for i in range(length):
                out[i] = out[i] + array[i]
        return out
    if kind == "max":
        out = list(arrays[0])
        for array in arrays[1:]:
            for i in range(length):
                if array[i] > out[i]:
                    out[i] = array[i]
        return out
    if kind == "min":
        out = list(arrays[0])
        for array in arrays[1:]:
            for i in range(length):
                if array[i] < out[i]:
                    out[i] = array[i]
        return out
    if kind == "scale":
        _, scale, offset = kernel
        return [scale * value + offset for value in arrays[0]]
    compute = kernel[1]  # "element"
    return [float(compute([array[i] for array in arrays]))
            for i in range(length)]


def _python_check(kernel: Tuple[Any, ...], arrays: List[List[float]],
                  length: int) -> List[bool]:
    kind = kernel[0]
    if kind == "eq":
        return [a == b for a, b in zip(arrays[0], arrays[1])]
    if kind == "le":
        bound = kernel[1]
        return [value <= bound for value in arrays[0]]
    if kind == "ge":
        bound = kernel[1]
        return [value >= bound for value in arrays[0]]
    if kind == "range":
        _, low, high = kernel
        return [low <= value <= high for value in arrays[0]]
    if kind == "le2":
        return [a <= b for a, b in zip(arrays[0], arrays[1])]
    holds = kernel[1]  # "holds"
    return [bool(holds([array[i] for array in arrays]))
            for i in range(length)]


# -- compilation ------------------------------------------------------------

def compile_sweep(inputs: Any, *, context: Any = None) -> SweepPlan:
    """Compile the forward closure of the swept variables into a plan.

    ``inputs`` is one :class:`~repro.core.variable.Variable` or a
    sequence of distinct variables.  The closure walks every constraint
    reachable through varying values; functional constraints become
    compute ops in topological order, equality constraints alias their
    arguments, and predicates (plus functional/equality constraints
    whose outputs are already pinned) become mask checks.  ``context``
    is accepted for signature symmetry; the variables carry it.
    """
    if hasattr(inputs, "all_constraints"):
        inputs = [inputs]
    swept: List[Any] = []
    for variable in inputs:
        if any(existing is variable for existing in swept):
            raise SweepError(f"duplicate swept input "
                             f"{variable.qualified_name()}")
        swept.append(variable)
    if not swept:
        raise SweepError("a sweep needs at least one swept variable")

    # Phase 1: the varying set — every variable whose value depends on a
    # swept input, to fixpoint (equality aliases make whole groups vary).
    varying: Dict[int, Any] = {id(variable): variable
                               for variable in swept}
    constraints: List[Any] = []
    seen: set = set()

    def collect(variable: Any) -> None:
        for constraint in variable.all_constraints():
            key = id(constraint)
            if key not in seen:
                seen.add(key)
                constraints.append(constraint)

    for variable in swept:
        collect(variable)
    changed = True
    while changed:
        changed = False
        for constraint in list(constraints):
            if isinstance(constraint, FunctionalConstraint):
                result = constraint.result_variable
                if id(result) not in varying and any(
                        id(argument) in varying
                        for argument in constraint.inputs):
                    varying[id(result)] = result
                    collect(result)
                    changed = True
            elif isinstance(constraint, EqualityConstraint):
                arguments = constraint.arguments
                if any(id(argument) in varying for argument in arguments):
                    for argument in arguments:
                        if id(argument) not in varying:
                            varying[id(argument)] = argument
                            collect(argument)
                            changed = True

    # Phase 2: emit ops in dependency order.
    computed: Dict[int, Tuple[Any, ...]] = {
        id(variable): (_IN, index) for index, variable in enumerate(swept)}
    ops: List[Tuple[Any, ...]] = []
    outputs: List[Tuple[Any, Tuple[Any, ...]]] = [
        (variable, (_IN, index)) for index, variable in enumerate(swept)]
    emitted: set = set()

    def source_of(variable: Any) -> Tuple[Any, ...]:
        source = computed.get(id(variable))
        return source if source is not None else (_CONST, variable)

    progress = True
    while progress:
        progress = False
        for constraint in constraints:
            key = id(constraint)
            if key in emitted:
                continue
            if isinstance(constraint, UpdateConstraint):
                emitted.add(key)  # cache eraser: inert under evaluation
                progress = True
            elif isinstance(constraint, FunctionalConstraint):
                if _emit_functional(constraint, varying, computed, ops,
                                    outputs, source_of):
                    emitted.add(key)
                    progress = True
            elif isinstance(constraint, EqualityConstraint):
                if _emit_equality(constraint, computed, ops, outputs,
                                  source_of):
                    emitted.add(key)
                    progress = True
            elif isinstance(constraint, PredicateConstraint):
                if _emit_predicate(constraint, varying, computed, ops,
                                   source_of):
                    emitted.add(key)
                    progress = True
            elif isinstance(constraint, Variable):
                # An implicit hierarchy link (stem's dual declaration):
                # the counterpart variable doubles as the constraint.
                # Only the class-to-instance direction propagates values
                # — and it is procedural (``adjust_class_value``), so a
                # varying class characteristic has no vector form.  The
                # instance-to-class direction merely checks consistency
                # against a constant characteristic: inert here.
                class_var = getattr(constraint, "class_var", None)
                if class_var is not None and id(class_var) in varying:
                    raise SweepError(
                        f"cannot sweep through the hierarchy link into "
                        f"{constraint.qualified_name()}: class-to-instance "
                        f"adoption is procedural; use propagation rounds")
                emitted.add(key)
                progress = True
            else:
                raise SweepError(
                    f"cannot sweep through "
                    f"{type(constraint).__name__} "
                    f"({constraint.qualified_name()}): no vector "
                    f"evaluation; use propagation rounds")
    remaining = [constraint for constraint in constraints
                 if id(constraint) not in emitted]
    if remaining:
        names = ", ".join(type(constraint).__name__
                          for constraint in remaining)
        raise SweepError(f"cyclic or underdetermined sweep closure: "
                         f"{names}")
    slot_count = sum(1 for op in ops if op[0] == "compute")
    return SweepPlan(swept, ops, outputs, slot_count)


def _compute_kernel(constraint: Any) -> Tuple[Any, ...]:
    """Pick the vector kernel for a functional constraint.

    Exact types only — a subclass overriding ``compute`` must not
    silently inherit its parent's kernel — with the element-wise kernel
    as the general fallback.
    """
    cls = type(constraint)
    if cls is UniAdditionConstraint:
        return ("sum",)
    if cls is UniMaximumConstraint:
        return ("max",)
    if cls is UniMinimumConstraint:
        return ("min",)
    if cls is ScaleOffsetConstraint:
        return ("scale", float(constraint.scale), float(constraint.offset))
    return ("element", constraint.compute)


def _predicate_kernel(constraint: Any) -> Tuple[Any, ...]:
    cls = type(constraint)
    if cls is UpperBoundConstraint:
        return ("le", float(constraint.bound))
    if cls is LowerBoundConstraint:
        return ("ge", float(constraint.bound))
    if cls is RangeConstraint:
        return ("range", float(constraint.low), float(constraint.high))
    if cls is OrderingConstraint:
        return ("le2",)
    return ("holds", constraint.holds_for)


def _emit_functional(constraint: Any, varying: Dict[int, Any],
                     computed: Dict[int, Tuple[Any, ...]],
                     ops: List[Tuple[Any, ...]],
                     outputs: List[Tuple[Any, Tuple[Any, ...]]],
                     source_of: Any) -> bool:
    result = constraint.result_variable
    pending = [argument for argument in constraint.inputs
               if id(argument) in varying and id(argument) not in computed]
    if pending:
        return False  # an input's producer has not been emitted yet
    sources = [source_of(argument) for argument in constraint.inputs]
    kernel = _compute_kernel(constraint)
    if id(result) in computed:
        # The result is pinned by another path (swept, aliased or
        # reconvergent): the engine would check agreement — mask it.
        slot = _next_slot(ops)
        ops.append(("compute", kernel, sources, slot))
        ops.append(("mask", ("eq",), [computed[id(result)], ("slot", slot)]))
        return True
    slot = _next_slot(ops)
    ops.append(("compute", kernel, sources, slot))
    computed[id(result)] = (_SLOT, slot)
    outputs.append((result, (_SLOT, slot)))
    return True


def _next_slot(ops: List[Tuple[Any, ...]]) -> int:
    return sum(1 for op in ops if op[0] == "compute")


def _emit_equality(constraint: Any, computed: Dict[int, Tuple[Any, ...]],
                   ops: List[Tuple[Any, ...]],
                   outputs: List[Tuple[Any, Tuple[Any, ...]]],
                   source_of: Any) -> bool:
    arguments = constraint.arguments
    determined = [argument for argument in arguments
                  if id(argument) in computed]
    if not determined:
        return False  # wait until one side's producer is emitted
    anchor = computed[id(determined[0])]
    for argument in arguments:
        if argument is determined[0]:
            continue
        if id(argument) in computed:
            # Two independently produced sides: values must agree,
            # exactly as the engine's propagation/sweep would demand.
            ops.append(("mask", ("eq",), [anchor, computed[id(argument)]]))
        else:
            computed[id(argument)] = anchor
            outputs.append((argument, anchor))
    return True


def _emit_predicate(constraint: Any, varying: Dict[int, Any],
                    computed: Dict[int, Tuple[Any, ...]],
                    ops: List[Tuple[Any, ...]], source_of: Any) -> bool:
    arguments = constraint.arguments
    for argument in arguments:
        if id(argument) in varying and id(argument) not in computed:
            return False
    sources = [source_of(argument) for argument in arguments]
    ops.append(("mask", _predicate_kernel(constraint), sources))
    return True


def compile_island_sweeps(inputs: Any, *,
                          context: Any = None) -> List[SweepPlan]:
    """Compile one sweep plan per constraint-graph island of the inputs.

    Swept variables in disjoint islands share no constraints, so their
    closures compile — and run — independently; a multi-module
    exploration becomes one small plan per module instead of one fused
    plan whose compile walks every module's closure together.  Inputs
    are grouped by the context's :class:`~repro.core.islands.IslandIndex`
    when one is installed (``context.islands``), else by a from-scratch
    :func:`~repro.core.islands.bfs_partition`; within each group, input
    order is preserved.  Returns the plans in first-input order.
    """
    from .islands import bfs_partition

    if hasattr(inputs, "all_constraints"):
        inputs = [inputs]
    swept = list(inputs)
    if not swept:
        raise SweepError("a sweep needs at least one swept variable")
    ctx = context if context is not None else swept[0].context
    index = getattr(ctx, "islands", None)
    grouped: Dict[int, List[Any]] = {}
    order: List[int] = []
    if index is not None:
        for variable in swept:
            island = index.island_of(variable)
            key = min(id(member) for member in island)
            if key not in grouped:
                grouped[key] = []
                order.append(key)
            grouped[key].append(variable)
    else:
        components = bfs_partition(swept)
        membership = {id(variable): root
                      for root, component in enumerate(components)
                      for variable in component}
        for variable in swept:
            key = membership[id(variable)]
            if key not in grouped:
                grouped[key] = []
                order.append(key)
            grouped[key].append(variable)
    return [compile_sweep(grouped[key], context=ctx) for key in order]


def sweep(inputs: Any, candidates: Any, *, context: Any = None,
          backend: str = "auto") -> SweepResult:
    """Compile and run a sweep in one call (see :func:`compile_sweep`)."""
    return compile_sweep(inputs, context=context).run(candidates,
                                                      backend=backend)
