"""Violation diagnosis and recommended actions (section 9.3, suggestion 1).

The thesis's first future-work item: a user interface that "can be
linked to the constraint debugger, and be brought up whenever
constraints are violated to provide diagnostic explanations and
recommended actions to the user."  This module generates those
explanations textually:

* :func:`explain` — a structured diagnosis of one
  :class:`~repro.core.violations.ViolationRecord`: what was attempted,
  which constraint objected, which user/tool decisions the conflicting
  value rests on (antecedent analysis over dependency records), and what
  would be affected by changing it (consequence analysis);
* recommended actions, ranked: relax the violated specification, change
  one of the independent antecedent values, remove the constraint, or
  disable it and proceed;
* :class:`ExplainingHandler` — a violation handler producing these
  diagnoses automatically, suitable as the context handler.
"""

from __future__ import annotations

from typing import Any, List, Optional

from . import dependency
from .constraint import Constraint
from .justification import is_propagated, is_user
from .predicates import (
    LowerBoundConstraint,
    PredicateConstraint,
    RangeConstraint,
    UpperBoundConstraint,
)
from .variable import Variable
from .violations import ViolationHandler, ViolationRecord, describe


class Recommendation:
    """One suggested corrective action."""

    __slots__ = ("action", "target", "detail")

    def __init__(self, action: str, target: Any, detail: str) -> None:
        self.action = action
        self.target = target
        self.detail = detail

    def __str__(self) -> str:
        return f"[{self.action}] {self.detail}"


class Diagnosis:
    """A structured explanation of one violation."""

    def __init__(self, record: ViolationRecord) -> None:
        self.record = record
        self.independent_antecedents: List[Variable] = []
        self.affected_consequences: List[Variable] = []
        self.recommendations: List[Recommendation] = []

    def render(self) -> str:
        lines = [f"violation: {self.record.reason}"]
        if self.record.constraint is not None:
            lines.append(f"  violated constraint: "
                         f"{describe(self.record.constraint)}")
        if self.record.variable is not None:
            lines.append(f"  at variable: "
                         f"{describe(self.record.variable)} "
                         f"(attempted {self.record.attempted_value!r})")
        if self.independent_antecedents:
            lines.append("  the conflicting state rests on:")
            for variable in self.independent_antecedents:
                lines.append(f"    - {variable.qualified_name()} = "
                             f"{variable.value!r} ({variable.last_set_by!r})")
        if self.affected_consequences:
            lines.append("  values that would be affected by changing it:")
            for variable in self.affected_consequences[:8]:
                lines.append(f"    - {variable.qualified_name()} = "
                             f"{variable.value!r}")
            if len(self.affected_consequences) > 8:
                lines.append(f"    ... and "
                             f"{len(self.affected_consequences) - 8} more")
        if self.recommendations:
            lines.append("  recommended actions:")
            for i, recommendation in enumerate(self.recommendations, 1):
                lines.append(f"    {i}. {recommendation}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def explain(record: ViolationRecord) -> Diagnosis:
    """Build a diagnosis with antecedents, consequences and actions."""
    diagnosis = Diagnosis(record)
    variable = record.variable
    constraint = record.constraint

    anchor: Optional[Variable] = variable
    if anchor is None and constraint is not None \
            and getattr(constraint, "arguments", None):
        anchor = constraint.arguments[0]

    if anchor is not None:
        antecedents = dependency.antecedents(anchor)
        diagnosis.independent_antecedents = sorted(
            (obj for obj in antecedents
             if isinstance(obj, Variable) and not obj.is_dependent()
             and obj.value is not None),
            key=lambda v: v.qualified_name())
        diagnosis.affected_consequences = sorted(
            dependency.variable_consequences(anchor),
            key=lambda v: v.qualified_name())

    diagnosis.recommendations = _recommend(record, diagnosis)
    return diagnosis


def _recommend(record: ViolationRecord,
               diagnosis: Diagnosis) -> List[Recommendation]:
    recommendations: List[Recommendation] = []
    constraint = record.constraint
    variable = record.variable

    if isinstance(constraint, UpperBoundConstraint):
        recommendations.append(Recommendation(
            "relax-spec", constraint,
            f"raise the bound of {describe(constraint)} above "
            f"{_needed_value(record)!r}"))
    elif isinstance(constraint, LowerBoundConstraint):
        recommendations.append(Recommendation(
            "relax-spec", constraint,
            f"lower the bound of {describe(constraint)} below "
            f"{_needed_value(record)!r}"))
    elif isinstance(constraint, RangeConstraint):
        recommendations.append(Recommendation(
            "relax-spec", constraint,
            f"widen the range of {describe(constraint)} to admit "
            f"{_needed_value(record)!r}"))
    elif isinstance(constraint, PredicateConstraint):
        recommendations.append(Recommendation(
            "relax-spec", constraint,
            f"revise the specification {describe(constraint)}"))

    if variable is not None and is_user(variable.last_set_by) \
            and record.attempted_value is not None:
        recommendations.append(Recommendation(
            "revise-decision", variable,
            f"the designer fixed {variable.qualified_name()} = "
            f"{variable.value!r}; changing it to "
            f"{record.attempted_value!r} would resolve the conflict"))

    for antecedent in diagnosis.independent_antecedents:
        if antecedent is variable:
            continue
        recommendations.append(Recommendation(
            "change-design", antecedent,
            f"revise {antecedent.qualified_name()} = "
            f"{antecedent.value!r}, which the conflicting value "
            f"derives from"))
        if len(recommendations) >= 5:
            break

    if constraint is not None:
        recommendations.append(Recommendation(
            "remove-constraint", constraint,
            f"remove {describe(constraint)} if the relation no longer "
            f"reflects design intent"))
        recommendations.append(Recommendation(
            "disable-and-proceed", constraint,
            "disable this constraint (PropagationControl) and continue; "
            "re-enable after the revision settles"))
    return recommendations


def _needed_value(record: ViolationRecord) -> Any:
    if record.attempted_value is not None:
        return record.attempted_value
    if record.constraint is not None \
            and getattr(record.constraint, "arguments", None):
        return record.constraint.arguments[0].value
    return None


class ExplainingHandler(ViolationHandler):
    """A handler that diagnoses every violation it sees.

    ``diagnoses`` collects :class:`Diagnosis` objects; an optional sink
    callback receives the rendered text (print, log, UI...).
    """

    def __init__(self, sink: Optional[Any] = None) -> None:
        super().__init__()
        self.sink = sink
        self.diagnoses: List[Diagnosis] = []

    def handle(self, record: ViolationRecord) -> None:
        super().handle(record)
        diagnosis = explain(record)
        self.diagnoses.append(diagnosis)
        if self.sink is not None:
            self.sink(diagnosis.render())

    @property
    def last_diagnosis(self) -> Optional[Diagnosis]:
        return self.diagnoses[-1] if self.diagnoses else None
