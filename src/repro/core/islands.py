"""Constraint-graph islands — connected components for parallel rounds.

A multi-module design hierarchy is many weakly-coupled subgraphs: the
propagation wavefront started by an assignment can only ever reach
variables *connected* to the entry variable through constraints.  This
module maintains that partition — the network's connected components,
called **islands** — incrementally, so a batched round touching several
disjoint modules can drain each module's wavefront independently (and,
with a parallel executor installed, concurrently).

The index is a union-find over variables with **eager merges and lazy
splits**:

* every structural link (``Variable.add_constraint``, implicit hierarchy
  registration) unions the linked variables immediately — O(α) per link,
  at the same choke points that bump ``topology_epoch``;
* every unlink only marks the touched component *dirty*; the next
  :meth:`IslandIndex.flush` (before any grouping or stats query) rebuilds
  just the dirty components from the surviving edges.

Between flushes the partition is therefore a *coarsening* of true
connectivity: two variables in different recorded islands are guaranteed
disconnected, while a recorded island may transiently span what are now
two components.  Grouping a batch by recorded islands is consequently
always **safe** for parallelism (no two concurrent wavefronts can meet);
it is merely sometimes less parallel than it could be — and the flush
before grouping restores exactness.

The partition is over the *raw* constraint graph, ignoring
:class:`~repro.core.control.PropagationControl` state: a disabled
constraint's edge keeps its endpoints in one island.  Disabling can only
coarsen the effective graph, so the raw partition remains a sound (if
conservative) grouping, and control flips never invalidate the index.

The executor seam (:class:`SerialIslandExecutor`,
:class:`ThreadIslandExecutor`) is deliberately pluggable: serial is
always available and byte-identical to the fused batched round; the
thread pool pays off on free-threaded builds and multi-core machines.
Process/interpreter pools are future work — justifications and
constraints hold unpicklable object graphs, so shipping writes back
would need an ordinal-mapping protocol.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

__all__ = ["IslandIndex", "SerialIslandExecutor", "ThreadIslandExecutor",
           "bfs_partition", "install_islands", "islands_for"]


def bfs_partition(variables: Any) -> List[List[Any]]:
    """From-scratch reference partition by breadth-first search.

    Walks ``all_constraints``/``arguments`` edges from every given
    variable and returns the connected components (each component's
    variables in first-discovery order).  This is the specification the
    incremental index must agree with — the property tests compare the
    two — and the fallback used by island-aware sweeps when no index is
    installed.
    """
    seen: Set[int] = set()
    components: List[List[Any]] = []
    for variable in variables:
        if id(variable) in seen:
            continue
        component: List[Any] = []
        frontier = [variable]
        seen.add(id(variable))
        while frontier:
            node = frontier.pop()
            component.append(node)
            for constraint in node.all_constraints():
                for argument in getattr(constraint, "arguments", ()):
                    if id(argument) not in seen:
                        seen.add(id(argument))
                        frontier.append(argument)
        components.append(component)
    return components


class IslandIndex:
    """Incrementally-maintained island partition of one context's network.

    Installed as ``context.islands`` (the constructor installs it, like
    :class:`~repro.core.plancache.PlanCache`).  The engine's structural
    choke points — ``note_structure_link`` / ``note_structure_unlink``
    on the context — feed :meth:`note_link` / :meth:`note_unlink`; every
    query flushes pending lazy rebuilds first.

    The index holds strong references to linked variables (the same
    id-stability discipline as the plan cache's key states); a session
    rebuild swaps the whole object graph and calls :meth:`rebind`.
    """

    def __init__(self, context: Any = None) -> None:
        self.context = context
        self._vars: Dict[int, Any] = {}      # id -> variable (strong ref)
        self._parent: Dict[int, int] = {}    # union-find parent pointers
        self._size: Dict[int, int] = {}      # root id -> member count
        self._members: Dict[int, Set[int]] = {}  # root id -> member ids
        self._dirty: Set[int] = set()        # ids with a pending rebuild
        self._dirty_all = False
        #: While frozen (a parallel island section is running), incoming
        #: structural notes degrade to a full lazy invalidation instead
        #: of mutating union-find state from a worker thread.
        self._frozen = False
        self.merges = 0
        self.splits = 0
        if context is not None:
            context.islands = self

    # -- lifecycle ----------------------------------------------------------

    def uninstall(self) -> None:
        context = self.context
        if context is not None and getattr(context, "islands", None) is self:
            context.islands = None

    def rebind(self, context: Any) -> None:
        """Move to a new context (session rebuild/recovery), dropping the
        whole partition — the new context is a different object graph.
        Links flow back in as the new network is reconstructed."""
        self.uninstall()
        self._vars.clear()
        self._parent.clear()
        self._size.clear()
        self._members.clear()
        self._dirty.clear()
        self._dirty_all = False
        self.context = context
        context.islands = self

    def invalidate(self) -> None:
        """Mark the whole partition stale (lazy full rebuild on flush)."""
        self._dirty_all = True

    def freeze(self) -> None:
        self._frozen = True

    def thaw(self) -> None:
        self._frozen = False

    # -- union-find core ----------------------------------------------------

    def _find(self, key: int) -> int:
        parent = self._parent
        root = key
        while parent[root] != root:
            root = parent[root]
        while parent[key] != root:  # path compression
            parent[key], key = root, parent[key]
        return root

    def _register(self, variable: Any) -> int:
        key = id(variable)
        if key not in self._parent:
            self._vars[key] = variable
            self._parent[key] = key
            self._size[key] = 1
            self._members[key] = {key}
        return key

    def _union(self, a: int, b: int) -> bool:
        root_a, root_b = self._find(a), self._find(b)
        if root_a == root_b:
            return False
        if self._size[root_a] < self._size[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._size[root_a] += self._size.pop(root_b)
        self._members[root_a].update(self._members.pop(root_b))
        return True

    def _relink(self, variable: Any) -> None:
        key = self._register(variable)
        for constraint in variable.all_constraints():
            for argument in getattr(constraint, "arguments", ()):
                self._union(key, self._register(argument))

    def _absorb(self, variable: Any) -> None:
        """Register an entire never-observed component by BFS.

        A query met a variable the index has never seen a link for:
        either it is genuinely free (no constraints — a true singleton)
        or its structure predates the index's installation.  Walk its
        whole component, registering and unioning everything reachable,
        so late-installed indexes still group correctly.  (Components
        whose *every* entry variable was registered post-install are
        exact by construction; install the index before building the
        network to avoid relying on this fallback.)
        """
        key = self._register(variable)
        seen = {id(variable)}
        frontier = [variable]
        while frontier:
            node = frontier.pop()
            for constraint in node.all_constraints():
                for argument in getattr(constraint, "arguments", ()):
                    self._union(key, self._register(argument))
                    if id(argument) not in seen:
                        seen.add(id(argument))
                        frontier.append(argument)

    # -- structural choke-point hooks ---------------------------------------

    def note_link(self, variable: Any, constraint: Any) -> None:
        """``variable`` gained ``constraint``: eager-merge its islands."""
        if self._frozen:
            self._dirty_all = True
            return
        key = self._register(variable)
        for argument in getattr(constraint, "arguments", ()):
            if self._union(key, self._register(argument)):
                self.merges += 1

    def note_unlink(self, variable: Any, constraint: Any) -> None:
        """``variable`` lost ``constraint``: the touched component may
        have split — mark it for a lazy rebuild."""
        if self._frozen:
            self._dirty_all = True
            return
        parent = self._parent
        if id(variable) in parent:
            self._dirty.add(id(variable))
        for argument in getattr(constraint, "arguments", ()):
            if id(argument) in parent:
                self._dirty.add(id(argument))

    # -- lazy rebuild -------------------------------------------------------

    def flush(self) -> None:
        """Apply pending splits: rebuild only the dirty components.

        Expansion first (a dirty id's *current* component may have eagerly
        merged with a clean one since the unlink), then reset those
        members to singletons and re-union along surviving edges.  The
        coarsening invariant guarantees every surviving edge incident to
        a rebuilt member stays inside the rebuilt set or reaches a clean
        component through a registered endpoint — either way plain
        re-union is complete.
        """
        if self._dirty_all:
            self._dirty_all = False
            self._dirty.clear()
            before = len(self._members)
            variables = list(self._vars.values())
            self._vars.clear()
            self._parent.clear()
            self._size.clear()
            self._members.clear()
            for variable in variables:
                self._relink(variable)
            after = len(self._members)
            if after > before:
                self.splits += after - before
            elif before > after:
                self.merges += before - after
            return
        if not self._dirty:
            return
        roots: Set[int] = set()
        rebuild: Set[int] = set()
        for key in self._dirty:
            if key not in self._parent:
                continue
            root = self._find(key)
            if root not in roots:
                roots.add(root)
                rebuild |= self._members[root]
        self._dirty.clear()
        if not rebuild:
            return
        for root in roots:
            del self._members[root]
            del self._size[root]
        for key in rebuild:
            self._parent[key] = key
            self._size[key] = 1
            self._members[key] = {key}
        for key in rebuild:
            self._relink(self._vars[key])
        after_roots = {self._find(key) for key in rebuild}
        if len(after_roots) > len(roots):
            self.splits += len(after_roots) - len(roots)

    # -- queries (all flush first) ------------------------------------------

    def island_count(self) -> int:
        self.flush()
        return len(self._members)

    def largest_island(self) -> int:
        self.flush()
        return max(self._size.values(), default=0)

    def island_of(self, variable: Any) -> List[Any]:
        """Every variable sharing ``variable``'s island (itself included).

        A variable the index has never observed is absorbed first (its
        pre-existing component walked by BFS); a genuinely free variable
        is its own singleton island.
        """
        self.flush()
        key = id(variable)
        if key not in self._parent:
            self._absorb(variable)
        return [self._vars[member]
                for member in self._members[self._find(key)]]

    def islands(self) -> List[List[Any]]:
        """Deterministic listing: members sorted by qualified name,
        islands ordered largest first (ties by first member name)."""
        self.flush()
        groups = []
        for members in self._members.values():
            variables = sorted((self._vars[key] for key in members),
                               key=lambda v: v.qualified_name())
            groups.append(variables)
        groups.sort(key=lambda vs: (-len(vs), vs[0].qualified_name()))
        return groups

    def group_entries(self, entries: List[Tuple[Any, ...]]) -> List[List[Any]]:
        """Group batch entries ``(variable, ...)`` by island.

        Groups keep entry order and appear in first-occurrence order;
        never-linked variables form singleton groups of their own.
        """
        self.flush()
        parent = self._parent
        grouped: "OrderedDict[int, List[Any]]" = OrderedDict()
        for entry in entries:
            key = id(entry[0])
            if key not in parent:
                self._absorb(entry[0])
            grouped.setdefault(self._find(key), []).append(entry)
        return list(grouped.values())

    def stats(self) -> Dict[str, int]:
        """Counters in deterministic sorted-key order."""
        self.flush()
        return {
            "island_merges": self.merges,
            "island_splits": self.splits,
            "islands": len(self._members),
            "largest_island": max(self._size.values(), default=0),
        }

    def __repr__(self) -> str:
        body = ", ".join(f"{k}={v}" for k, v in self.stats().items())
        return f"IslandIndex({body})"


class SerialIslandExecutor:
    """Run island rounds one after another in the calling thread.

    Always available, no threads, and — because the engine merges
    island-local effects identically whatever the executor — the result
    is byte-identical to the fused single-queue batched round *and* to
    any parallel executor.  This is the default backend and the one the
    parity benchmarks gate.
    """

    workers = 1
    parallel = False

    def run(self, tasks: List[Callable[[], Any]]) -> List[Any]:
        return [task() for task in tasks]

    def close(self) -> None:
        pass

    def __repr__(self) -> str:
        return "SerialIslandExecutor()"


class ThreadIslandExecutor:
    """Drain non-overlapping islands on a shared thread pool.

    Island wavefronts touch disjoint variable sets, so the only shared
    mutable state is each round's own bookkeeping — safe under the GIL
    and genuinely parallel on free-threaded builds.  The pool is created
    lazily and reused across batches.
    """

    parallel = True

    def __init__(self, workers: int = 4) -> None:
        if workers < 1:
            raise ValueError(f"workers must be positive, not {workers}")
        self.workers = workers
        self._pool = None

    def run(self, tasks: List[Callable[[], Any]]) -> List[Any]:
        if len(tasks) == 1:
            return [tasks[0]()]
        pool = self._pool
        if pool is None:
            from concurrent.futures import ThreadPoolExecutor
            pool = self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-island")
        futures = [pool.submit(task) for task in tasks]
        return [future.result() for future in futures]

    def close(self) -> None:
        pool = self._pool
        if pool is not None:
            self._pool = None
            pool.shutdown(wait=True)

    def __repr__(self) -> str:
        return f"ThreadIslandExecutor(workers={self.workers})"


def install_islands(context: Any, *, workers: Optional[int] = None) -> IslandIndex:
    """Install (or fetch) the context's island index; optionally wire an
    executor so ``assign_many`` drains islands independently.

    ``workers=None`` installs the index only (partition queries and
    stats, fused rounds unchanged); ``workers`` of 0 or 1 installs the
    serial executor (island-structured rounds, one thread); ``workers``
    greater than 1 installs a :class:`ThreadIslandExecutor` of that
    width.
    """
    index = getattr(context, "islands", None)
    if not isinstance(index, IslandIndex):
        index = IslandIndex(context)
    if workers is not None:
        if workers > 1:
            context.island_executor = ThreadIslandExecutor(workers)
        else:
            context.island_executor = SerialIslandExecutor()
    return index


def islands_for(context: Any) -> IslandIndex:
    """The context's island index, creating one on first use."""
    existing = getattr(context, "islands", None)
    if isinstance(existing, IslandIndex):
        return existing
    return IslandIndex(context)
