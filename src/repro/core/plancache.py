"""Hot-round trace specialization — a guarded propagation plan cache.

Thesis section 9.3 proposes compiling constraint networks "ranging from
simple topological sorts ... to complete proceduralization" to speed up
propagation.  :mod:`repro.core.compile` realises the static end of that
spectrum for acyclic functional subnets; this module covers the dynamic
end with the tracing-JIT idiom: **record** the general engine's work for
a hot round, **specialize** it into a straight-line plan, **guard** every
assumption the plan bakes in, and **deoptimize** back to the general
engine the moment a guard fails.

The unit of specialization is an external-assignment round.  Interactive
design work re-enters the network at the same variables over and over
(every slider drag, every session replay entry), so the cache keys rounds
by ``(entry variable, topology epoch)``:

* ``PropagationContext.topology_epoch`` is bumped by every structural
  change — constraint attach/detach, implicit hierarchy links, and
  :class:`~repro.core.control.PropagationControl` mutations — so a key
  can never survive a change to *which* constraints a round activates.
* The first assignment through a key registers it; the next two record
  the round's linearized trace (value writes, ignored propagations, and
  the final satisfaction sweep).  Two identical trace *shapes* promote
  the key to a :class:`PropagationPlan`.

A plan replays the recorded writes directly — no event queue, no agendas,
no visited bookkeeping — but every step re-derives its value from the
*current* network state and checks the guards:

* each write re-runs ``classify_propagated`` and must get the recorded
  ``"apply"`` decision (``"ignore"`` for recorded ignores);
* each derived value must match the recorded ``None``-ness, so the
  null-driven short-circuits in constraint inference stay on the traced
  path;
* functional constraints that stayed silent because of incomplete inputs
  guard that their inputs are *still* incomplete;
* every visited constraint's ``is_satisfied`` must still hold (the same
  final sweep the general engine runs).

Any guard failure rolls the touched variables back through the recorded
pre-state (the engine's own restore discipline) and re-enters the general
engine, which recomputes the round from scratch — including proper
violation reporting — and records a fresh trace.  A plan is therefore a
pure cache: results, justification structure and session fingerprints are
byte-identical with the cache on or off, and nothing about it is ever
journaled.

Only *certified* traces promote: every write must come from a constraint
whose inference is expressible as a pure derivation
(:meth:`~repro.core.constraint.Constraint.plan_derivation`), every
variable involved must store values without side effects (daemon
``value`` properties and ``on_stored_by_assignment`` hooks disqualify),
and no variable may be written twice.  Anything else — hierarchy duals,
update constraints, reconvergent transients — marks the key *unplannable*
and runs on the general engine forever, which is always correct.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from .constraint import Constraint
from .engine import PropagationContext
from .variable import Variable

__all__ = ["NOT_DERIVED", "PlanCache", "PropagationPlan",
           "PropagationPlanChain", "plan_cache_for"]

#: Sentinel returned by a plan step's derivation when the inference the
#: trace recorded would not happen under current values (incomplete
#: inputs, a value the constraint would reject inline): the plan must
#: deoptimize and let the general engine decide.
NOT_DERIVED = object()

_BASE_INFERENCE = Constraint.immediate_inference_by_changing


class _GuardFailure(Exception):
    """Internal control flow: a plan guard did not hold."""

    __slots__ = ()


def _plain_variable(variable: Any) -> bool:
    """May the plan read and store this variable directly?

    True only for variables whose value access and assignment hooks are
    the base :class:`~repro.core.variable.Variable` ones: a daemon
    ``value`` property (lazy recalculation on read) or an
    ``on_stored_by_assignment`` side effect would make a straight-line
    replay diverge from the general engine.  ``classify_propagated``
    overrides (strength/abstraction rules) are fine — plans call the real
    method as a guard.
    """
    cls = type(variable)
    return (cls.value is Variable.value
            and cls.on_stored_by_assignment is Variable.on_stored_by_assignment
            and cls._store is Variable._store)


def _pure_check(constraint: Any) -> bool:
    """Does this constraint provably never assign values?"""
    inference = getattr(type(constraint), "immediate_inference_by_changing",
                        None)
    return inference is _BASE_INFERENCE


class _TraceRecording:
    """One general round's linearized activity, captured for promotion.

    Installed on ``context._plan_recording`` by the cache and fed by the
    engine's ``propagated_assignment`` (write/ignore notes) and in-round
    entry points (poison notes); finished from ``assign``'s round
    teardown.
    """

    __slots__ = ("cache", "state", "epoch", "entry_none", "stats_before",
                 "steps", "poisoned", "reason", "dropped", "stats_owner")

    def __init__(self, cache: "PlanCache", state: "_KeyState", epoch: int,
                 entry_none: bool, stats_before: Dict[str, int],
                 dropped: int = 0, stats_owner: Any = None) -> None:
        self.cache = cache
        self.state = state
        self.epoch = epoch
        self.entry_none = entry_none
        self.stats_before = stats_before
        #: The stats object the recorded round counted into — the
        #: context's for fused rounds, an island-local one for island
        #: rounds (``None`` means the context's).  The promoted stats
        #: delta diffs this object, so island plans replay exactly the
        #: increments their island contributed.
        self.stats_owner = stats_owner
        #: ``(kind, target, constraint, justification, value_was_none)``
        self.steps: List[Tuple[str, Any, Any, Any, bool]] = []
        self.poisoned = False
        self.reason = ""
        #: Coalesced-entry count of the recorded batch (chains only): a
        #: chain's stats delta replays the coalescing counter, so replay
        #: must guard that the count still matches.
        self.dropped = dropped

    def note_write(self, variable: Any, value: Any, constraint: Any,
                   justification: Any) -> None:
        self.steps.append(("w", variable, constraint, justification,
                           value is None))

    def note_ignore(self, variable: Any, value: Any, constraint: Any,
                    justification: Any) -> None:
        self.steps.append(("i", variable, constraint, justification,
                           value is None))

    def note_entry(self, variable: Any, value: Any) -> None:
        """A batch entry boundary: the next steps belong to this entry."""
        self.steps.append(("e", variable, None, None, value is None))

    def poison(self, reason: str) -> None:
        """The round did something a straight-line plan cannot replay."""
        if not self.poisoned:
            self.poisoned = True
            self.reason = reason

    def signature(self, checks: List[Any]) -> Tuple[Any, ...]:
        """The round's activation shape: what happened, not which values."""
        shape: List[Any] = [("e", self.entry_none)]
        for kind, target, constraint, _justification, none in self.steps:
            if kind == "e":
                shape.append(("e", id(target), none))
            else:
                shape.append((kind, id(constraint), id(target)))
        for constraint in checks:
            shape.append(("c", id(constraint)))
        return tuple(shape)


class PropagationPlan:
    """A promoted straight-line replay for one (entry, epoch) key.

    ``steps`` is the guarded program: ``("w", target, constraint, derive,
    justification, was_none)`` writes, ``("i", target, constraint,
    derive)`` ignore-guards, ``("g", constraint, silent)`` silence guards
    and ``("c", constraint)`` satisfaction checks, in recorded order.
    ``stats_delta`` replays the round's :class:`PropagationStats`
    increments so counters — and therefore session fingerprints — cannot
    distinguish a plan hit from a general round.
    """

    __slots__ = ("entry", "entry_none", "steps", "stats_delta")

    def __init__(self, entry: Any, entry_none: bool,
                 steps: List[Tuple[Any, ...]],
                 stats_delta: List[Tuple[str, int]]) -> None:
        self.entry = entry
        self.entry_none = entry_none
        self.steps = steps
        self.stats_delta = stats_delta

    def __len__(self) -> int:
        return len(self.steps)

    def __repr__(self) -> str:
        writes = sum(1 for step in self.steps if step[0] == "w")
        return (f"<PropagationPlan {self.entry.qualified_name()} "
                f"{writes} write(s) / {len(self.steps)} step(s)>")


class PropagationPlanChain:
    """A promoted straight-line replay for one batched round.

    The stitched trace-tree of a hot repeated batch (the slider-drag
    case): ``steps`` interleaves ``("e", target, was_none)`` entry
    markers — each consuming the next ``(variable, value,
    justification)`` of the submitted batch — with the same ``"w"`` /
    ``"i"`` / ``"g"`` / ``"c"`` guarded steps as
    :class:`PropagationPlan`, forming one guard set and one final sweep
    for the whole batch.  ``dropped`` is the coalesced-entry count the
    recorded batch had; the stats delta replays the coalescing counter,
    so a batch that coalesces differently falls back to the general
    engine.

    ``island`` marks a chain recorded from one island's slice of an
    island-structured batch: its stats delta deliberately excludes the
    round-level counters (``rounds``, ``external_assignments``,
    ``coalesced_assignments``) the parent batch applies once.  The flag
    keeps the two batch paths from replaying each other's chains when a
    whole batch and an island slice share the same entry tuple.
    """

    __slots__ = ("entries", "steps", "stats_delta", "dropped", "island")

    def __init__(self, entries: Tuple[Any, ...],
                 steps: List[Tuple[Any, ...]],
                 stats_delta: List[Tuple[str, int]], dropped: int,
                 island: bool = False) -> None:
        self.entries = entries
        self.steps = steps
        self.stats_delta = stats_delta
        self.dropped = dropped
        self.island = island

    def __len__(self) -> int:
        return len(self.steps)

    def __repr__(self) -> str:
        writes = sum(1 for step in self.steps if step[0] == "w")
        return (f"<PropagationPlanChain {len(self.entries)} entries "
                f"{writes} write(s) / {len(self.steps)} step(s)>")


class _KeyState:
    """Per-key lifecycle: registered -> traced -> planned (or disabled)."""

    __slots__ = ("variable", "key_ids", "signature", "confirmations", "plan",
                 "disabled", "attempts")

    def __init__(self, variable: Any, key_ids: Any = None) -> None:
        #: The entry variable (strong ref: keeps ``id()`` stable) — or,
        #: for a batch key, the tuple of entry variables in seed order.
        self.variable = variable
        #: The id part of the cache key: ``id(variable)`` for a single
        #: entry, the tuple of entry-variable ids for a batch.
        self.key_ids = key_ids if key_ids is not None else id(variable)
        self.signature: Optional[Tuple[Any, ...]] = None
        self.confirmations = 0
        self.plan: Optional[Any] = None
        self.disabled = False
        self.attempts = 0


class PlanCache:
    """The context's trace recorder, plan store and replay engine.

    Installing the cache (the constructor installs it, like
    :class:`~repro.core.control.PropagationControl`) makes
    ``PropagationContext.assign`` consult it before opening a general
    round.  One attribute check per external assignment is the whole cost
    while no plan exists.

    Parameters
    ----------
    context:
        The :class:`~repro.core.engine.PropagationContext` to accelerate.
    hot_threshold:
        Identical traces required before a key promotes (the N>=2 rule;
        the first sighting only registers, so a key promotes on its
        ``hot_threshold + 1``-th assignment).
    max_keys:
        Bound on tracked keys; the oldest registration is evicted.
    max_trace_attempts:
        Recording budget per key: a key that keeps re-tracing without a
        surviving plan (violating rounds, deopt thrash) is marked
        unplannable rather than paying recording overhead forever.
    """

    def __init__(self, context: PropagationContext, *,
                 hot_threshold: int = 2, max_keys: int = 512,
                 max_trace_attempts: int = 16) -> None:
        if hot_threshold < 2:
            raise ValueError("hot_threshold must be >= 2 (N identical traces)")
        self.context = context
        self.hot_threshold = hot_threshold
        self.max_keys = max_keys
        self.max_trace_attempts = max_trace_attempts
        self._states: Dict[Tuple[int, int], _KeyState] = {}
        self.hits = 0
        self.chain_hits = 0
        self.misses = 0
        self.deopts = 0
        self.promotions = 0
        self.invalidations = 0
        self.unplannable = 0
        self.traces = 0
        context.plan_cache = self

    # -- lifecycle ----------------------------------------------------------

    def uninstall(self) -> None:
        if getattr(self.context, "plan_cache", None) is self:
            self.context.plan_cache = None

    def rebind(self, context: PropagationContext) -> None:
        """Move to a new context (session rebuild/recovery), dropping all
        plans — the new context's network is a different object graph."""
        self.uninstall()
        self.context = context
        context.plan_cache = self
        self._invalidate_all()

    def clear(self) -> None:
        """Drop every registration, trace and plan."""
        self._invalidate_all()

    def note_topology_change(self) -> None:
        """The context's topology epoch was bumped: all keys are stale."""
        self._invalidate_all()

    def _invalidate_all(self) -> None:
        states = self._states
        if not states:
            return
        dropped = sum(1 for state in states.values()
                      if state.plan is not None)
        states.clear()
        if dropped:
            self.invalidations += dropped
            self._observe("invalidation", dropped)

    # -- introspection ------------------------------------------------------

    @property
    def plan_count(self) -> int:
        return sum(1 for state in self._states.values()
                   if state.plan is not None)

    def plan_for(self, variable: Any) -> Optional[PropagationPlan]:
        state = self._states.get((id(variable), self.context.topology_epoch))
        return state.plan if state is not None else None

    def chain_for(self, variables: Any) -> Optional[PropagationPlanChain]:
        """The promoted plan chain for an entry-variable tuple, if any."""
        key_ids = tuple(id(variable) for variable in variables)
        state = self._states.get((key_ids, self.context.topology_epoch))
        return state.plan if state is not None else None

    def stats(self) -> Dict[str, int]:
        """Counters in deterministic sorted-key order."""
        return {
            "chain_hits": self.chain_hits,
            "deopts": self.deopts,
            "epoch": self.context.topology_epoch,
            "hits": self.hits,
            "invalidations": self.invalidations,
            "keys": len(self._states),
            "misses": self.misses,
            "plans": self.plan_count,
            "promotions": self.promotions,
            "traces": self.traces,
            "unplannable": self.unplannable,
        }

    def __repr__(self) -> str:
        body = ", ".join(f"{k}={v}" for k, v in self.stats().items())
        return f"PlanCache({body})"

    # -- engine-facing protocol ---------------------------------------------

    def on_external_assign(self, variable: Any, value: Any,
                           justification: Any) -> Optional[bool]:
        """Consulted by ``PropagationContext.assign`` before a round.

        Returns ``True`` when a plan replayed the round (the assignment
        is complete), ``None`` when the general engine must run — with a
        trace recording installed when this key is warming up.
        """
        context = self.context
        if context._plan_recording is not None:
            # A previous assign aborted before its round teardown could
            # finish the recording (defective observer): discard it.
            context._plan_recording = None
        key = (id(variable), context.topology_epoch)
        states = self._states
        state = states.get(key)
        if state is None:
            self.misses += 1
            self._observe("miss")
            if len(states) >= self.max_keys:
                states.pop(next(iter(states)))
            states[key] = _KeyState(variable)
            return None
        if state.disabled:
            self.misses += 1
            self._observe("miss")
            return None
        if state.plan is not None:
            return self._execute(state, variable, value, justification)
        self.misses += 1
        self._observe("miss")
        self._begin_recording(state, value)
        return None

    def on_external_batch(self, entries: List[Tuple[Any, Any, Any]],
                          dropped: int) -> Optional[bool]:
        """Consulted by ``PropagationContext.assign_many`` before a round.

        ``entries`` is the coalesced ``(variable, value, justification)``
        seed list; ``dropped`` the coalesced-away entry count.  Returns
        ``True`` when a plan chain replayed the whole batch, ``None``
        when the general batched round must run — with a trace recording
        installed when this batch key is warming up.
        """
        context = self.context
        if context._plan_recording is not None:
            context._plan_recording = None
        key_ids = tuple(id(entry[0]) for entry in entries)
        key = (key_ids, context.topology_epoch)
        states = self._states
        state = states.get(key)
        if state is None:
            self.misses += 1
            self._observe("miss")
            if len(states) >= self.max_keys:
                states.pop(next(iter(states)))
            states[key] = _KeyState(tuple(entry[0] for entry in entries),
                                    key_ids)
            return None
        if state.disabled:
            self.misses += 1
            self._observe("miss")
            return None
        if state.plan is not None:
            return self._execute_batch(state, entries, dropped)
        self.misses += 1
        self._observe("miss")
        self._begin_recording(state, None, dropped)
        return None

    # -- island sub-batches (repro.core.islands) ----------------------------

    def island_chain_state(self, entries: List[Tuple[Any, Any, Any]]) -> Any:
        """Look up (registering on first sight) the chain key for one
        island's slice of a batch.

        Island plans live in the ordinary ``_states`` keyspace — the key
        is the entry-variable id tuple plus the epoch, exactly as for
        whole-batch chains — so eviction, invalidation and stats are
        shared.  Returns the key state, or ``None`` when the key is
        disabled (the island runs the general engine, never recording).
        """
        context = self.context
        key_ids = tuple(id(entry[0]) for entry in entries)
        key = (key_ids, context.topology_epoch)
        states = self._states
        state = states.get(key)
        if state is None:
            self.misses += 1
            self._observe("miss")
            if len(states) >= self.max_keys:
                states.pop(next(iter(states)))
            state = _KeyState(tuple(entry[0] for entry in entries), key_ids)
            states[key] = state
            return state
        if state.disabled:
            self.misses += 1
            self._observe("miss")
            return None
        return state

    def replay_island(self, state: Any,
                      entries: List[Tuple[Any, Any, Any]]) -> Any:
        """Replay one island's promoted chain inside an island batch.

        Returns ``(undo, plan)`` on success — the caller keeps the undo
        list for the whole-batch rollback and applies ``plan.stats_delta``
        only once every island has succeeded — or ``None`` when the
        chain could not replay (guard deopt, or a whole-batch plan with a
        different coalescing count shares the key).  No round events are
        emitted: the island batch is one round, owned by the engine.
        """
        plan = state.plan
        if not getattr(plan, "island", False):
            # A whole-batch chain shares this key: its stats delta
            # includes the round-level counters the parent batch applies
            # itself.  Run the general engine for this island.
            self.misses += 1
            self._observe("miss")
            return None
        undo = self._run_chain(plan, entries, None)
        if undo is None:
            # Deoptimize exactly as _execute_batch: rollback already ran.
            self.deopts += 1
            state.plan = None
            state.signature = None
            state.confirmations = 0
            self._observe("deopt")
            return None
        self.hits += 1
        self.chain_hits += 1
        self._observe("hit")
        return (undo, plan)

    def begin_island_recording(self, state: Any, stats: Any) -> Any:
        """Start a trace recording for one island's general run.

        Unlike :meth:`_begin_recording` the recording is returned rather
        than installed — the engine installs it only while that island's
        round is draining (the recording slot is context-global, so at
        most one island per batch records, inline in the calling
        thread).  ``stats`` is the island round's private counter object;
        the promoted stats delta diffs it.
        """
        state.attempts += 1
        if state.attempts > self.max_trace_attempts:
            self._disable(state, "trace budget exhausted")
            return None
        self.traces += 1
        return _TraceRecording(self, state, self.context.topology_epoch,
                               True, stats.snapshot(), 0, stats)

    def finish_recording(self, recording: _TraceRecording, rnd: Any,
                         ok: bool) -> None:
        """Round teardown: fold a finished trace into the key's state."""
        state = recording.state
        context = self.context
        if (not ok or recording.poisoned
                or recording.epoch != context.topology_epoch
                or self._states.get((state.key_ids, recording.epoch))
                is not state):
            return  # violating/poisoned/stale rounds never cache
        checks = [constraint for constraint in rnd.visited_constraints
                  if context._allows(constraint)]
        signature = recording.signature(checks)
        if state.signature != signature:
            state.signature = signature
            state.confirmations = 1
            return
        state.confirmations += 1
        if state.confirmations >= self.hot_threshold:
            if isinstance(state.variable, tuple):
                self._promote_chain(state, recording, checks)
            else:
                self._promote(state, recording, checks)

    # -- recording ----------------------------------------------------------

    def _begin_recording(self, state: _KeyState, value: Any,
                         dropped: int = 0) -> None:
        state.attempts += 1
        if state.attempts > self.max_trace_attempts:
            self._disable(state, "trace budget exhausted")
            return
        self.traces += 1
        self.context._plan_recording = _TraceRecording(
            self, state, self.context.topology_epoch, value is None,
            self.context.stats.snapshot(), dropped)

    def _disable(self, state: _KeyState, reason: str) -> None:
        state.disabled = True
        state.plan = None
        state.signature = None
        self.unplannable += 1
        self._observe("unplannable")

    # -- promotion ----------------------------------------------------------

    def _promote(self, state: _KeyState, recording: _TraceRecording,
                 checks: List[Any]) -> None:
        entry = state.variable
        if not _plain_variable(entry):
            return self._disable(state, "entry variable is not plain")
        steps: List[Tuple[Any, ...]] = []
        written = {id(entry)}
        stepped = set()
        involved: List[Any] = []
        for kind, target, constraint, justification, was_none \
                in recording.steps:
            changed = justification.dependency_record
            # Hierarchy duals (InstanceInstVar and friends) act as the
            # source "constraint" of cross-level stores without being
            # Constraint subclasses: no plan_derivation, never planned.
            derivation = getattr(constraint, "plan_derivation", None)
            derive = derivation(target, changed) \
                if derivation is not None else None
            if derive is None:
                return self._disable(
                    state, f"{type(constraint).__name__} is not derivable")
            if not _plain_variable(target):
                return self._disable(state, "write target is not plain")
            stepped.add(id(constraint))
            involved.append(constraint)
            if kind == "w":
                if id(target) in written:
                    return self._disable(state, "variable written twice")
                written.add(id(target))
                steps.append(("w", target, constraint, derive,
                              justification, was_none))
            else:
                steps.append(("i", target, constraint, derive))
        if not self._certify_checks(state, checks, steps, written, stepped,
                                    involved):
            return None
        state.plan = PropagationPlan(entry, recording.entry_none, steps,
                                     self._stats_delta(recording))
        state.attempts = 0
        self.promotions += 1
        self._observe("promotion")

    def _promote_chain(self, state: _KeyState, recording: _TraceRecording,
                       checks: List[Any]) -> None:
        """Promote a batched-round trace into a plan chain.

        Same certification rules as :meth:`_promote`, with two batch
        twists: the double-write rule applies per entry *segment* (the
        general engine resets its change counts at each entry, so a
        later entry's wavefront legitimately recomputes a variable an
        earlier entry derived), and the silence guards consider every
        variable written anywhere in the batch.
        """
        entries = state.variable
        for variable in entries:
            if not _plain_variable(variable):
                return self._disable(state, "entry variable is not plain")
        steps: List[Tuple[Any, ...]] = []
        written: set = set()   # across the whole batch, for silence guards
        segment: set = set()   # within the current entry segment
        stepped = set()
        involved: List[Any] = []
        for kind, target, constraint, justification, was_none \
                in recording.steps:
            if kind == "e":
                segment = {id(target)}
                written.add(id(target))
                steps.append(("e", target, was_none))
                continue
            changed = justification.dependency_record
            derivation = getattr(constraint, "plan_derivation", None)
            derive = derivation(target, changed) \
                if derivation is not None else None
            if derive is None:
                return self._disable(
                    state, f"{type(constraint).__name__} is not derivable")
            if not _plain_variable(target):
                return self._disable(state, "write target is not plain")
            stepped.add(id(constraint))
            involved.append(constraint)
            if kind == "w":
                if id(target) in segment:
                    return self._disable(state, "variable written twice")
                segment.add(id(target))
                written.add(id(target))
                steps.append(("w", target, constraint, derive,
                              justification, was_none))
            else:
                steps.append(("i", target, constraint, derive))
        if not self._certify_checks(state, checks, steps, written, stepped,
                                    involved):
            return None
        state.plan = PropagationPlanChain(entries, steps,
                                          self._stats_delta(recording),
                                          recording.dropped,
                                          recording.stats_owner is not None)
        state.attempts = 0
        self.promotions += 1
        self._observe("promotion")

    def _certify_checks(self, state: _KeyState, checks: List[Any],
                        steps: List[Tuple[Any, ...]], written: set,
                        stepped: set, involved: List[Any]) -> bool:
        """Certify the silent constraints and append the final sweep.

        Visited constraints that assigned nothing must prove they stay
        silent, or guard the condition that silenced them; every argument
        of every involved constraint must be plain.  Appends the ``"g"``
        and ``"c"`` steps to ``steps``; False means the key was disabled.
        """
        for constraint in checks:
            if id(constraint) in stepped or _pure_check(constraint):
                continue
            guard_factory = getattr(constraint, "plan_silence_guard", None)
            if guard_factory is not None:
                driven = any(
                    id(argument) in written
                    and constraint.permits_changes_by(argument)
                    for argument in getattr(constraint, "arguments", ()))
                if driven:
                    silent = guard_factory()
                    if silent is None:
                        self._disable(state, "silence not guardable")
                        return False
                    steps.append(("g", constraint, silent))
                continue
            if getattr(constraint, "plan_silent_on_none", False):
                continue  # null-driven skip; None-ness is guarded invariant
            self._disable(
                state, f"silent {type(constraint).__name__} not certified")
            return False
        for constraint in involved + checks:
            arguments = getattr(constraint, "arguments", None)
            if arguments is None:
                self._disable(state, "constraint without arguments")
                return False
            for argument in arguments:
                if not _plain_variable(argument):
                    self._disable(state, "argument is not plain")
                    return False
        for constraint in checks:
            steps.append(("c", constraint))
        return True

    def _stats_delta(self, recording: _TraceRecording) -> List[Tuple[str, int]]:
        owner = recording.stats_owner
        after = (self.context.stats if owner is None else owner).snapshot()
        before = recording.stats_before
        return [(name, after[name] - before[name])
                for name in after if after[name] != before[name]]

    # -- replay -------------------------------------------------------------

    def _execute(self, state: _KeyState, variable: Any, value: Any,
                 justification: Any) -> Optional[bool]:
        context = self.context
        observer = context.observer
        span = None
        if observer is not None:
            observer.round_started("assign", variable)
            span_hook = getattr(observer, "plan_span", None)
            if span_hook is not None:
                # Counts a ``plan.replay`` attempt and, with a span
                # recorder installed, times the straight-line execution.
                span = span_hook("replay", entry=variable.qualified_name())
        try:
            if span is not None:
                with span:
                    ok = self._run_plan(state.plan, variable, value,
                                        justification, context.shadow)
            else:
                ok = self._run_plan(state.plan, variable, value,
                                    justification, context.shadow)
        except BaseException:
            if observer is not None:
                observer.round_finished("error")
            raise
        if ok:
            stats = context.stats
            for name, delta in state.plan.stats_delta:
                setattr(stats, name, getattr(stats, name) + delta)
            self.hits += 1
            if observer is not None:
                self._observe_on(observer, "hit")
                observer.round_finished("ok")
            return True
        # Deoptimize: the rollback already ran; drop the plan and re-enter
        # the general engine on this very round, recording a fresh trace.
        self.deopts += 1
        state.plan = None
        state.signature = None
        state.confirmations = 0
        if observer is not None:
            self._observe_on(observer, "deopt")
            observer.round_finished("deopt")
        self._begin_recording(state, value)
        return None

    def _execute_batch(self, state: _KeyState,
                       entries: List[Tuple[Any, Any, Any]],
                       dropped: int) -> Optional[bool]:
        plan = state.plan
        if dropped != plan.dropped or plan.island:
            # Different raw batch, same coalesced seeds — or an island-
            # slice chain sharing the key: the recorded stats delta would
            # replay the wrong round-level counts.  Run the general
            # round; the plan survives for matching batches.
            self.misses += 1
            self._observe("miss")
            return None
        context = self.context
        observer = context.observer
        span = None
        first = entries[0][0]
        if observer is not None:
            batch_hook = getattr(observer, "batch_submitted", None)
            if batch_hook is not None:
                batch_hook(len(entries) + dropped, dropped)
            observer.round_started("batch", first)
            span_hook = getattr(observer, "plan_span", None)
            if span_hook is not None:
                span = span_hook("replay", entry=first.qualified_name(),
                                 entries=len(entries))
        try:
            if span is not None:
                with span:
                    ok = self._run_chain(plan, entries,
                                         context.shadow) is not None
            else:
                ok = self._run_chain(plan, entries,
                                     context.shadow) is not None
        except BaseException:
            if observer is not None:
                observer.round_finished("error")
            raise
        if ok:
            stats = context.stats
            for name, delta in plan.stats_delta:
                setattr(stats, name, getattr(stats, name) + delta)
            self.hits += 1
            self.chain_hits += 1
            if observer is not None:
                self._observe_on(observer, "hit")
                observer.round_finished("ok")
            return True
        # Deoptimize mid-chain: the rollback already restored every entry;
        # drop the chain and re-enter the general batched round on this
        # very batch, recording a fresh trace.
        self.deopts += 1
        state.plan = None
        state.signature = None
        state.confirmations = 0
        if observer is not None:
            self._observe_on(observer, "deopt")
            observer.round_finished("deopt")
        self._begin_recording(state, None, dropped)
        return None

    @staticmethod
    def _run_chain(plan: PropagationPlanChain,
                   entries: List[Tuple[Any, Any, Any]],
                   shadow: Any = None) -> Optional[List[Tuple[Any, Any, Any]]]:
        """Replay a plan chain under guards.

        Returns the applied undo list on success (island-structured
        batches keep it for their whole-batch rollback), ``None`` when a
        guard failed and the chain rolled itself back.
        """
        undo: List[Tuple[Any, Any, Any]] = []
        index = 0
        try:
            for step in plan.steps:
                kind = step[0]
                if kind == "w":
                    _, target, constraint, derive, just, was_none = step
                    derived = derive()
                    if derived is NOT_DERIVED \
                            or (derived is None) != was_none \
                            or target.classify_propagated(
                                derived, constraint) != "apply":
                        raise _GuardFailure
                    undo.append((target, target.last_set_by,
                                 target.raw_value))
                    target._store(derived, just)
                elif kind == "e":
                    variable, value, just = entries[index]
                    index += 1
                    if (value is None) != step[2]:
                        raise _GuardFailure
                    undo.append((variable, variable.last_set_by,
                                 variable.raw_value))
                    variable._store(value, just)
                elif kind == "c":
                    if not step[1].is_satisfied():
                        raise _GuardFailure
                elif kind == "i":
                    _, target, constraint, derive = step
                    derived = derive()
                    if derived is NOT_DERIVED \
                            or target.classify_propagated(
                                derived, constraint) != "ignore":
                        raise _GuardFailure
                else:  # "g": the constraint must still have no inference
                    if not step[2]():
                        raise _GuardFailure
        except _GuardFailure:
            for var, just, val in reversed(undo):
                var._store(val, just)
            return None
        except BaseException:
            # Defective derivation/check: restore, then surface — the
            # same contract as the general engine's error path.
            for var, just, val in reversed(undo):
                var._store(val, just)
            raise
        if shadow is not None and undo:
            shadow.absorb_undo(undo)
        return undo

    @staticmethod
    def _run_plan(plan: PropagationPlan, variable: Any, value: Any,
                  justification: Any, shadow: Any = None) -> bool:
        """Replay the plan under guards; False means rolled back."""
        if (value is None) != plan.entry_none:
            return False  # nothing stored yet: a free deopt
        undo: List[Tuple[Any, Any, Any]] = [
            (variable, variable.last_set_by, variable.raw_value)]
        variable._store(value, justification)
        try:
            for step in plan.steps:
                kind = step[0]
                if kind == "w":
                    _, target, constraint, derive, just, was_none = step
                    derived = derive()
                    if derived is NOT_DERIVED \
                            or (derived is None) != was_none \
                            or target.classify_propagated(
                                derived, constraint) != "apply":
                        raise _GuardFailure
                    undo.append((target, target.last_set_by,
                                 target.raw_value))
                    target._store(derived, just)
                elif kind == "c":
                    if not step[1].is_satisfied():
                        raise _GuardFailure
                elif kind == "i":
                    _, target, constraint, derive = step
                    derived = derive()
                    if derived is NOT_DERIVED \
                            or target.classify_propagated(
                                derived, constraint) != "ignore":
                        raise _GuardFailure
                else:  # "g": the constraint must still have no inference
                    if not step[2]():
                        raise _GuardFailure
        except _GuardFailure:
            for var, just, val in reversed(undo):
                var._store(val, just)
            return False
        except BaseException:
            # Defective derivation/check: restore, then surface — the
            # same contract as the general engine's error path.
            for var, just, val in reversed(undo):
                var._store(val, just)
            raise
        if shadow is not None and undo:
            shadow.absorb_undo(undo)
        return True

    # -- observability ------------------------------------------------------

    def _observe(self, kind: str, count: int = 1) -> None:
        observer = self.context.observer
        if observer is not None:
            self._observe_on(observer, kind, count)

    @staticmethod
    def _observe_on(observer: Any, kind: str, count: int = 1) -> None:
        hook = getattr(observer, "plan_event", None)
        if hook is not None:
            hook(kind, count)


def plan_cache_for(context: PropagationContext) -> PlanCache:
    """The context's plan cache, creating one on first use."""
    existing = getattr(context, "plan_cache", None)
    if isinstance(existing, PlanCache):
        return existing
    return PlanCache(context)
