"""Constraint network compilation (thesis section 9.3, suggestion 3).

"Constraint networks can be compiled to improve the efficiency of
constraint propagation.  Compilation of constraint networks can take
several forms, ranging from simple topological sorts of the constraint
networks to complete proceduralization of the constraints."

This module implements both ends of that range for *acyclic functional*
networks (the delay networks of chapter 7 are the motivating case):

* :class:`CompiledNetwork` — an evaluation *plan*: the functional
  constraints reachable from a set of input variables, topologically
  sorted so one linear pass computes every derived value (no visited
  dictionaries, no agendas, no per-assignment spreading);
* :meth:`CompiledNetwork.proceduralize` — complete proceduralization:
  generates and ``compile()``s a single Python function whose body is
  the straight-line sequence of compute calls.

Compiled evaluation trades the declarative machinery's generality
(violation detection, rollback, incremental wavefronts) for raw speed —
the "tradeoff between flexibility ... and efficiency and rigidity of
procedural constraints" the thesis discusses in section 6.5.2.  The
``write_back`` entry point re-installs results into the variables with
propagation disabled, for callers that accept that trade.

:mod:`repro.core.plancache` occupies the middle of the same spectrum
*without* giving up the trade: it proceduralizes whole propagation rounds
automatically from recorded traces, but keeps violation detection and
rollback through guards and deoptimization.  Use ``CompiledNetwork`` for
batch evaluation of a known functional subnet; use the plan cache when
the interactive assignment path itself must stay fast.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from .functional import FunctionalConstraint
from .justification import APPLICATION
from .variable import Variable


class CompilationError(ValueError):
    """The network cannot be compiled (cyclic, or not purely functional)."""


class CompiledNetwork:
    """A topologically sorted evaluation plan over functional constraints.

    Parameters
    ----------
    inputs:
        The independent variables; every other variable reachable through
        functional constraints becomes a derived slot of the plan.
    """

    def __init__(self, inputs: Sequence[Variable]) -> None:
        self.inputs: List[Variable] = list(inputs)
        self.constraints: List[FunctionalConstraint] = []
        self.derived: List[Variable] = []
        observer = self._observer()
        if observer is None:
            self._collect_and_sort()
        else:
            with observer.compile_span("compile", inputs=len(self.inputs)):
                self._collect_and_sort()

    @property
    def context(self) -> Optional[Any]:
        """The propagation context of the plan's input variables."""
        return self.inputs[0].context if self.inputs else None

    def _observer(self) -> Optional[Any]:
        context = self.context
        return getattr(context, "observer", None) if context is not None \
            else None

    # -- construction -----------------------------------------------------------

    def _collect_and_sort(self) -> None:
        """Gather reachable functional constraints; topo-sort by producer."""
        producers: Dict[int, FunctionalConstraint] = {}
        frontier = list(self.inputs)
        seen_variables = {id(v) for v in self.inputs}
        reachable: List[FunctionalConstraint] = []
        seen_constraints: set = set()
        while frontier:
            variable = frontier.pop()
            for constraint in variable.all_constraints():
                if not isinstance(constraint, FunctionalConstraint):
                    continue
                if id(constraint) in seen_constraints:
                    continue
                if variable is constraint.result_variable:
                    continue  # only follow input -> result direction
                seen_constraints.add(id(constraint))
                reachable.append(constraint)
                result = constraint.result_variable
                producers[id(result)] = constraint
                if id(result) not in seen_variables:
                    seen_variables.add(id(result))
                    frontier.append(result)

        # Kahn's algorithm over the reachable producers.
        input_ids = {id(v) for v in self.inputs}
        remaining: Dict[int, int] = {}
        dependents: Dict[int, List[FunctionalConstraint]] = {}
        for constraint in reachable:
            count = 0
            for argument in constraint.inputs:
                if id(argument) in producers:
                    count += 1
                    dependents.setdefault(id(argument), []).append(constraint)
                elif id(argument) not in input_ids:
                    # an external constant input: treated as already known
                    pass
            remaining[id(constraint)] = count

        order: List[FunctionalConstraint] = []
        ready = [c for c in reachable if remaining[id(c)] == 0]
        while ready:
            constraint = ready.pop()
            order.append(constraint)
            result = constraint.result_variable
            for dependent in dependents.get(id(result), []):
                remaining[id(dependent)] -= 1
                if remaining[id(dependent)] == 0:
                    ready.append(dependent)
        if len(order) != len(reachable):
            raise CompilationError(
                "functional network contains a cycle; cannot compile")
        self.constraints = order
        self.derived = [c.result_variable for c in order]

    # -- evaluation ---------------------------------------------------------------

    def evaluate(self, input_values: Optional[Dict[Variable, Any]] = None
                 ) -> Dict[Variable, Any]:
        """One linear pass: values for every derived variable.

        ``input_values`` overrides current variable values; unspecified
        inputs (and external constants) read their stored values.  The
        network itself is not modified.

        A :class:`~repro.core.control.PropagationControl` installed on
        the inputs' context composes with the plan: constraints the
        control disables are skipped — they stay inert through the
        compiled path exactly as they do in the declarative engine, and
        their downstream consumers read the variables' stored values.
        """
        values: Dict[int, Any] = {}
        if input_values:
            for variable, value in input_values.items():
                values[id(variable)] = value

        def value_of(variable: Variable) -> Any:
            if id(variable) in values:
                return values[id(variable)]
            return variable.value

        context = self.context
        control = getattr(context, "control", None) if context is not None \
            else None

        results: Dict[Variable, Any] = {}
        for constraint in self.constraints:
            if control is not None and not control.allows(constraint):
                continue  # disabled: neither compute nor overwrite
            arguments = [value_of(v) for v in constraint.inputs]
            if any(a is None for a in arguments):
                result = None
            else:
                result = constraint.compute(arguments)
            values[id(constraint.result_variable)] = result
            results[constraint.result_variable] = result
        return results

    def write_back(self, input_values: Optional[Dict[Variable, Any]] = None
                   ) -> Dict[Variable, Any]:
        """Evaluate and store the results into the derived variables.

        Storage happens with propagation disabled — the compiled plan has
        already performed the equivalent propagation.  Inputs passed in
        ``input_values`` are stored too.

        When a propagation round is already running (a compiled plan
        invoked from a hook or handler mid-round), the stores instead join
        the active round's event queue via ``context.assign``: they are
        recorded in the round's visited set, so a later violation rolls
        them back with everything else.
        """
        observer = self._observer()
        if observer is None:
            return self._write_back(input_values)
        with observer.compile_span("write_back",
                                   constraints=len(self.constraints)):
            return self._write_back(input_values)

    def _write_back(self, input_values: Optional[Dict[Variable, Any]]
                    ) -> Dict[Variable, Any]:
        results = self.evaluate(input_values)
        context = self.context
        if context is None:
            return results

        def store_all() -> None:
            if input_values:
                for variable, value in input_values.items():
                    variable.set(value, APPLICATION)
            for variable, value in results.items():
                if value is not None:
                    variable.set(value, APPLICATION)

        if context.in_round:
            store_all()
        else:
            with context.propagation_disabled():
                store_all()
        return results

    # -- complete proceduralization ---------------------------------------------------

    def proceduralize(self) -> Callable[..., Dict[str, Any]]:
        """Generate one straight-line Python function for the whole plan.

        The function takes the input variables' values as positional
        arguments (in ``self.inputs`` order) and returns a dict mapping
        derived slot names to values.  Generated via real source-code
        compilation — the "complete proceduralization" pole of the
        thesis's compilation spectrum.
        """
        slot_names: Dict[int, str] = {}
        for index, variable in enumerate(self.inputs):
            slot_names[id(variable)] = f"in_{index}"
        namespace: Dict[str, Any] = {}
        lines = ["def _compiled({}):".format(
            ", ".join(slot_names[id(v)] for v in self.inputs))]
        for index, constraint in enumerate(self.constraints):
            fn_name = f"_fn_{index}"
            namespace[fn_name] = constraint.compute
            argument_exprs = []
            for argument in constraint.inputs:
                name = slot_names.get(id(argument))
                if name is None:  # external constant: freeze current value
                    name = f"const_{len(namespace)}"
                    namespace[name] = argument.value
                    slot_names[id(argument)] = name
                argument_exprs.append(name)
            result_name = f"d_{index}"
            slot_names[id(constraint.result_variable)] = result_name
            lines.append(f"    {result_name} = {fn_name}"
                         f"([{', '.join(argument_exprs)}])")
        result_items = ", ".join(
            f"{slot_names[id(c.result_variable)]!r}: "
            f"{slot_names[id(c.result_variable)]}"
            for c in self.constraints)
        lines.append(f"    return {{{result_items}}}")
        source = "\n".join(lines)
        code = compile(source, "<compiled-constraint-network>", "exec")
        exec(code, namespace)
        compiled = namespace["_compiled"]
        compiled.source = source
        compiled.slot_of = {variable: slot_names[id(variable)]
                            for variable in self.derived}
        return compiled


def compile_network(inputs: Sequence[Variable]) -> CompiledNetwork:
    """Compile the functional network downstream of ``inputs``."""
    return CompiledNetwork(inputs)
