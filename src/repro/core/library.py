"""General-purpose non-functional constraints.

These propagate immediately when activated (first-come-first-served,
section 4.2.1) because their propagation direction depends on which
variable changed.  A ``None`` value means "unknown" throughout: unknowns
are never propagated and never violate a relation.
"""

from __future__ import annotations

from typing import Any, List

from .constraint import Constraint


class EqualityConstraint(Constraint):
    """All arguments must hold equal values (Fig. 4.4).

    Propagation sets every other argument to the changed variable's value;
    the dependency record is the single activating variable.
    """

    plan_silent_on_none = True

    def plan_derivation(self, target: Any, changed: Any):
        """Plan-cache certification: forward the activating value."""
        if changed is None or target is changed \
                or changed not in self._arguments:
            return None
        from .plancache import NOT_DERIVED

        def derive() -> Any:
            value = changed.value
            if value is None:
                return NOT_DERIVED  # the engine would stay silent
            return value

        return derive

    def immediate_inference_by_changing(self, variable: Any) -> None:
        new_value = variable.value
        if new_value is None:
            return
        for argument in self._arguments:
            if argument is variable:
                continue
            argument.set_propagated(new_value, self, dependency_record=variable)

    def is_satisfied(self) -> bool:
        values = self.non_nil_values()
        if len(values) < 2:
            return True
        first = values[0]
        return all(value == first for value in values[1:])

    def test_membership_of(self, variable: Any, dependency_record: Any) -> bool:
        return dependency_record is variable


class CompatibleConstraint(Constraint):
    """All arguments must hold pairwise *compatible* values.

    Compatibility is delegated to the values themselves via an
    ``is_compatible_with`` method (the signal-type objects of section 7.1
    provide it).  Propagation pushes the changed value to the other
    arguments; variables with an abstraction-aware overwrite rule (signal
    type variables) then keep the least abstract of the two.
    """

    plan_silent_on_none = True

    def plan_derivation(self, target: Any, changed: Any):
        """Plan-cache certification: forward the compatible value.

        An incompatibility deopts (``NOT_DERIVED``) rather than raising:
        the general engine owns violation reporting.
        """
        if changed is None or target is changed \
                or changed not in self._arguments:
            return None
        from .plancache import NOT_DERIVED

        def derive() -> Any:
            value = changed.value
            if value is None:
                return NOT_DERIVED
            current = target.value
            if current is not None and not _compatible(current, value):
                return NOT_DERIVED
            return value

        return derive

    def immediate_inference_by_changing(self, variable: Any) -> None:
        new_value = variable.value
        if new_value is None:
            return
        for argument in self._arguments:
            if argument is variable:
                continue
            current = argument.value
            if current is not None and not _compatible(current, new_value):
                self.violate(argument, new_value,
                             reason=f"{new_value!r} incompatible with "
                                    f"{current!r} at {argument.qualified_name()}")
            argument.set_propagated(new_value, self, dependency_record=variable)

    def is_satisfied(self) -> bool:
        values = self.non_nil_values()
        for i, a in enumerate(values):
            for b in values[i + 1:]:
                if not _compatible(a, b):
                    return False
        return True

    def test_membership_of(self, variable: Any, dependency_record: Any) -> bool:
        return dependency_record is variable


def _compatible(a: Any, b: Any) -> bool:
    probe = getattr(a, "is_compatible_with", None)
    if callable(probe):
        return bool(probe(b))
    return a == b


class UpdateConstraint(Constraint):
    """Erase derived values when the data they depend on changes (§6.5.1).

    ``watched`` variables are the inputs; ``targets`` are property
    variables holding derived data.  Whenever a watched variable changes,
    every target is reset to ``None``; implicit invocation then
    recalculates targets lazily on their next read.
    """

    def __init__(self, watched: List[Any], targets: List[Any],
                 attach: bool = True) -> None:
        self._watch_count = len(watched)
        super().__init__(*watched, *targets, attach=attach)

    @property
    def watched(self) -> List[Any]:
        return self._arguments[:self._watch_count]

    @property
    def targets(self) -> List[Any]:
        return self._arguments[self._watch_count:]

    def reinitialize_variables(self) -> bool:
        # Declaring the dependency must not erase already-valid caches:
        # attach without the usual re-propagation (targets only go stale
        # when a watched variable actually changes).
        return True

    def immediate_inference_by_changing(self, variable: Any) -> None:
        if variable in self.targets:
            return  # a recalculated target does not erase its siblings
        for target in self.targets:
            # raw access: probing a lazy property variable must not make
            # it recalculate just so we can erase it again
            if target.raw_value is not None:
                target.set_propagated(None, self, dependency_record=variable)

    def is_satisfied(self) -> bool:
        return True

    def test_membership_of(self, variable: Any, dependency_record: Any) -> bool:
        return dependency_record is variable
