"""Constraint satisfaction beyond local propagation (section 9.3, sugg. 4).

Propagation only ever *checks* values using local information; the thesis
names constraint satisfaction — solving networks by global consideration
— as the natural extension, and chapter 2 surveys the classic methods it
has in mind (ThingLab's one-pass planning and relaxation, interval-style
reasoning in EL).  This module provides three solvers over the same
constraint objects the propagation engine uses:

* :class:`IntervalSolver` — bounds propagation to a fixpoint: each
  constraint narrows intervals of its arguments (arc-consistency style);
  detects infeasible networks and can extract point solutions when every
  interval collapses.
* :func:`plan_one_pass` / :func:`solve_one_pass` — ThingLab's one-pass
  method: order the constraints so each is satisfied by computing exactly
  one still-free variable; fails on shapes that need simultaneous
  solution.
* :class:`RelaxationSolver` — numeric relaxation: minimise the summed
  squared residuals of all constraints over the free variables
  (scipy.optimize), the fallback ThingLab uses when one-pass planning
  fails.

Solvers *propose* assignments; committing them goes through the normal
engine (``set``) so every other constraint still gets its say.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .constraint import Constraint
from .functional import (
    FunctionalConstraint,
    ScaleOffsetConstraint,
    UniAdditionConstraint,
    UniMaximumConstraint,
    UniMinimumConstraint,
)
from .justification import APPLICATION
from .library import EqualityConstraint
from .predicates import (
    LowerBoundConstraint,
    OrderingConstraint,
    RangeConstraint,
    UpperBoundConstraint,
)
from .variable import Variable

INF = math.inf


class Interval:
    """A closed numeric interval [low, high]; empty when low > high."""

    __slots__ = ("low", "high")

    def __init__(self, low: float = -INF, high: float = INF) -> None:
        self.low = low
        self.high = high

    @classmethod
    def exactly(cls, value: float) -> "Interval":
        return cls(value, value)

    def is_empty(self) -> bool:
        return self.low > self.high

    def is_point(self) -> bool:
        return self.low == self.high

    def intersect(self, other: "Interval") -> "Interval":
        return Interval(max(self.low, other.low), min(self.high, other.high))

    def __add__(self, other: "Interval") -> "Interval":
        return Interval(self.low + other.low, self.high + other.high)

    def __sub__(self, other: "Interval") -> "Interval":
        return Interval(self.low - other.high, self.high - other.low)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Interval)
                and (self.low, self.high) == (other.low, other.high))

    def __repr__(self) -> str:
        return f"[{self.low}, {self.high}]"


class Infeasible(Exception):
    """The network admits no solution (an interval became empty)."""

    def __init__(self, variable: Any, constraint: Any = None) -> None:
        self.variable = variable
        self.constraint = constraint
        super().__init__(f"no feasible value for {variable!r}"
                         + (f" under {constraint!r}" if constraint else ""))


def collect_network(variables: Iterable[Variable]
                    ) -> Tuple[List[Variable], List[Constraint]]:
    """The connected variables and constraints reachable from ``variables``."""
    seen_vars: List[Variable] = []
    seen_var_ids: Set[int] = set()
    constraints: List[Constraint] = []
    seen_constraint_ids: Set[int] = set()
    stack = list(variables)
    while stack:
        variable = stack.pop()
        if id(variable) in seen_var_ids:
            continue
        seen_var_ids.add(id(variable))
        seen_vars.append(variable)
        for constraint in variable.all_constraints():
            if id(constraint) in seen_constraint_ids:
                continue
            seen_constraint_ids.add(id(constraint))
            constraints.append(constraint)
            for argument in getattr(constraint, "arguments", []):
                if id(argument) not in seen_var_ids:
                    stack.append(argument)
    return seen_vars, constraints


# ---------------------------------------------------------------------------
# Interval solving
# ---------------------------------------------------------------------------

class IntervalSolver:
    """Bounds propagation to a fixpoint over a constraint network.

    Known values become point intervals; narrowing rules per constraint
    type tighten the rest.  ``solve`` raises :class:`Infeasible` when an
    interval empties; :meth:`point_solution` extracts values for every
    variable whose interval collapsed.
    """

    def __init__(self, variables: Iterable[Variable],
                 max_iterations: int = 1000) -> None:
        self.variables, self.constraints = collect_network(variables)
        self.max_iterations = max_iterations
        self.intervals: Dict[int, Interval] = {}
        for variable in self.variables:
            if isinstance(variable.value, (int, float)) \
                    and not isinstance(variable.value, bool):
                self.intervals[id(variable)] = Interval.exactly(variable.value)
            else:
                self.intervals[id(variable)] = Interval()

    def interval_of(self, variable: Variable) -> Interval:
        return self.intervals[id(variable)]

    def _narrow(self, variable: Variable, tighter: Interval,
                constraint: Any) -> bool:
        current = self.intervals[id(variable)]
        updated = current.intersect(tighter)
        if updated.is_empty():
            raise Infeasible(variable, constraint)
        if updated == current:
            return False
        self.intervals[id(variable)] = updated
        return True

    def solve(self) -> Dict[Variable, Interval]:
        """Iterate all narrowing rules to a fixpoint."""
        for _iteration in range(self.max_iterations):
            changed = False
            for constraint in self.constraints:
                changed |= self._apply(constraint)
            if not changed:
                break
        return {variable: self.intervals[id(variable)]
                for variable in self.variables}

    def point_solution(self) -> Dict[Variable, float]:
        """Values for every variable whose interval collapsed to a point."""
        self.solve()
        return {variable: self.intervals[id(variable)].low
                for variable in self.variables
                if self.intervals[id(variable)].is_point()}

    # -- narrowing rules per constraint kind ------------------------------------

    def _apply(self, constraint: Any) -> bool:
        if isinstance(constraint, EqualityConstraint):
            return self._apply_equality(constraint)
        if isinstance(constraint, UniAdditionConstraint):
            return self._apply_addition(constraint)
        if isinstance(constraint, ScaleOffsetConstraint):
            return self._apply_scale_offset(constraint)
        if isinstance(constraint, (UniMaximumConstraint, UniMinimumConstraint)):
            return self._apply_extremum(constraint)
        if isinstance(constraint, UpperBoundConstraint):
            return self._narrow(constraint.arguments[0],
                                Interval(-INF, constraint.bound), constraint)
        if isinstance(constraint, LowerBoundConstraint):
            return self._narrow(constraint.arguments[0],
                                Interval(constraint.bound, INF), constraint)
        if isinstance(constraint, RangeConstraint):
            return self._narrow(constraint.arguments[0],
                                Interval(constraint.low, constraint.high),
                                constraint)
        if isinstance(constraint, OrderingConstraint):
            return self._apply_ordering(constraint)
        return False  # unknown kinds contribute no narrowing

    def _apply_equality(self, constraint: EqualityConstraint) -> bool:
        arguments = constraint.arguments
        meet = Interval()
        for argument in arguments:
            meet = meet.intersect(self.intervals[id(argument)])
        if meet.is_empty():
            raise Infeasible(arguments[0], constraint)
        changed = False
        for argument in arguments:
            changed |= self._narrow(argument, meet, constraint)
        return changed

    def _apply_addition(self, constraint: UniAdditionConstraint) -> bool:
        result = constraint.result_variable
        inputs = constraint.inputs
        changed = False
        total = Interval(0.0, 0.0)
        for argument in inputs:
            total = total + self.intervals[id(argument)]
        changed |= self._narrow(result, total, constraint)
        # backward: each input = result - sum(others)
        for argument in inputs:
            others = Interval(0.0, 0.0)
            for other in inputs:
                if other is not argument:
                    others = others + self.intervals[id(other)]
            changed |= self._narrow(
                argument, self.intervals[id(result)] - others, constraint)
        return changed

    def _apply_scale_offset(self, constraint: ScaleOffsetConstraint) -> bool:
        result = constraint.result_variable
        (source,) = constraint.inputs
        scale, offset = constraint.scale, constraint.offset
        src = self.intervals[id(source)]
        if scale >= 0:
            forward = Interval(scale * src.low + offset,
                               scale * src.high + offset)
        else:
            forward = Interval(scale * src.high + offset,
                               scale * src.low + offset)
        changed = self._narrow(result, forward, constraint)
        if scale != 0:
            res = self.intervals[id(result)]
            bounds = sorted(((res.low - offset) / scale,
                             (res.high - offset) / scale))
            changed |= self._narrow(source, Interval(*bounds), constraint)
        return changed

    def _apply_extremum(self, constraint: Any) -> bool:
        result = constraint.result_variable
        inputs = constraint.inputs
        is_max = isinstance(constraint, UniMaximumConstraint)
        lows = [self.intervals[id(v)].low for v in inputs]
        highs = [self.intervals[id(v)].high for v in inputs]
        if is_max:
            forward = Interval(max(lows), max(highs))
        else:
            forward = Interval(min(lows), min(highs))
        changed = self._narrow(result, forward, constraint)
        res = self.intervals[id(result)]
        for argument in inputs:
            if is_max:
                changed |= self._narrow(argument, Interval(-INF, res.high),
                                        constraint)
            else:
                changed |= self._narrow(argument, Interval(res.low, INF),
                                        constraint)
        return changed

    def _apply_ordering(self, constraint: OrderingConstraint) -> bool:
        first, second = constraint.arguments
        hi = self.intervals[id(second)].high
        lo = self.intervals[id(first)].low
        changed = self._narrow(first, Interval(-INF, hi), constraint)
        changed |= self._narrow(second, Interval(lo, INF), constraint)
        return changed


# ---------------------------------------------------------------------------
# One-pass planning (ThingLab, section 2.2.3)
# ---------------------------------------------------------------------------

class PlanStep:
    """Satisfy one constraint by computing one target variable."""

    __slots__ = ("constraint", "target", "method")

    def __init__(self, constraint: Any, target: Variable,
                 method: Callable[[], Any]) -> None:
        self.constraint = constraint
        self.target = target
        self.method = method

    def __repr__(self) -> str:
        return f"<PlanStep {self.target.qualified_name()} via " \
               f"{type(self.constraint).__name__}>"


def plan_one_pass(variables: Iterable[Variable]) -> Optional[List[PlanStep]]:
    """Order constraints so each assigns exactly one free variable.

    Known variables are those with non-None values.  Returns None when no
    such ordering exists (the network needs simultaneous solution — the
    case where ThingLab falls back to relaxation).
    """
    _, constraints = collect_network(variables)
    known: Set[int] = set()
    for variable in _:
        if variable.value is not None:
            known.add(id(variable))
    pending = [c for c in constraints if _solvable_kinds(c)]
    plan: List[PlanStep] = []
    progress = True
    while pending and progress:
        progress = False
        for constraint in list(pending):
            step = _plan_step(constraint, known)
            if step is not None:
                plan.append(step)
                known.add(id(step.target))
                pending.remove(constraint)
                progress = True
            elif _fully_known(constraint, known):
                pending.remove(constraint)
                progress = True
    if pending:
        return None
    return plan


def _solvable_kinds(constraint: Any) -> bool:
    return isinstance(constraint, (EqualityConstraint, FunctionalConstraint))


def _fully_known(constraint: Any, known: Set[int]) -> bool:
    return all(id(v) in known or v.value is not None
               for v in constraint.arguments)


def _plan_step(constraint: Any, known: Set[int]) -> Optional[PlanStep]:
    def is_known(variable: Variable) -> bool:
        return id(variable) in known or variable.value is not None

    unknowns = [v for v in constraint.arguments if not is_known(v)]
    if len(unknowns) != 1:
        return None
    target = unknowns[0]
    if isinstance(constraint, EqualityConstraint):
        source = next(v for v in constraint.arguments if v is not target)
        return PlanStep(constraint, target, lambda s=source: s.value)
    if isinstance(constraint, FunctionalConstraint):
        if target is not constraint.result_variable:
            return None  # cannot invert an arbitrary function
        return PlanStep(
            constraint, target,
            lambda c=constraint: c.compute([v.value for v in c.inputs]))
    return None


def solve_one_pass(variables: Iterable[Variable]) -> bool:
    """Plan and execute the one-pass method; commit through the engine.

    Returns False when no one-pass ordering exists or a committed value
    triggers a violation.
    """
    plan = plan_one_pass(variables)
    if plan is None:
        return False
    for step in plan:
        value = step.method()
        if value is None:
            continue
        if not step.target.set(value, APPLICATION):
            return False
    return True


# ---------------------------------------------------------------------------
# Relaxation
# ---------------------------------------------------------------------------

class RelaxationSolver:
    """Least-squares relaxation over the free variables of a network.

    Each supported constraint contributes residuals; scipy minimises
    their squared sum starting from an initial guess.  ``solve`` returns
    proposed values; ``commit`` stores them through the engine so the
    final satisfaction sweep still validates them.
    """

    def __init__(self, variables: Iterable[Variable],
                 free: Optional[Sequence[Variable]] = None) -> None:
        self.variables, self.constraints = collect_network(variables)
        if free is None:
            free = [v for v in self.variables if v.value is None]
        self.free: List[Variable] = list(free)

    def residuals(self, values: Dict[int, float]) -> List[float]:
        def value_of(variable: Variable) -> float:
            if id(variable) in values:
                return values[id(variable)]
            return float(variable.value if variable.value is not None else 0.0)

        out: List[float] = []
        for constraint in self.constraints:
            out.extend(_constraint_residuals(constraint, value_of))
        return out

    def solve(self, initial_guess: float = 0.0,
              tolerance: float = 1e-9) -> Optional[Dict[Variable, float]]:
        """Minimise residuals; None when no satisfying point was found."""
        if not self.free:
            return {} if not any(self.residuals({})) else None
        # Both solver dependencies are optional: everything up to the
        # numeric minimisation works on the stdlib alone.
        import numpy as np
        from scipy.optimize import least_squares

        x0 = np.full(len(self.free), float(initial_guess))

        def fun(x: np.ndarray) -> np.ndarray:
            values = {id(v): x[i] for i, v in enumerate(self.free)}
            return np.asarray(self.residuals(values), dtype=float)

        result = least_squares(fun, x0)
        if not result.success or float(np.sum(result.fun ** 2)) > tolerance:
            return None
        return {variable: float(result.x[i])
                for i, variable in enumerate(self.free)}

    def commit(self, solution: Dict[Variable, float]) -> bool:
        ok = True
        for variable, value in solution.items():
            ok = variable.set(value, APPLICATION) and ok
        return ok


def _constraint_residuals(constraint: Any,
                          value_of: Callable[[Variable], float]
                          ) -> List[float]:
    if isinstance(constraint, EqualityConstraint):
        values = [value_of(v) for v in constraint.arguments]
        return [values[0] - v for v in values[1:]]
    if isinstance(constraint, FunctionalConstraint):
        computed = constraint.compute([value_of(v)
                                       for v in constraint.inputs])
        return [value_of(constraint.result_variable) - computed]
    if isinstance(constraint, UpperBoundConstraint):
        excess = value_of(constraint.arguments[0]) - constraint.bound
        return [max(0.0, excess)]
    if isinstance(constraint, LowerBoundConstraint):
        deficit = constraint.bound - value_of(constraint.arguments[0])
        return [max(0.0, deficit)]
    if isinstance(constraint, RangeConstraint):
        value = value_of(constraint.arguments[0])
        return [max(0.0, value - constraint.high),
                max(0.0, constraint.low - value)]
    if isinstance(constraint, OrderingConstraint):
        first, second = (value_of(v) for v in constraint.arguments)
        return [max(0.0, first - second)]
    return []
