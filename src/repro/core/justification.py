"""Justifications for variable values.

Every value held by a :class:`~repro.core.variable.Variable` carries a
*justification* recording where the value came from.  The thesis (section
4.2.4) distinguishes two kinds:

* **External** justifications — symbols naming a source outside the
  constraint networks.  The thesis uses ``#USER`` for designer-entered
  values and ``#APPLICATION`` for tool-calculated values; STEM's
  integration adds ``#UPDATE`` (procedural update-constraint resets),
  ``#TENTATIVE`` (module-selection trial assignments) and ``#DEFAULT``
  (class-level default values propagated into instances).

* **Propagated** justifications — a (source constraint, dependency record)
  pair attached by a constraint during propagation.  The dependency record
  is opaque to everything except the constraint that created it; it is
  interpreted by that constraint during dependency analysis (see
  :mod:`repro.core.dependency`).

The justification of a variable's current value decides whether a newly
propagated value may *overwrite* it.  The default precedence rule of the
thesis — user-specified values outrank propagated and calculated values —
is implemented by :func:`may_overwrite`; variable subclasses may replace it
(e.g. the least-abstract-wins rule of signal type variables, section 7.1).
"""

from __future__ import annotations

from typing import Any, Optional


class ExternalJustification:
    """A named source outside the constraint networks (``#USER`` etc.).

    Instances are interned: each symbol name maps to exactly one object, so
    identity comparison (``justification is USER``) works as it does for
    Smalltalk symbols.
    """

    _interned: dict = {}

    def __new__(cls, name: str) -> "ExternalJustification":
        existing = cls._interned.get(name)
        if existing is not None:
            return existing
        obj = super().__new__(cls)
        obj._name = name
        cls._interned[name] = obj
        return obj

    @property
    def name(self) -> str:
        return self._name

    # Interned symbols copy as themselves, so identity comparisons
    # (``justification is USER``) survive structural clones of a design
    # (e.g. ``copy.deepcopy`` in repro.spaces.search worker setup).
    def __copy__(self) -> "ExternalJustification":
        return self

    def __deepcopy__(self, memo: dict) -> "ExternalJustification":
        return self

    def __reduce__(self):
        return (ExternalJustification, (self._name,))

    def __repr__(self) -> str:
        return f"#{self._name}"


#: Designer-entered value; outranks every propagated value by default.
USER = ExternalJustification("USER")
#: Tool-calculated value.
APPLICATION = ExternalJustification("APPLICATION")
#: Value erased/reset by a procedural update-constraint.
UPDATE = ExternalJustification("UPDATE")
#: Trial value assigned during module-selection testing (section 8.2).
TENTATIVE = ExternalJustification("TENTATIVE")
#: Default value propagated from a cell-class parameter definition.
DEFAULT = ExternalJustification("DEFAULT")
#: Value fixed by a cell's realized internal structure (e.g. a signal
#: bit-width implied by an internal net, Fig. 7.1) — as binding as #USER.
STRUCTURE = ExternalJustification("STRUCTURE")

#: External justifications that a propagated value may *not* overwrite.
_PROTECTED = frozenset({"USER", "STRUCTURE"})


class PropagatedJustification:
    """Source-constraint + dependency-record pair for a propagated value.

    Mirrors the thesis's ``Association key:aConstraint value:justification``
    stored in a variable's ``lastSetBy`` field.  ``dependency_record`` is
    whatever the source constraint chose to record (commonly the single
    variable that activated it, or ``None`` for functional constraints whose
    result implicitly depends on every argument).
    """

    __slots__ = ("constraint", "dependency_record")

    def __init__(self, constraint: Any, dependency_record: Any = None) -> None:
        self.constraint = constraint
        self.dependency_record = dependency_record

    def __repr__(self) -> str:
        return f"PropagatedJustification({self.constraint!r})"


Justification = Any  # ExternalJustification | PropagatedJustification | None


def source_constraint(justification: Justification) -> Optional[Any]:
    """Return the constraint that set a value, or ``None`` for external values."""
    if isinstance(justification, PropagatedJustification):
        return justification.constraint
    return None


def is_user(justification: Justification) -> bool:
    """True if the value was entered by the designer (``#USER``)."""
    return justification is USER


def is_propagated(justification: Justification) -> bool:
    """True if the value was produced by constraint propagation."""
    return isinstance(justification, PropagatedJustification)


def may_overwrite(current: Justification) -> bool:
    """Default overwrite rule: may propagation replace a ``current`` value?

    User-specified values have higher priority than propagated and
    calculated values (thesis section 4.2.4); everything else yields to
    propagation.
    """
    if isinstance(current, ExternalJustification):
        return current.name not in _PROTECTED
    return True
