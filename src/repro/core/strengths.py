"""Constraint strengths (thesis section 4.2.4's deferred design).

"The default overwrite rule in the system is that user specified values
have higher priority over propagated and calculated values.  However,
subclasses of variables can redefine this rule of precedence.  For
example, variables can recognize different strengths of constraints,
and allow one type of constraints to overwrite values from another type
of constraints, but not the other way around.  This is not done
currently."  — here it is.

A *strength* is an integer level; higher overwrites lower.  Constraints
opt in by carrying a ``strength`` attribute (or by subclassing with one);
:class:`StrengthAwareVariable` resolves propagated-vs-propagated
conflicts by strength instead of violating, while still protecting
``#USER`` values (which sit at :data:`USER_STRENGTH` unless configured
otherwise).

This is the classic constraint-hierarchy idea (required > strong >
medium > weak > weakest), as later formalised by ThingLab's successors.
"""

from __future__ import annotations

from typing import Any, Optional

from .justification import is_propagated, is_user
from .variable import Variable

#: Conventional strength levels.
WEAKEST = 0
WEAK = 10
MEDIUM = 20
STRONG = 30
REQUIRED = 40

#: Effective strength of designer-entered (#USER) values.
USER_STRENGTH = REQUIRED

#: Strength assumed for constraints that do not declare one.
DEFAULT_STRENGTH = MEDIUM


def strength_of_constraint(constraint: Any) -> int:
    """The declared strength of a constraint (default MEDIUM)."""
    return getattr(constraint, "strength", DEFAULT_STRENGTH)


class StrengthAwareVariable(Variable):
    """A variable whose overwrite rule compares constraint strengths.

    Decision table for a propagated value against the current one:

    * equal values — ignore (as always);
    * current unknown — apply;
    * current ``#USER`` — apply only from constraints at least
      :data:`USER_STRENGTH` strong, otherwise violate (the default rule,
      now expressible per-strength);
    * current propagated — apply when the new constraint is at least as
      strong as the one that set it, otherwise **ignore** (a weaker
      opinion silently defers; it is not an inconsistency).

    ``is_satisfied`` sweeps still run, so a deferred weaker constraint
    that is genuinely violated by the stronger value still reports.
    """

    def current_strength(self) -> Optional[int]:
        justification = self._last_set_by
        if is_user(justification):
            return USER_STRENGTH
        if is_propagated(justification):
            return strength_of_constraint(justification.constraint)
        if justification is None and self._value is None:
            return None
        return WEAKEST  # other calculated/external values yield readily

    def classify_propagated(self, value: Any, constraint: Any) -> str:
        if self.values_equal(self._value, value):
            return "ignore"
        if self._value is None:
            return "apply"
        current = self.current_strength()
        incoming = strength_of_constraint(constraint)
        if current is None or incoming >= current:
            return "apply"
        if is_user(self._last_set_by):
            return "violate"  # a too-weak overwrite of a designer value
        return "ignore"  # weaker propagated opinion defers silently


def with_strength(constraint_class: type, strength: int,
                  name: Optional[str] = None) -> type:
    """A subclass of ``constraint_class`` carrying a fixed strength.

    Convenience for declaring e.g. ``WeakEquality =
    with_strength(EqualityConstraint, WEAK)``.
    """
    return type(name or f"{constraint_class.__name__}@{strength}",
                (constraint_class,), {"strength": strength})
