"""Dependency analysis over propagated values.

Section 4.2.4: the justification of a propagated value names the source
constraint and carries a *dependency record* that the source constraint
alone can interpret.  From those records two traversals are built:

* :func:`antecedents` — backward traversal finding every variable and
  constraint responsible for a value (Fig. 4.11),
* :func:`consequences` — forward traversal finding everything that depends
  on a value (Fig. 4.12).

Consequence analysis is what makes constraint removal affordable: when a
constraint or variable leaves the network, every propagated value that
depended on it becomes unjustified and is erased (section 4.2.5).
"""

from __future__ import annotations

from typing import Any, Set


def _is_dependent(variable: Any) -> bool:
    checker = getattr(variable, "is_dependent", None)
    return bool(checker()) if callable(checker) else False


def antecedents(variable: Any, acc: Set[Any] = None) -> Set[Any]:
    """All variables and constraints the value of ``variable`` depends on.

    The result includes ``variable`` itself, intermediate constraints, and
    every contributing variable, mirroring the thesis's ``antecedents:``.
    """
    acc = set() if acc is None else acc
    if variable in acc:
        return acc
    acc.add(variable)
    if _is_dependent(variable):
        justification = variable.last_set_by
        constraint = justification.constraint
        _constraint_antecedents(constraint, variable, acc)
    return acc


def _constraint_antecedents(constraint: Any, variable: Any, acc: Set[Any]) -> None:
    """``antecedents:ofVariable:`` — walk back through one constraint."""
    acc.add(constraint)
    record = variable.last_set_by.dependency_record
    for argument in constraint.arguments:
        if argument is variable:
            continue
        if constraint.test_membership_of(argument, record):
            antecedents(argument, acc)


def consequences(variable: Any, acc: Set[Any] = None) -> Set[Any]:
    """All variables whose values depend on the value of ``variable``.

    Includes ``variable`` itself (as in the thesis's ``consequences:``);
    use :func:`variable_consequences` for the erasure set excluding the
    seed.
    """
    acc = set() if acc is None else acc
    if variable in acc:
        return acc
    acc.add(variable)
    for constraint in variable.constraints:
        constraint_consequences(constraint, variable, acc)
    return acc


def constraint_consequences(constraint: Any, variable: Any,
                            acc: Set[Any] = None) -> Set[Any]:
    """``consequences:ofVariable:`` — values set by ``constraint`` that
    depend on ``variable``, and their downstream consequences."""
    acc = set() if acc is None else acc
    for argument in constraint.arguments:
        if argument is variable or argument in acc:
            continue
        if not _is_dependent(argument):
            continue
        justification = argument.last_set_by
        if justification.constraint is not constraint:
            continue
        if constraint.test_membership_of(variable, justification.dependency_record):
            consequences(argument, acc)
    return acc


def variable_consequences(variable: Any) -> Set[Any]:
    """Every *other* variable depending on ``variable`` (for erasure)."""
    acc = consequences(variable)
    acc.discard(variable)
    return acc
