"""Textual constraint editor (section 5.4).

The thesis's constraint editor is a Smalltalk window for inspecting and
manipulating constraint networks: walking from a variable to its
constraints and back, tracing antecedents and consequences, assigning
values, instantiating or removing constraints, and toggling propagation.
This module provides the same operations programmatically with textual
rendering, suitable both for interactive use (``print(editor.show())``)
and as the default "debugger" attached to violation handling.
"""

from __future__ import annotations

from typing import Any, List, Optional

from . import dependency
from .constraint import Constraint
from .engine import PropagationContext, default_context
from .justification import USER, is_propagated
from .variable import Variable
from .violations import describe


class ConstraintEditor:
    """Walk and edit a constraint network through a current *focus*.

    The focus is either a variable or a constraint; navigation moves it
    along network edges the way the thesis's editor panes do.
    """

    def __init__(self, focus: Any = None,
                 context: Optional[PropagationContext] = None) -> None:
        self.focus = focus
        self.context = context if context is not None else default_context()
        self._trail: List[Any] = []

    # -- navigation ----------------------------------------------------------

    def focus_on(self, obj: Any) -> "ConstraintEditor":
        """Move the focus, remembering the trail for :meth:`back`."""
        if self.focus is not None:
            self._trail.append(self.focus)
        self.focus = obj
        return self

    def back(self) -> "ConstraintEditor":
        if self._trail:
            self.focus = self._trail.pop()
        return self

    def constraints_of_focus(self) -> List[Any]:
        """All constraints associated with the focused variable."""
        self._require(Variable)
        return list(self.focus.all_constraints())

    def variables_of_focus(self) -> List[Any]:
        """All variables associated with the focused constraint."""
        if not hasattr(self.focus, "arguments"):
            raise TypeError("focus is not a constraint")
        return list(self.focus.arguments)

    # -- tracing ---------------------------------------------------------------

    def antecedents(self) -> List[Any]:
        """Everything the focused variable's value depends on."""
        self._require(Variable)
        result = dependency.antecedents(self.focus)
        result.discard(self.focus)
        return sorted(result, key=describe)

    def consequences(self) -> List[Any]:
        """Every variable depending on the focused variable's value."""
        self._require(Variable)
        result = dependency.variable_consequences(self.focus)
        return sorted(result, key=describe)

    # -- editing -----------------------------------------------------------------

    def assign(self, value: Any) -> bool:
        """Assign a user value to the focused variable (with propagation)."""
        self._require(Variable)
        return self.focus.set(value, USER)

    def remove_focused_constraint(self) -> None:
        """Remove the focused constraint from the network."""
        if not isinstance(self.focus, Constraint):
            raise TypeError("focus is not a removable constraint")
        removed = self.focus
        self.focus.remove()
        self.focus = None
        self._trail = [obj for obj in self._trail if obj is not removed]

    def enable_propagation(self) -> None:
        self.context.enabled = True

    def disable_propagation(self) -> None:
        """Set the CPSwitch off (section 5.3)."""
        self.context.enabled = False

    # -- rendering -------------------------------------------------------------------

    def show(self) -> str:
        """Textual rendering of the focus, like the editor's panes."""
        if self.focus is None:
            return "<no focus>"
        if isinstance(self.focus, Variable):
            return self._show_variable(self.focus)
        if hasattr(self.focus, "arguments"):
            return self._show_constraint(self.focus)
        return repr(self.focus)

    def _show_variable(self, variable: Variable) -> str:
        lines = [
            f"variable  {variable.qualified_name()}",
            f"  value:      {variable.value!r}",
            f"  lastSetBy:  {self._justification_text(variable)}",
            "  constraints:",
        ]
        constraints = variable.all_constraints()
        if constraints:
            lines.extend(f"    [{i}] {describe(c)}"
                         for i, c in enumerate(constraints))
        else:
            lines.append("    (none)")
        return "\n".join(lines)

    def _show_constraint(self, constraint: Any) -> str:
        lines = [f"constraint  {describe(constraint)}", "  arguments:"]
        for i, argument in enumerate(constraint.arguments):
            lines.append(f"    [{i}] {argument.qualified_name()} = "
                         f"{argument.value!r}")
        lines.append(f"  satisfied: {constraint.is_satisfied()}")
        return "\n".join(lines)

    def show_network(self, *, max_depth: int = 4,
                     max_nodes: int = 60) -> str:
        """ASCII rendering of the network around the focused variable.

        A breadth-limited tree: variables and the constraints linking
        them, alternating levels, each object printed once (repeats show
        as back-references).  The §9.3 wish for "a graphical display of
        constraint networks", textually.
        """
        self._require(Variable)
        lines: List[str] = []
        seen: set = set()
        count = 0

        def emit(obj: Any, depth: int, via: str) -> None:
            nonlocal count
            if count >= max_nodes:
                return
            indent = "  " * depth
            marker = f" <{via}>" if via else ""
            if id(obj) in seen:
                lines.append(f"{indent}({describe(obj)} ...){marker}")
                return
            seen.add(id(obj))
            count += 1
            if isinstance(obj, Variable):
                lines.append(f"{indent}{obj.qualified_name()} = "
                             f"{obj.value!r}{marker}")
                if depth < max_depth:
                    for constraint in obj.all_constraints():
                        emit(constraint, depth + 1, "constraint")
            else:
                lines.append(f"{indent}[{describe(obj)}]{marker}")
                if depth < max_depth:
                    for argument in getattr(obj, "arguments", []):
                        if argument is not None:
                            emit(argument, depth + 1, "argument")

        emit(self.focus, 0, "")
        if count >= max_nodes:
            lines.append("... (truncated)")
        return "\n".join(lines)

    @staticmethod
    def _justification_text(variable: Variable) -> str:
        justification = variable.last_set_by
        if is_propagated(justification):
            return f"propagated by {describe(justification.constraint)}"
        return repr(justification)

    def _require(self, kind: type) -> None:
        if not isinstance(self.focus, kind):
            raise TypeError(f"focus is not a {kind.__name__}")
