"""Encapsulated computation spaces (Mozart-style what-if exploration).

A :class:`Space` is a speculative child universe over one
:class:`~repro.core.engine.PropagationContext`: it sees the parent's
constraint store, accepts ordinary ``assign`` / ``assign_many`` rounds,
and ends in exactly one of

* :meth:`Space.commit` — the accumulated assignments merge into the
  parent as **one** batched round (through the parent's recorder, so a
  durable session journals a single ``{"op": "batch"}`` frame and
  replay/undo/fingerprint semantics come for free),
* :meth:`Space.discard` — every effect vanishes without a trace: the
  parent is byte-identical (values, justifications, stats, violations,
  journal position) to never having opened the space,
* :meth:`Space.fork` — a nested child space for exploring alternatives
  below the current speculation.

The cloning is copy-on-write: structure (cells, constraints, the
variables themselves) is shared with the parent, and the space records a
**pre-state overlay** — for every variable a round touches while the
space is open, the ``(justification, value)`` it had when first touched.
Three engine seams feed the overlay:

* ``PropagationContext.recorder`` — the space captures each requested
  assignment (tentatively; a violating round drops it again) instead of
  the parent's write-ahead journal,
* ``PropagationContext.shadow`` — the engine reports every non-silent
  round's visited pre-states (``absorb_visited``), rollbacks
  (``round_rolled_back``) and plan-cache replays (``absorb_undo``),
* ``PropagationContext.handler`` — violations inside the space land in
  ``Space.violations``, never in the parent's log.

The plan cache stays installed but is re-bound to a fresh topology
epoch at entry and at close (``bump_topology_epoch``), so plans warmed
inside the space can never replay against the restored parent and vice
versa.

Structural edits (constraint add/remove, cell edits, session undo/redo/
checkpoint) are **not** speculative: a session refuses them while a
space is open, and pure-context users must confine a space to value
rounds.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..core.justification import USER, Justification
from ..core.violations import ViolationHandler, ViolationRecord

__all__ = ["Space", "SpaceError"]


class SpaceError(RuntimeError):
    """Illegal computation-space lifecycle transition."""


class _SpaceViolationHandler(ViolationHandler):
    """Collects speculative violations on the space, silently."""

    def __init__(self, space: "Space") -> None:
        self._space = space

    def handle(self, record: ViolationRecord) -> None:
        self._space.violations.append(record)


class Space:
    """One speculative child universe over ``context``.

    Use as a context manager; leaving the block discards the space
    unless it was committed (or discarded) inside::

        with session.space() as space:
            if space.assign("v:width", 9):
                space.commit()      # one journaled batch on the parent
            # else: falling out of the block discards silently

    Parameters
    ----------
    context:
        The :class:`~repro.core.engine.PropagationContext` to speculate
        over.
    session:
        Optional owning :class:`~repro.session.session.Session`; enables
        string addresses in :meth:`assign` / :meth:`assign_many` and the
        session's structural-operation guard.
    """

    def __init__(self, context: Any, *, session: Any = None,
                 parent: Optional["Space"] = None) -> None:
        self._context = context
        self._session = session
        self._parent = parent
        self.depth = 1 if parent is None else parent.depth + 1
        #: Violation records captured while the space was the handler.
        self.violations: List[ViolationRecord] = []
        self._overlay: Dict[Any, Tuple[Justification, Any]] = {}
        self._log: List[Tuple[Any, Any, Justification]] = []
        self._pending: Optional[int] = None
        self._saved_recorder: Any = None
        self._saved_handler: Any = None
        self._saved_shadow: Any = None
        self._saved_stats: Optional[Dict[str, int]] = None
        self.state = "new"

    # -- lifecycle ----------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self.state in ("committed", "discarded")

    def open(self) -> "Space":
        """Install the space over its context (clone point)."""
        if self.state != "new":
            raise SpaceError(f"cannot reopen a {self.state} space")
        context = self._context
        if context.in_round:
            raise SpaceError("cannot open a space while propagation "
                             "is running")
        if context.shadow is not None and context.shadow is not self._parent:
            raise SpaceError("another space is already open on this "
                             "context; fork() it instead")
        self._saved_recorder = context.recorder
        self._saved_handler = context.handler
        self._saved_shadow = context.shadow
        self._saved_stats = context.stats.snapshot()
        context.recorder = self
        context.handler = _SpaceViolationHandler(self)
        context.shadow = self
        # Plans recorded against the parent must not replay inside the
        # space (their stats deltas and undo lists belong to the parent
        # universe); a fresh epoch isolates the cache both ways.
        context.bump_topology_epoch()
        self.state = "open"
        session = self._session
        if session is not None:
            session._space_depth += 1
        self._observe("fork" if self._parent is not None else "clone")
        self._observe_depth()
        return self

    def __enter__(self) -> "Space":
        return self.open() if self.state == "new" else self

    def __exit__(self, *exc_info: Any) -> None:
        if self.state == "open":
            self.discard()

    def _require_open(self) -> None:
        if self.state != "open":
            raise SpaceError(f"space is {self.state}, not open")
        if self._context.shadow is not self:
            raise SpaceError("a forked child space is still open; close "
                             "it before operating on the parent space")

    # -- speculative rounds -------------------------------------------------

    def _variable(self, target: Any) -> Any:
        if isinstance(target, str):
            if self._session is None:
                raise SpaceError(f"string address {target!r} needs a "
                                 f"session-attached space")
            return self._session._target_variable(target)
        return target

    def assign(self, target: Any, value: Any,
               justification: Justification = USER) -> bool:
        """One speculative external assignment; returns validity.

        A rejected assignment (violation) leaves the space exactly as it
        was — the entry never reaches the commit log.
        """
        self._require_open()
        return self._context.assign(self._variable(target), value,
                                    justification)

    def assign_many(self, assignments: Any,
                    justification: Justification = USER) -> bool:
        """One speculative batched round (all-or-nothing, like the
        engine's :meth:`~repro.core.engine.PropagationContext.assign_many`)."""
        self._require_open()
        resolved = []
        for item in assignments:
            if len(item) == 2:
                target, value = item
                resolved.append((self._variable(target), value,
                                 justification))
            else:
                target, value, just = item
                resolved.append((self._variable(target), value, just))
        return self._context.assign_many(resolved)

    def get(self, target: Any) -> Tuple[Any, Any]:
        """``(value, justification)`` as seen inside the space."""
        variable = self._variable(target)
        return variable.raw_value, variable.last_set_by

    @property
    def log(self) -> List[Tuple[Any, Any, Justification]]:
        """The accepted assignments a commit would merge (copy)."""
        return list(self._log)

    # -- engine seam: PropagationContext.recorder ---------------------------

    def record_assign(self, variable: Any, value: Any,
                      justification: Justification) -> None:
        """Write-ahead capture of one speculative assignment.

        Tentative while the round runs: ``round_rolled_back`` drops it,
        ``absorb_visited`` / ``absorb_undo`` confirm it.  With
        propagation disabled there is no round, so the entry confirms
        immediately (the store is unconditional).
        """
        self._note_pre(variable)
        self._pending = len(self._log)
        self._log.append((variable, value, justification))
        if not self._context.enabled:
            self._pending = None

    def record_batch(self, entries: List[Tuple[Any, Any, Justification]]) -> None:
        """Write-ahead capture of one speculative batch (pre-coalesce,
        so a commit re-coalesces exactly like a direct ``assign_many``)."""
        self._pending = len(self._log)
        for variable, value, justification in entries:
            self._note_pre(variable)
            self._log.append((variable, value, justification))
        if not self._context.enabled:
            self._pending = None

    # -- engine seam: PropagationContext.shadow -----------------------------

    def _note_pre(self, variable: Any) -> None:
        if variable not in self._overlay:
            self._overlay[variable] = (variable.last_set_by,
                                       variable.raw_value)

    def absorb_visited(self, visited: Dict[Any, Tuple[Justification, Any]]) -> None:
        """A non-silent round closed: merge its pre-states (first touch
        wins) and confirm any pending log entries."""
        overlay = self._overlay
        for variable, pre_state in visited.items():
            if variable not in overlay:
                overlay[variable] = pre_state
        self._pending = None

    def absorb_undo(self, undo: List[Tuple[Any, Justification, Any]]) -> None:
        """A plan-cache replay succeeded: its undo list carries the same
        ``(variable, justification, value)`` pre-states a general round's
        visited map would."""
        overlay = self._overlay
        for variable, justification, value in undo:
            if variable not in overlay:
                overlay[variable] = (justification, value)
        self._pending = None

    def round_rolled_back(self) -> None:
        """The engine restored a non-silent round: the requested entries
        never happened, so they leave the commit log again."""
        if self._pending is not None:
            del self._log[self._pending:]
            self._pending = None

    # -- endings ------------------------------------------------------------

    def _restore_parent(self) -> None:
        """Undo the clone: overlay pre-states, stats, hooks, epoch."""
        context = self._context
        for variable, (justification, value) in self._overlay.items():
            variable._store(value, justification)
        stats = context.stats
        for name, value in self._saved_stats.items():
            setattr(stats, name, value)
        context.recorder = self._saved_recorder
        context.handler = self._saved_handler
        context.shadow = self._saved_shadow
        # Drop every plan warmed inside the space; the restored parent
        # re-traces at its own fresh epoch.
        context.bump_topology_epoch()
        session = self._session
        if session is not None:
            session._space_depth -= 1

    def discard(self) -> None:
        """Vanish without a trace: the parent is byte-identical to never
        having opened the space."""
        self._require_open()
        self._restore_parent()
        self.state = "discarded"
        self._observe("discard")
        self._observe_depth()

    def commit(self) -> bool:
        """Merge the accumulated assignments into the parent as one
        batched round.

        The space first restores the parent completely (discard
        semantics), then replays its accepted log through the parent's
        ordinary ``assign_many`` — so a session journals exactly one
        ``{"op": "batch"}`` frame and a forked child merges into its
        parent space's log instead.  Returns the batch's validity; a
        ``False`` (the parent rejected the merged batch, e.g. because a
        sibling space committed conflicting values first) leaves the
        parent untouched.
        """
        self._require_open()
        log = self._log
        self._restore_parent()
        self.state = "committed"
        ok = True
        if log:
            ok = self._context.assign_many(log)
        self._observe("commit")
        self._observe_depth()
        return ok

    def fork(self) -> "Space":
        """A nested child space: its commit merges into *this* space's
        overlay and log; its discard returns to the fork point."""
        self._require_open()
        child = Space(self._context, session=self._session, parent=self)
        return child.open()

    # -- observability ------------------------------------------------------

    def _observe(self, kind: str) -> None:
        observer = self._context.observer
        if observer is not None:
            hook = getattr(observer, "space_event", None)
            if hook is not None:
                hook(kind)

    def _observe_depth(self) -> None:
        observer = self._context.observer
        if observer is not None:
            hook = getattr(observer, "space_depth", None)
            if hook is not None:
                hook("nest", self.depth if self.state == "open"
                     else self.depth - 1)

    def __repr__(self) -> str:
        return (f"<Space {self.state} depth={self.depth} "
                f"entries={len(self._log)} "
                f"overlay={len(self._overlay)} "
                f"violations={len(self.violations)}>")
