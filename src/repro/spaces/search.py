"""Parallel generate-and-test module selection over computation spaces.

Chapter 8's :class:`~repro.selection.selector.ModuleSelector` probes
candidate realizations *in place* (``can_be_set_to`` silent rounds on the
live design).  This driver lifts the same generate-and-test search onto
:class:`~repro.spaces.space.Space` so that

* every tentative test runs inside an encapsulated space
  (:class:`SpaceSelector`) — the live design, its session journal and
  its stats are untouched by the whole search,
* candidates can be evaluated **in parallel** over read-mostly clones of
  the design (thread pool over deep copies, or copy-on-write ``fork``
  processes), with violating branches pruned exactly like the
  sequential selector's subtree pruning,
* survivors are ranked by the existing
  :class:`~repro.selection.ranking.RankedSelector` merit scoring, so the
  parallel search returns the **identical ranked result set** as the
  sequential in-place generate-and-test.

The parallel discipline is two-phase over the enumerated candidate tree:
phase 1 tests the generic intermediate classes (their ideal
characteristics), phase 2 tests every leaf whose generic ancestors all
survived.  Because tentative tests are read-only on the shared
structure, testing a pruned subtree's members in parallel with its
ancestor cannot change the *result set* — only the amount of wasted
work — so the two-phase result equals the sequential depth-first one.

Process workers use the ``fork`` start method only (copy-on-write, no
pickling) and leave via ``os._exit`` so they can never flush a buffered
session journal inherited from the parent.
"""

from __future__ import annotations

import copy
import multiprocessing
import os
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, NamedTuple, Optional, Sequence, Tuple

from ..core.justification import TENTATIVE
from ..core.violations import WarningHandler
from ..selection.ranking import CandidateScore, RankedSelector
from ..selection.selector import DEFAULT_PRIORITIES, ModuleSelector
from ..stem.cell import CellClass, CellInstance
from .space import Space

__all__ = ["SpaceSelector", "SearchStats", "SpaceSearchResult",
           "enumerate_candidates", "search_realizations"]


class SpaceSelector(ModuleSelector):
    """Module selection whose tentative tests run in computation spaces.

    Each acceptance test opens a space on the variable's context (or
    forks the currently open one), performs an ordinary ``#TENTATIVE``
    assignment, and discards — so acceptance is decided by full
    constraint propagation, violations are captured space-locally, and
    the parent universe (values, stats, session journal) is untouched.
    Result-equivalent to the base selector's ``can_be_set_to`` probing.
    """

    def _accepts(self, variable: Any, value: Any) -> bool:
        context = variable.context
        shadow = context.shadow
        if isinstance(shadow, Space):
            space = shadow.fork()
        else:
            space = Space(context).open()
        try:
            return space.assign(variable, value, TENTATIVE)
        finally:
            if not space.closed:
                space.discard()


class _Node(NamedTuple):
    """One enumerated candidate-tree node, in depth-first order."""

    cell: CellClass
    parent: int      # index of the parent node, -1 for top-level
    depth: int       # 1 = direct subclass of the generic root
    is_generic: bool


class SearchStats:
    """Bookkeeping for one space search."""

    def __init__(self) -> None:
        self.candidates = 0        # enumerated tree nodes
        self.evaluated = 0         # nodes actually tested
        self.pruned_subtrees = 0   # generic intermediates that failed
        self.workers = 1
        self.backend = "serial"

    def __repr__(self) -> str:
        return (f"SearchStats(candidates={self.candidates}, "
                f"evaluated={self.evaluated}, "
                f"pruned={self.pruned_subtrees}, "
                f"workers={self.workers}, backend={self.backend!r})")


class SpaceSearchResult(NamedTuple):
    """Outcome of :func:`search_realizations`."""

    ranking: List[CandidateScore]
    valid: List[CellClass]
    stats: SearchStats


def enumerate_candidates(instance: CellInstance) -> List[_Node]:
    """Depth-first enumeration of the realization tree under the
    instance's (generic) class — the *generate* half of the search."""
    cell = instance.cell_class
    nodes: List[_Node] = []
    if not cell.is_generic:
        nodes.append(_Node(cell, -1, 1, False))
        return nodes

    def visit(candidate: CellClass, parent: int, depth: int) -> None:
        index = len(nodes)
        nodes.append(_Node(candidate, parent, depth, candidate.is_generic))
        if candidate.is_generic:
            for subclass in candidate.subclasses:
                visit(subclass, index, depth + 1)

    for subclass in cell.subclasses:
        visit(subclass, -1, 1)
    return nodes


# -- candidate evaluation (the *test* half) ---------------------------------


def _evaluate_indices(instance: CellInstance, cells: Sequence[CellClass],
                      indices: Sequence[int],
                      priorities: Sequence[str]) -> List[Tuple[int, bool]]:
    """Test the given candidate indices against ``instance``; every
    tentative assignment runs inside a discarded computation space."""
    selector = SpaceSelector(priorities, prune=False)
    return [(index,
             selector.is_valid_realization_for(cells[index], instance))
            for index in indices]


def _chunk(indices: Sequence[int], workers: int) -> List[List[int]]:
    chunks: List[List[int]] = [[] for _ in range(workers)]
    for position, index in enumerate(indices):
        chunks[position % workers].append(index)
    return [chunk for chunk in chunks if chunk]


def _detach_hooks(context: Any) -> None:
    """Disconnect a (cloned or forked) context from the parent's
    journal, metrics, tracer, plan cache and open spaces."""
    context.recorder = None
    context.observer = None
    context.tracer = None
    context.plan_cache = None
    context.shadow = None
    context.handler = WarningHandler()


def _map_serial(instance: CellInstance, cells: Sequence[CellClass],
                indices: Sequence[int],
                priorities: Sequence[str]) -> Dict[int, bool]:
    return dict(_evaluate_indices(instance, cells, indices, priorities))


def _map_threads(instance: CellInstance, cells: Sequence[CellClass],
                 indices: Sequence[int], priorities: Sequence[str],
                 workers: int) -> Dict[int, bool]:
    """Thread pool over per-worker deep clones of the design.

    Each worker gets its own structural clone (instance + candidate
    classes + the whole connected context), so spaces in one worker
    never race another's.  The live context's hooks are detached for
    the duration of the copy so clones never share a journal, observer
    or plan cache with the parent.
    """
    context = instance.cell_class.context
    saved = (context.recorder, context.observer, context.tracer,
             context.plan_cache, context.shadow, context.handler)
    context.recorder = None
    context.observer = None
    context.tracer = None
    context.plan_cache = None
    context.shadow = None
    context.handler = WarningHandler()
    try:
        clones = [copy.deepcopy((instance, list(cells)))
                  for _ in range(workers)]
    finally:
        (context.recorder, context.observer, context.tracer,
         context.plan_cache, context.shadow, context.handler) = saved

    chunks = _chunk(indices, workers)
    results: Dict[int, bool] = {}
    with ThreadPoolExecutor(max_workers=len(chunks)) as pool:
        futures = [
            pool.submit(_evaluate_indices, clone_instance, clone_cells,
                        chunk, priorities)
            for (clone_instance, clone_cells), chunk in zip(clones, chunks)
        ]
        for future in futures:
            results.update(future.result())
    return results


def _fork_worker(instance: CellInstance, cells: Sequence[CellClass],
                 indices: Sequence[int], priorities: Sequence[str],
                 conn: Any) -> None:
    """Evaluate one chunk in a forked child and exit without cleanup.

    The child's memory is a copy-on-write snapshot of the parent: the
    design is already here, no pickling happened.  Hooks are detached
    *in the child* so its spaces never touch the (inherited) journal,
    and the child leaves via ``os._exit`` so inherited buffered files —
    notably an ``fsync="never"`` session journal sharing the parent's
    file offset — are never flushed from this process.
    """
    status = 1
    try:
        _detach_hooks(instance.cell_class.context)
        conn.send(_evaluate_indices(instance, cells, indices, priorities))
        conn.close()
        status = 0
    finally:
        os._exit(status)


def _map_forks(instance: CellInstance, cells: Sequence[CellClass],
               indices: Sequence[int], priorities: Sequence[str],
               workers: int) -> Dict[int, bool]:
    """Copy-on-write process pool via the ``fork`` start method."""
    ctx = multiprocessing.get_context("fork")
    chunks = _chunk(indices, workers)
    jobs = []
    for chunk in chunks:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(target=_fork_worker,
                           args=(instance, cells, chunk, priorities,
                                 child_conn))
        proc.start()
        child_conn.close()
        jobs.append((proc, parent_conn, chunk))
    results: Dict[int, bool] = {}
    failed: List[int] = []
    for proc, parent_conn, chunk in jobs:
        try:
            results.update(parent_conn.recv())
        except EOFError:
            failed.extend(chunk)
        finally:
            parent_conn.close()
            proc.join()
    if failed:  # a worker died: evaluate its chunk here, don't lose results
        results.update(_map_serial(instance, cells, failed, priorities))
    return results


def _resolve_backend(backend: str, workers: int) -> str:
    if backend not in ("auto", "serial", "thread", "fork"):
        raise ValueError(f"unknown search backend: {backend!r}")
    if workers <= 1:
        return "serial"
    if backend == "auto":
        if "fork" in multiprocessing.get_all_start_methods():
            return "fork"
        return "thread"
    return backend


def _run_phase(instance: CellInstance, cells: Sequence[CellClass],
               indices: Sequence[int], priorities: Sequence[str],
               workers: int, backend: str) -> Dict[int, bool]:
    if not indices:
        return {}
    if backend == "serial" or len(indices) == 1:
        return _map_serial(instance, cells, indices, priorities)
    if backend == "thread":
        return _map_threads(instance, cells, indices, priorities, workers)
    return _map_forks(instance, cells, indices, priorities, workers)


# -- driver -----------------------------------------------------------------


def search_realizations(instance: CellInstance, *,
                        weights: Optional[Dict[str, float]] = None,
                        priorities: Sequence[str] = DEFAULT_PRIORITIES,
                        prune: bool = True,
                        workers: int = 1,
                        backend: str = "auto") -> SpaceSearchResult:
    """Parallel generate-and-test module selection over spaces.

    Enumerates the candidate realization tree of ``instance``'s generic
    class, tests generic intermediates first (phase 1; a failing
    intermediate prunes its subtree exactly like the sequential
    selector), tests the surviving leaves (phase 2), and ranks the valid
    leaves with :class:`~repro.selection.ranking.RankedSelector` —
    returning the identical ranked list as
    ``RankedSelector(weights, priorities, prune).rank(instance)`` while
    leaving the live design byte-identical.

    Parameters
    ----------
    workers:
        Parallel evaluators per phase; ``1`` forces serial.
    backend:
        ``"serial"``, ``"thread"`` (deep-clone workers), ``"fork"``
        (copy-on-write process workers) or ``"auto"`` (fork when the
        platform supports it, else thread).
    """
    stats = SearchStats()
    stats.backend = _resolve_backend(backend, workers)
    stats.workers = 1 if stats.backend == "serial" else workers
    ranker = RankedSelector(weights, priorities, prune)
    if not instance.cell_class.is_generic:
        # Parity with ``select_realizations_for``: a concrete class is
        # its own (untested) realization.
        stats.candidates = 1
        valid = [instance.cell_class]
        return SpaceSearchResult(ranker.rank_candidates(instance, valid),
                                 valid, stats)
    nodes = enumerate_candidates(instance)
    stats.candidates = len(nodes)
    observer = instance.cell_class.context.observer

    failed_generics: set = set()
    if prune:
        generic_indices = [index for index, node in enumerate(nodes)
                           if node.is_generic]
        phase1 = _run_phase(instance, [node.cell for node in nodes],
                            generic_indices, priorities,
                            stats.workers, stats.backend)
        stats.evaluated += len(phase1)
        failed_generics = {index for index, ok in phase1.items() if not ok}
        stats.pruned_subtrees = len(failed_generics)
        if observer is not None:
            hook = getattr(observer, "space_event", None)
            if hook is not None and failed_generics:
                hook("prune", len(failed_generics))
            depth_hook = getattr(observer, "space_depth", None)
            if depth_hook is not None:
                for index in failed_generics:
                    depth_hook("prune", nodes[index].depth)

    def unpruned(index: int) -> bool:
        parent = nodes[index].parent
        while parent != -1:
            if parent in failed_generics:
                return False
            parent = nodes[parent].parent
        return True

    leaf_indices = [index for index, node in enumerate(nodes)
                    if not node.is_generic and unpruned(index)]
    phase2 = _run_phase(instance, [node.cell for node in nodes],
                        leaf_indices, priorities,
                        stats.workers, stats.backend)
    stats.evaluated += len(phase2)

    valid = [nodes[index].cell for index in leaf_indices
             if phase2.get(index)]
    ranking = ranker.rank_candidates(instance, valid)
    return SpaceSearchResult(ranking, valid, stats)
