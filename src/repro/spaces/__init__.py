"""Computation spaces: speculative what-if exploration and search.

A :class:`~repro.spaces.space.Space` is an encapsulated child universe
over a :class:`~repro.core.engine.PropagationContext` — it accepts
ordinary assignment rounds and either commits them to the parent as one
journaled batch, discards without a trace, or forks nested
alternatives.  :func:`~repro.spaces.search.search_realizations` builds
parallel generate-and-test module selection (thesis chapter 8) on top.
"""

from .search import (SearchStats, SpaceSearchResult, SpaceSelector,
                     search_realizations)
from .space import Space, SpaceError

__all__ = [
    "Space",
    "SpaceError",
    "SpaceSelector",
    "SearchStats",
    "SpaceSearchResult",
    "search_realizations",
]
