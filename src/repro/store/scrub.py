"""Anti-entropy scrub/repair — verify a session's durable state, fix it.

:func:`scrub_session` walks every checkpoint (parse + schema check) and
every journal segment (CRC per line, sequence continuity within and
across segments) of one :class:`~repro.store.base.SessionStore` and
classifies the damage:

``torn-tail``
    A partial/corrupt line at the very end of the last segment — the
    crash-mid-append signature.  Repair truncates it off, exactly like
    recovery would.
``segment``
    Damage anywhere else: a corrupt line mid-journal, an internal
    sequence gap, or a whole missing segment.  Recovery would refuse to
    replay past this (:class:`~repro.session.journal.JournalCorrupt`),
    so repair needs a healthy *source* — the follower's replica in a
    fleet — to re-ship the covered sequence range from.
``checkpoint``
    A checkpoint that no longer parses.  Survivable (recovery skips
    damaged checkpoints), but repairable from a source that still holds
    the same generation.

With a ``source`` store the repair happens inline (including extending
a tail the source is ahead on — the anti-entropy case).  Without one,
unrepairable ranges are reported as ``needs`` —
``{"segment", "after", "until"}`` descriptors a fleet router resolves
by exporting the range from the follower and shipping it back through
:func:`apply_repair`.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from ..session.journal import JournalTailGap, _decode_line
from .base import (
    SessionStore,
    checkpoint_name,
    segment_name,
    store_tail_lines,
)

__all__ = ["apply_repair", "extend_tail", "fetch_range", "replace_segment",
           "scrub_session"]


def _scan_segment(store: SessionStore,
                  key: str) -> Tuple[List[int], int, Optional[int]]:
    """``(seqs, valid_bytes, damage_offset)`` of one segment.

    ``damage_offset`` is the byte offset of the first torn/corrupt line
    (``None`` for a clean segment); ``seqs`` holds the sequence numbers
    of every valid line before it.
    """
    data = store.read_segment(key)
    seqs: List[int] = []
    offset = 0
    pos = 0
    total = len(data)
    while pos < total:
        newline = data.find(b"\n", pos)
        if newline < 0:
            line = data[pos:]
            pos = total
        else:
            line = data[pos:newline + 1]
            pos = newline + 1
        entry = _decode_line(line)
        if entry is None or not isinstance(entry.get("seq"), int):
            return seqs, offset, offset
        seqs.append(entry["seq"])
        offset += len(line)
    return seqs, offset, None


def _contiguous(seqs: List[int]) -> bool:
    return all(b == a + 1 for a, b in zip(seqs, seqs[1:]))


def fetch_range(source: SessionStore, after: int,
                until: Optional[int]) -> Optional[List[Tuple[int, bytes]]]:
    """Raw lines ``(after, until]`` from a healthy source, or ``None``
    when the source cannot serve them (pruned past, or itself damaged)."""
    try:
        lines = store_tail_lines(source, after_seq=after)
    except (OSError, JournalTailGap, ValueError):
        return None
    if until is not None:
        lines = [(seq, line) for seq, line in lines if seq <= until]
        covered = lines and lines[-1][0] == until
    else:
        covered = True
    if not covered or (lines and lines[0][0] != after + 1):
        return None
    return lines


def replace_segment(store: SessionStore, after: int, until: int,
                    lines: List[Tuple[int, bytes]]) -> None:
    """Replace every local segment covering ``(after, until]`` with one
    fresh segment holding the shipped lines."""
    for first, key in store.segments():
        if after + 1 <= first <= until:
            try:
                store.delete_segment(key)
            except OSError:
                pass
    appender = store.create_segment(after + 1, durable=True)
    try:
        for _seq, line in lines:
            appender.write(line)
        appender.flush()
        appender.sync()
    finally:
        appender.close()
    store.sync_root()


def extend_tail(store: SessionStore, after: int,
                lines: List[Tuple[int, bytes]]) -> None:
    """Append shipped lines past the local tail (the source was ahead)."""
    segments = store.segments()
    if segments:
        appender = store.open_segment(segments[-1][1])
    else:
        appender = store.create_segment(after + 1, durable=True)
    try:
        for _seq, line in lines:
            appender.write(line)
        appender.flush()
        appender.sync()
    finally:
        appender.close()


def apply_repair(store: SessionStore, after: int, until: Optional[int],
                 lines: List[Tuple[int, bytes]]) -> None:
    """Apply one shipped repair range (the worker side of ``needs``)."""
    if until is None:
        extend_tail(store, after, lines)
    else:
        replace_segment(store, after, until, lines)


def _checkpoint_valid(data: Optional[bytes]) -> bool:
    if data is None:
        return False
    try:
        state = json.loads(data)
    except ValueError:
        return False
    return isinstance(state, dict) and isinstance(state.get("seq"), int)


def scrub_session(store: SessionStore, *,
                  source: Optional[SessionStore] = None,
                  repair: bool = True,
                  allow_tail: bool = True) -> Dict[str, Any]:
    """Verify (and optionally repair) one session's durable state.

    Parameters
    ----------
    store:
        The session store to scrub.
    source:
        A healthy twin (the follower's replica) to re-ship damaged or
        missing ranges from; ``None`` limits repair to what local
        truncation can fix.
    repair:
        Report-only when ``False``.
    allow_tail:
        Permit truncating a torn tail.  Pass ``False`` while a live
        writer owns the tail segment (its in-flight append looks torn).
    """
    report: Dict[str, Any] = {
        "backend": store.backend,
        "location": store.location,
        "segments": 0,
        "entries": 0,
        "checkpoints": 0,
        "damage": [],
        "repaired": [],
        "needs": [],
    }

    # -- checkpoints --------------------------------------------------------
    for seq, key in store.checkpoints():
        report["checkpoints"] += 1
        if _checkpoint_valid(store.read_checkpoint(key)):
            continue
        finding = {"kind": "checkpoint", "key": key, "seq": seq}
        fixed = False
        if repair and source is not None:
            data = source.read_checkpoint(checkpoint_name(seq))
            if _checkpoint_valid(data):
                try:
                    store.publish_checkpoint(seq, data)
                    fixed = True
                except OSError:
                    fixed = False
        report["repaired" if fixed else "damage"].append(finding)

    # -- segments -----------------------------------------------------------
    def mend(after: int, until: Optional[int],
             finding: Dict[str, Any]) -> None:
        """Repair a range from the source, else record the need."""
        if repair and source is not None:
            lines = fetch_range(source, after, until)
            if lines is not None:
                try:
                    apply_repair(store, after, until, lines)
                except OSError:
                    lines = None
            if lines is not None:
                report["repaired"].append(finding)
                return
        report["damage"].append(finding)
        report["needs"].append({"segment": finding.get("key"),
                                "after": after, "until": until})

    segments = store.segments()
    report["segments"] = len(segments)
    last_good = None
    for index, (first, key) in enumerate(segments):
        is_last = index == len(segments) - 1
        next_first = segments[index + 1][0] if not is_last else None
        seqs, valid_bytes, damage_at = _scan_segment(store, key)
        report["entries"] += len(seqs)
        until = next_first - 1 if next_first is not None else None

        if last_good is not None and seqs and seqs[0] > last_good + 1:
            # A hole between this segment and the previous one — entries
            # (last_good, seqs[0]) are gone (a pruned-away or lost
            # segment in the middle of the journal).
            mend(last_good, seqs[0] - 1,
                 {"kind": "segment", "key": segment_name(last_good + 1),
                  "detail": "missing range before this segment"})

        broken = (damage_at is not None or not _contiguous(seqs)
                  or (seqs and seqs[0] != first))
        if not broken:
            if seqs:
                last_good = seqs[-1]
            continue

        if is_last and damage_at is not None and _contiguous(seqs) \
                and (not seqs or seqs[0] == first):
            # Torn tail: the crash-mid-append signature.
            finding = {"kind": "torn-tail", "key": key,
                       "offset": damage_at}
            if repair and allow_tail:
                try:
                    store.truncate_segment(key, valid_bytes)
                    report["repaired"].append(finding)
                except OSError:
                    report["damage"].append(finding)
            else:
                report["damage"].append(finding)
            if seqs:
                last_good = seqs[-1]
            continue

        # Mid-journal damage: replace the whole covered range.
        after = (first - 1 if (not seqs or seqs[0] == first)
                 else min(seqs[0], first) - 1)
        mend(after, until, {"kind": "segment", "key": key,
                            "detail": "corrupt or discontinuous entries"})
        if until is not None:
            last_good = until
        elif seqs:
            last_good = max(last_good or 0, seqs[-1])

    # -- anti-entropy tail extension ---------------------------------------
    if repair and source is not None and allow_tail:
        try:
            local_tip = last_good or 0
            ahead = store_tail_lines(source, after_seq=local_tip)
        except (OSError, JournalTailGap, ValueError):
            ahead = []
        if ahead:
            try:
                extend_tail(store, local_tip, ahead)
                report["repaired"].append(
                    {"kind": "tail-extend", "after": local_tip,
                     "entries": len(ahead)})
                report["entries"] += len(ahead)
            except OSError:
                report["damage"].append(
                    {"kind": "tail-extend", "after": local_tip})

    report["clean"] = not report["damage"] and not report["repaired"]
    report["ok"] = not report["damage"]
    return report
