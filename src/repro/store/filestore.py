"""The original file-per-segment layout, behind the store interface.

Byte-identical on disk to what the pre-interface journal and checkpoint
writers produced: segments are ``wal-<firstseq:010d>.jsonl`` files,
checkpoints ``ckpt-<seq:010d>.json``, one directory per session.  Every
file-system touch still goes through the session's
:class:`~repro.session.journal.FileOpener`, in the same order the
writers performed it before the refactor, so the existing
fault-injection plans (and the PR 5 fault matrix) exercise unchanged
code paths.
"""

from __future__ import annotations

import os
from typing import Any, List, Optional, Tuple

from ..session.journal import (
    DEFAULT_OPENER,
    FileOpener,
    scan_segments,
)
from .base import (
    SegmentAppender,
    SegmentStore,
    SessionStore,
    checkpoint_name,
    checkpoint_seq,
    segment_name,
)

__all__ = ["FileSessionStore", "FileStore"]


class _FileAppender(SegmentAppender):
    """A real file handle opened through the session's opener."""

    __slots__ = ("key", "_handle", "_opener")

    def __init__(self, key: str, handle: Any, opener: FileOpener) -> None:
        self.key = key
        self._handle = handle
        self._opener = opener

    def write(self, line: bytes) -> None:
        self._handle.write(line)

    def flush(self) -> None:
        self._handle.flush()

    def sync(self) -> None:
        self._opener.fsync(self._handle)

    def close(self) -> None:
        self._handle.close()


class FileSessionStore(SessionStore):
    """One session directory of segment and checkpoint files."""

    backend = "file"

    def __init__(self, directory: str,
                 opener: Optional[FileOpener] = None) -> None:
        self.directory = directory
        self.location = directory
        self.fs_directory = directory
        self._opener = opener if opener is not None else DEFAULT_OPENER

    # -- lifecycle ----------------------------------------------------------

    def prepare(self) -> None:
        os.makedirs(self.directory, exist_ok=True)

    def exists(self) -> bool:
        return os.path.isdir(self.directory)

    # -- journal segments ---------------------------------------------------

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, key)

    def segments(self) -> List[Tuple[int, str]]:
        return [(first, os.path.basename(path))
                for first, path in scan_segments(self.directory)]

    def segment_size(self, key: str) -> int:
        return self._opener.getsize(self._path(key))

    def read_segment(self, key: str) -> bytes:
        with open(self._path(key), "rb") as handle:
            return handle.read()

    def delete_segment(self, key: str) -> None:
        self._opener.remove(self._path(key))

    def truncate_segment(self, key: str, size: int) -> None:
        with open(self._path(key), "r+b") as handle:
            handle.truncate(size)
            handle.flush()
            os.fsync(handle.fileno())

    def create_segment(self, first_seq: int, *,
                       durable: bool = True) -> _FileAppender:
        key = segment_name(first_seq)
        handle = self._opener(self._path(key), "ab")
        if durable:
            self._opener.fsync(handle)
            self._opener.fsync_dir(self.directory)
        return _FileAppender(key, handle, self._opener)

    def open_segment(self, key: str) -> _FileAppender:
        return _FileAppender(key, self._opener(self._path(key), "ab"),
                             self._opener)

    def rollback_segment(self, key: str, size: int) -> None:
        # Deliberately bypasses the opener: this is the best-effort
        # degradation backstop running after the fault layer's disk
        # already "failed" (matching the pre-interface behavior).
        with open(self._path(key), "r+b") as repair:
            repair.truncate(size)
            repair.flush()
            os.fsync(repair.fileno())

    def sync_root(self) -> None:
        self._opener.fsync_dir(self.directory)

    def describe(self, key: str) -> str:
        return self._path(key)

    # -- checkpoints --------------------------------------------------------

    def checkpoints(self) -> List[Tuple[int, str]]:
        found: List[Tuple[int, str]] = []
        try:
            names = os.listdir(self.directory)
        except FileNotFoundError:
            return found
        for name in names:
            seq = checkpoint_seq(name)
            if seq is not None:
                found.append((seq, name))
        found.sort()
        return found

    def read_checkpoint(self, key: str) -> Optional[bytes]:
        try:
            with open(self._path(key), "rb") as handle:
                return handle.read()
        except OSError:
            return None

    def publish_checkpoint(self, seq: int, data: bytes) -> str:
        path = self._path(checkpoint_name(seq))
        temp = path + ".tmp"
        opener = self._opener
        try:
            with opener(temp, "w") as handle:
                handle.write(data.decode("utf-8"))
                handle.flush()
                opener.fsync(handle)
            opener.replace(temp, path)
        except OSError:
            try:
                os.remove(temp)
            except OSError:
                pass
            raise
        opener.fsync_dir(self.directory)
        return path

    def delete_checkpoint(self, key: str) -> None:
        self._opener.remove(self._path(key))


class FileStore(SegmentStore):
    """A session root: one subdirectory per session."""

    backend = "file"

    def __init__(self, root: str,
                 opener: Optional[FileOpener] = None) -> None:
        self.root = root
        self.location = root
        self._opener = opener if opener is not None else DEFAULT_OPENER

    def session(self, name: str) -> FileSessionStore:
        return FileSessionStore(os.path.join(self.root, name),
                                opener=self._opener)

    def session_names(self) -> List[str]:
        try:
            names = os.listdir(self.root)
        except FileNotFoundError:
            return []
        return sorted(name for name in names
                      if os.path.isdir(os.path.join(self.root, name)))
