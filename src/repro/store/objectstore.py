"""S3-style object storage backend over a local-directory emulator.

The emulator models the object-store contract the interface must
survive, not a POSIX file system:

* ``put`` is atomic per object (temp + rename) — there are no appends,
  so a journal segment is a *sequence of chunk objects*
  (``<session>/<segment>/<idx:06d>``, one chunk per flush batch) and
  "appending" means putting the next chunk;
* listings can lag writes (``list_lag``): a freshly-put key stays
  invisible to ``list`` for that many listing calls while ``get`` on
  the exact key already works (read-your-writes) — the
  eventual-visibility semantics of real object stores.  A *fresh*
  emulator over the same directory sees everything, which is exactly
  the post-crash recovery picture;
* injectable ``latency`` and ``fault`` hooks fire on every emulator
  operation, independent of the :class:`~repro.store.base.StoreGate`
  that drives the byte-exact crash matrix;
* a torn upload lands a truncated chunk object — the partial-upload
  shape recovery's torn-tail repair must absorb.

Checkpoint publish stages ``ckpt-XXXX.json.tmp`` and renames it over
the final key, so recovery (which only considers ``ckpt-*.json`` keys)
never sees a half-uploaded checkpoint.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..faults.plan import FaultPlan
from ..session.journal import _segment_first_seq
from .base import (
    SegmentAppender,
    SegmentStore,
    SessionStore,
    StoreGate,
    checkpoint_name,
    checkpoint_seq,
    segment_name,
)

__all__ = ["ObjectEmulator", "ObjectSessionStore", "ObjectStore"]

#: Marker object recording a segment's existence before its first chunk.
_SEGMENT_MARKER = ".seg"
#: Marker object recording a session's existence.
_SESSION_MARKER = ".session"


class ObjectEmulator:
    """put/get/list/delete over a local directory, with object-store
    quirks: atomic puts, listing lag, injectable latency and faults."""

    def __init__(self, root: str, *, list_lag: int = 0,
                 latency: Optional[Callable[[str, str], None]] = None,
                 fault: Optional[Callable[[str, str], None]] = None) -> None:
        self.root = root
        self.list_lag = list_lag
        self.latency = latency
        self.fault = fault
        #: key -> remaining ``list`` calls before it becomes visible.
        self._pending: Dict[str, int] = {}
        os.makedirs(root, exist_ok=True)

    def _touch(self, op: str, key: str) -> None:
        if self.latency is not None:
            self.latency(op, key)
        if self.fault is not None:
            self.fault(op, key)

    def _path(self, key: str) -> str:
        return os.path.join(self.root, *key.split("/"))

    def put(self, key: str, data: bytes) -> None:
        self._touch("put", key)
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        temp = path + ".inflight"
        with open(temp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, path)
        if self.list_lag > 0:
            self._pending[key] = self.list_lag

    def get(self, key: str) -> Optional[bytes]:
        """Read-your-writes: works even while the key is list-pending."""
        self._touch("get", key)
        try:
            with open(self._path(key), "rb") as handle:
                return handle.read()
        except OSError:
            return None

    def size(self, key: str) -> Optional[int]:
        try:
            return os.path.getsize(self._path(key))
        except OSError:
            return None

    def list(self, prefix: str = "") -> List[str]:
        """Visible keys under ``prefix``; each call ages pending keys."""
        self._touch("list", prefix)
        keys: List[str] = []
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for name in filenames:
                if name.endswith(".inflight"):
                    continue
                full = os.path.join(dirpath, name)
                key = os.path.relpath(full, self.root).replace(os.sep, "/")
                if key.startswith(prefix):
                    keys.append(key)
        visible = [key for key in keys if self._pending.get(key, 0) <= 0]
        for key in list(self._pending):
            self._pending[key] -= 1
            if self._pending[key] <= 0:
                del self._pending[key]
        return sorted(visible)

    def delete(self, key: str) -> None:
        self._touch("delete", key)
        self._pending.pop(key, None)
        try:
            os.remove(self._path(key))
        except FileNotFoundError:
            pass

    def rename(self, src: str, dst: str) -> None:
        self._touch("rename", src)
        os.replace(self._path(src), self._path(dst))
        if self._pending.pop(src, None) is not None or self.list_lag > 0:
            if self.list_lag > 0:
                self._pending[dst] = self.list_lag

    def settle(self) -> None:
        """Make every pending key visible now (the steady state)."""
        self._pending.clear()


class _ObjectAppender(SegmentAppender):
    """Chunk-per-flush appender over one segment's object prefix."""

    __slots__ = ("key", "_store", "_vpath", "_next_idx", "_buffer",
                 "_closed")

    def __init__(self, store: "ObjectSessionStore", key: str,
                 next_idx: int) -> None:
        self.key = key
        self._store = store
        self._vpath = store.describe(key)
        self._next_idx = next_idx
        self._buffer: List[bytes] = []
        self._closed = False

    def write(self, line: bytes) -> None:
        gate = self._store.gate
        action = gate.write_action(self._vpath, len(line))
        if action is None:
            self._buffer.append(line)
            return
        if action.kind == "torn" and action.keep > 0:
            self._buffer.append(line[:action.keep])
        if self._buffer:
            self._put_chunk()
        gate.finish_write(self._vpath, action, len(line))

    def flush(self) -> None:
        self._store.gate.point("flush", self._vpath)
        if self._buffer:
            self._put_chunk()

    def sync(self) -> None:
        self._store.gate.point("fsync", self._vpath)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._buffer and not self._store.gate.crashed:
            self._put_chunk()

    def _put_chunk(self) -> None:
        buffered, self._buffer = self._buffer, []
        idx = self._next_idx
        self._next_idx = idx + 1
        self._store.put_chunk(self.key, idx, b"".join(buffered))


class ObjectSessionStore(SessionStore):
    """One session's prefix of the bucket."""

    backend = "object"
    fs_directory = None

    def __init__(self, root: "ObjectStore", name: str) -> None:
        self._root = root
        self._emulator = root.emulator
        self.name = name
        self._prefix = name + "/"
        self._vdir = os.path.join(root.root, name)
        self.location = f"{root.root}#{name}"

    @property
    def gate(self) -> StoreGate:
        return self._root.gate

    def _chunk_key(self, segment: str, idx: int) -> str:
        return f"{self.name}/{segment}/{idx:06d}"

    def _chunks(self, segment: str) -> List[Tuple[int, str]]:
        """Chunk objects of a segment, in order, stopping at the first
        index gap (a later chunk with a hole before it is not durably
        part of the segment)."""
        prefix = f"{self.name}/{segment}/"
        found: List[Tuple[int, str]] = []
        for key in self._emulator.list(prefix):
            name = key[len(prefix):]
            if name.isdigit():
                found.append((int(name), key))
        found.sort()
        chunks: List[Tuple[int, str]] = []
        for index, (idx, key) in enumerate(found):
            if index > 0 and idx != found[index - 1][0] + 1:
                break
            chunks.append((idx, key))
        return chunks

    def put_chunk(self, segment: str, idx: int, data: bytes) -> None:
        self._emulator.put(self._chunk_key(segment, idx), data)

    # -- lifecycle ----------------------------------------------------------

    def prepare(self) -> None:
        marker = f"{self.name}/{_SESSION_MARKER}"
        if self._emulator.get(marker) is None:
            self._emulator.put(marker, b"")

    def exists(self) -> bool:
        if self._emulator.get(f"{self.name}/{_SESSION_MARKER}") is not None:
            return True
        return bool(self._emulator.list(self._prefix))

    # -- journal segments ---------------------------------------------------

    def segments(self) -> List[Tuple[int, str]]:
        names = set()
        for key in self._emulator.list(self._prefix):
            rest = key[len(self._prefix):]
            head, _, _tail = rest.partition("/")
            if _segment_first_seq(head) is not None:
                names.add(head)
        found = [(_segment_first_seq(name), name) for name in names]
        found.sort()
        return found

    def segment_size(self, key: str) -> int:
        total = 0
        for _idx, chunk in self._chunks(key):
            total += self._emulator.size(chunk) or 0
        return total

    def read_segment(self, key: str) -> bytes:
        parts = []
        for _idx, chunk in self._chunks(key):
            data = self._emulator.get(chunk)
            if data is None:
                break
            parts.append(data)
        return b"".join(parts)

    def delete_segment(self, key: str) -> None:
        self.gate.point("remove", self.describe(key))
        prefix = f"{self.name}/{key}/"
        for chunk in self._emulator.list(prefix):
            self._emulator.delete(chunk)
        self._emulator.delete(prefix + _SEGMENT_MARKER)

    def truncate_segment(self, key: str, size: int) -> None:
        # Repair path — ungated, like the file backend's plain truncate.
        pos = 0
        doomed = False
        for idx, chunk in self._chunks(key):
            data = self._emulator.get(chunk) or b""
            end = pos + len(data)
            if doomed or pos >= size:
                self._emulator.delete(chunk)
            elif end > size:
                self._emulator.put(chunk, data[:size - pos])
                doomed = True
            pos = end

    def rollback_segment(self, key: str, size: int) -> None:
        self.truncate_segment(key, size)

    def create_segment(self, first_seq: int, *,
                       durable: bool = True) -> _ObjectAppender:
        key = segment_name(first_seq)
        vpath = self.describe(key)
        gate = self.gate
        gate.point("open", vpath)
        self._emulator.put(f"{self.name}/{key}/{_SEGMENT_MARKER}", b"")
        if durable:
            gate.point("fsync", vpath)
            gate.point("fsync-dir", self._vdir)
        return _ObjectAppender(self, key, 0)

    def open_segment(self, key: str) -> _ObjectAppender:
        self.gate.point("open", self.describe(key))
        chunks = self._chunks(key)
        next_idx = chunks[-1][0] + 1 if chunks else 0
        return _ObjectAppender(self, key, next_idx)

    def sync_root(self) -> None:
        self.gate.point("fsync-dir", self._vdir)

    def describe(self, key: str) -> str:
        return os.path.join(self._vdir, key)

    # -- checkpoints --------------------------------------------------------

    def checkpoints(self) -> List[Tuple[int, str]]:
        found: List[Tuple[int, str]] = []
        for key in self._emulator.list(self._prefix):
            rest = key[len(self._prefix):]
            if "/" in rest:
                continue
            seq = checkpoint_seq(rest)
            if seq is not None:
                found.append((seq, rest))
        found.sort()
        return found

    def read_checkpoint(self, key: str) -> Optional[bytes]:
        return self._emulator.get(f"{self.name}/{key}")

    def publish_checkpoint(self, seq: int, data: bytes) -> str:
        key = checkpoint_name(seq)
        tmp_key = f"{self.name}/{key}.tmp"
        final_key = f"{self.name}/{key}"
        vfinal = self.describe(key)
        vtmp = vfinal + ".tmp"
        gate = self.gate
        try:
            gate.point("open", vtmp)
            action = gate.write_action(vtmp, len(data))
            if action is not None:
                kept = (data[:action.keep] if action.kind == "torn"
                        else b"")
                self._emulator.put(tmp_key, kept)
                gate.finish_write(vtmp, action, len(data))
            self._emulator.put(tmp_key, data)
            gate.point("flush", vtmp)
            gate.point("fsync", vtmp)
            gate.point("replace", vfinal)
            self._emulator.rename(tmp_key, final_key)
            gate.point_after("replace-done", vfinal)
        except OSError:
            try:
                self._emulator.delete(tmp_key)
            except OSError:
                pass
            raise
        return vfinal

    def delete_checkpoint(self, key: str) -> None:
        self.gate.point("remove", self.describe(key))
        self._emulator.delete(f"{self.name}/{key}")

    # -- fault-matrix helpers ----------------------------------------------

    def tmp_residue(self) -> int:
        """Staged-but-unpublished checkpoint objects."""
        return sum(1 for key in self._emulator.list(self._prefix)
                   if key.endswith(".tmp"))


class ObjectStore(SegmentStore):
    """A session root in one emulated bucket directory."""

    backend = "object"

    def __init__(self, root: str, *, plan: Optional[FaultPlan] = None,
                 list_lag: int = 0,
                 latency: Optional[Callable[[str, str], None]] = None,
                 fault: Optional[Callable[[str, str], None]] = None,
                 emulator: Optional[ObjectEmulator] = None) -> None:
        self.root = root
        self.location = root
        self.gate = StoreGate(plan)
        self.emulator = emulator if emulator is not None else ObjectEmulator(
            root, list_lag=list_lag, latency=latency, fault=fault)

    def session(self, name: str) -> ObjectSessionStore:
        return ObjectSessionStore(self, name)

    def session_names(self) -> List[str]:
        names = set()
        for key in self.emulator.list(""):
            head, sep, _rest = key.partition("/")
            if sep:
                names.add(head)
        return sorted(names)
