"""Tiered snapshot compaction — fold cold segments into a checkpoint.

A long-lived session accumulates journal segments faster than its
designer checkpoints.  Compaction replays a **closed** session up to a
segment boundary (via ``Session(replay_to=...)``, the time-travel
hook), publishes that state as a checkpoint at the boundary sequence,
and prunes the segments the new checkpoint covers — so recovery cost
stays proportional to the hot tail, not to session lifetime.

The publish goes through the same
:meth:`~repro.store.base.SessionStore.publish_checkpoint` gate as a
designer checkpoint, so every crash window inside it (before the tmp
write, mid-write, before the rename, after the rename but before the
root sync) is covered by the fault matrix: a crash anywhere leaves
either the old checkpoint or the new one, never a half state, and the
journal always still holds every entry past whichever survived.

Compaction must only run against sessions with **no live writer** — an
open :class:`~repro.session.session.Session` owns the tail segment and
prunes on its own checkpoints.  :class:`CompactionWorker` enforces that
with a ``skip`` predicate (the server passes "is this session open?").
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional

from .base import (
    SegmentStore,
    SessionStore,
    encode_checkpoint,
    load_latest_checkpoint,
    prune_checkpoints,
)

__all__ = ["CompactionWorker", "compact_session"]


def compact_session(store: SessionStore, *, name: str = "session",
                    keep_segments: int = 1,
                    keep_checkpoints: int = 2) -> Dict[str, Any]:
    """Compact one closed session; return what was done.

    ``keep_segments`` newest segments stay as the replayable hot tail
    (at least one — the tail segment is never folded).  Older segments
    are covered by a freshly published checkpoint at the boundary and
    deleted; ``keep_checkpoints`` newest checkpoints survive the
    follow-up prune.
    """
    if keep_segments < 1:
        raise ValueError("keep_segments must be >= 1")
    report: Dict[str, Any] = {"session": name, "performed": False,
                              "checkpoint_seq": None,
                              "pruned_segments": []}
    segments = store.segments()
    if len(segments) <= keep_segments:
        return report
    boundary = segments[-keep_segments][0] - 1
    latest = load_latest_checkpoint(store)
    if latest is not None and boundary <= latest.get("seq", 0):
        # The cold segments are already covered; a designer checkpoint
        # got there first.  Pruning is the journal writer's job then.
        return report

    # Rebuild the state as of the boundary.  The session layer imports
    # this package, so import it lazily here (submodule, not re-export).
    from ..session.session import Session

    session = Session(name, store=store, read_only=True,
                      replay_to=boundary)
    try:
        state = session._snapshot_state()
    finally:
        session.close()
    if state["seq"] != boundary:
        # The journal has a hole below the boundary (scrub territory);
        # publishing here would silently drop entries.
        report["error"] = (f"replay stopped at seq {state['seq']}, "
                           f"expected boundary {boundary}")
        return report

    store.publish_checkpoint(boundary, encode_checkpoint(state))
    report["performed"] = True
    report["checkpoint_seq"] = boundary

    pruned: List[str] = []
    survivors = store.segments()
    for index, (first, key) in enumerate(survivors):
        if index + 1 >= len(survivors):
            break  # never the tail segment
        next_first = survivors[index + 1][0]
        if next_first <= boundary + 1:
            try:
                store.delete_segment(key)
            except OSError:
                continue
            pruned.append(key)
    if pruned:
        try:
            store.sync_root()
        except OSError:
            pass
    report["pruned_segments"] = pruned
    prune_checkpoints(store, keep_checkpoints)
    return report


class CompactionWorker:
    """Background thread compacting every closed session in a root.

    ``skip`` is consulted with each session name before compaction;
    return ``True`` for sessions that currently have a live writer.
    """

    def __init__(self, store: SegmentStore, *, interval: float = 60.0,
                 keep_segments: int = 1, keep_checkpoints: int = 2,
                 skip: Optional[Callable[[str], bool]] = None) -> None:
        self.store = store
        self.interval = interval
        self.keep_segments = keep_segments
        self.keep_checkpoints = keep_checkpoints
        self.skip = skip
        self.runs = 0
        self.compacted = 0
        self.errors = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def run_once(self) -> List[Dict[str, Any]]:
        """One sweep over every session; returns the per-session reports."""
        reports: List[Dict[str, Any]] = []
        for name in self.store.session_names():
            if self.skip is not None and self.skip(name):
                continue
            try:
                report = compact_session(
                    self.store.session(name), name=name,
                    keep_segments=self.keep_segments,
                    keep_checkpoints=self.keep_checkpoints)
            except Exception as error:  # noqa: BLE001 - keep sweeping
                self.errors += 1
                reports.append({"session": name, "performed": False,
                                "error": str(error)})
                continue
            if report.get("performed"):
                self.compacted += 1
            reports.append(report)
        self.runs += 1
        return reports

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self.run_once()

    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(target=self._loop,
                                        name="repro-compaction",
                                        daemon=True)
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "CompactionWorker":
        self.start()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.stop()
