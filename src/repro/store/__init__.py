"""Pluggable durable storage backends for design sessions.

The session layer performs every durable touch — journal segment
appends, rotations, fsyncs, checkpoint publishes, replay reads,
pruning, torn-tail repair — through the :class:`SegmentStore` /
:class:`SessionStore` interface defined in :mod:`repro.store.base`.
Three backends implement it:

``file``  (:class:`FileStore`)
    The original file-per-segment layout, byte-identical on disk.
``sqlite``  (:class:`SqliteStore`)
    One sqlite database per session root (WAL mode); segments are
    rows, checkpoint publish is transactional.
``object``  (:class:`ObjectStore`)
    An S3-style object store over a local-directory emulator with
    injectable latency/fault hooks and listing lag, proving the
    interface against eventual-visibility and partial-upload
    semantics.

On top of the interface live tiered snapshot compaction
(:mod:`repro.store.compact`) and the anti-entropy scrub/repair pass
(:mod:`repro.store.scrub`); those import the session layer, so they
are submodules rather than package-level re-exports.

``resolve_store`` maps the CLI's ``--store file|sqlite|object[:path]``
grammar onto a backend instance.
"""

from __future__ import annotations

import os
from typing import Any, Optional

from .base import (
    SegmentAppender,
    SegmentStore,
    SessionStore,
    StoreGate,
    load_latest_checkpoint,
    prune_checkpoints,
    read_store_entries,
    store_tail_lines,
)
from .filestore import FileSessionStore, FileStore
from .objectstore import ObjectEmulator, ObjectSessionStore, ObjectStore
from .sqlitestore import SqliteSessionStore, SqliteStore

__all__ = [
    "FileSessionStore",
    "FileStore",
    "ObjectEmulator",
    "ObjectSessionStore",
    "ObjectStore",
    "STORE_BACKENDS",
    "SegmentAppender",
    "SegmentStore",
    "SessionStore",
    "SqliteSessionStore",
    "SqliteStore",
    "StoreGate",
    "load_latest_checkpoint",
    "prune_checkpoints",
    "read_store_entries",
    "resolve_store",
    "store_tail_lines",
]

#: Backend names accepted by ``--store`` (and :func:`resolve_store`).
STORE_BACKENDS = ("file", "sqlite", "object")


def resolve_store(spec: Optional[str], root: str,
                  opener: Any = None) -> SegmentStore:
    """Build the backend a ``--store`` spec names, rooted at ``root``.

    ``spec`` is ``None``/``"file"``, ``"sqlite"``, ``"object"``, or any
    of those with an explicit location after a colon
    (``sqlite:/var/db/sessions.db``, ``object:/mnt/bucket``).  A bare
    path with no recognized backend prefix is a file root.
    """
    if spec is None or spec == "file":
        return FileStore(root, opener=opener)
    name, _, location = spec.partition(":")
    if name == "file":
        return FileStore(location or root, opener=opener)
    if name == "sqlite":
        return SqliteStore(location or os.path.join(root, "sessions.db"))
    if name == "object":
        return ObjectStore(location or os.path.join(root, ".objects"))
    raise ValueError(
        f"unknown store backend {name!r}; expected one of "
        f"{'|'.join(STORE_BACKENDS)} (optionally with ':<path>')")
