"""Sqlite storage backend — one database per session root.

Journal lines are rows (``journal(session, segment, idx, line)``), so a
segment is the ordered concatenation of its rows and a torn write lands
a partial row exactly where a torn file write lands a partial line.
Checkpoint publish is transactional: the payload is inserted
``published=0`` (the sqlite twin of the ``*.tmp`` file, invisible to
recovery), and a single committed ``UPDATE ... SET published=1`` is the
atomic rename.  The database runs in WAL mode with
``synchronous=FULL``, so every commit is on stable storage — an
acknowledged append under ``fsync="always"`` has the same power-loss
guarantee the file backend gives, and the ``"rotate"``/``"never"``
policies only relax *when* buffered lines commit, never the atomicity
of what did.

Fault injection flows through a :class:`~repro.store.base.StoreGate`
consulted at the same virtual paths the file backend's opener would
touch (``<dbdir>/<session>/wal-XXXXXXXXXX.jsonl``, ``....json.tmp``),
so one :class:`~repro.faults.plan.FaultPlan` drives both backends.
Every ``sqlite3.Error`` surfaces as ``OSError`` — the session layer's
degradation paths are backend-agnostic.
"""

from __future__ import annotations

import errno
import os
import sqlite3
import threading
from typing import Any, List, Optional, Tuple

from ..faults.plan import FaultPlan
from .base import (
    SegmentAppender,
    SegmentStore,
    SessionStore,
    StoreGate,
    checkpoint_name,
    segment_name,
)

__all__ = ["SqliteSessionStore", "SqliteStore"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS sessions (
    name TEXT PRIMARY KEY);
CREATE TABLE IF NOT EXISTS segments (
    session TEXT NOT NULL,
    key TEXT NOT NULL,
    PRIMARY KEY (session, key));
CREATE TABLE IF NOT EXISTS journal (
    session TEXT NOT NULL,
    segment TEXT NOT NULL,
    idx INTEGER NOT NULL,
    line BLOB NOT NULL,
    PRIMARY KEY (session, segment, idx));
CREATE TABLE IF NOT EXISTS checkpoints (
    session TEXT NOT NULL,
    key TEXT NOT NULL,
    seq INTEGER NOT NULL,
    data BLOB NOT NULL,
    published INTEGER NOT NULL,
    PRIMARY KEY (session, key));
"""


def _wrap(error: sqlite3.Error) -> OSError:
    return OSError(errno.EIO, f"sqlite backend error: {error}")


class SqliteStore(SegmentStore):
    """A session root stored in one sqlite database file."""

    backend = "sqlite"

    def __init__(self, path: str, *,
                 plan: Optional[FaultPlan] = None) -> None:
        self.path = path
        self.location = path
        self.gate = StoreGate(plan)
        self._lock = threading.RLock()
        self._conn: Optional[sqlite3.Connection] = None

    # -- connection ---------------------------------------------------------

    def connect(self) -> sqlite3.Connection:
        with self._lock:
            if self._conn is None:
                parent = os.path.dirname(self.path)
                if parent:
                    os.makedirs(parent, exist_ok=True)
                try:
                    conn = sqlite3.connect(self.path,
                                           check_same_thread=False)
                    conn.execute("PRAGMA journal_mode=WAL")
                    conn.execute("PRAGMA synchronous=FULL")
                    conn.executescript(_SCHEMA)
                    conn.commit()
                except sqlite3.Error as error:
                    raise _wrap(error) from error
                self._conn = conn
            return self._conn

    def close(self) -> None:
        with self._lock:
            conn, self._conn = self._conn, None
            if conn is not None:
                try:
                    conn.close()
                except sqlite3.Error:
                    pass

    # -- root interface -----------------------------------------------------

    def session(self, name: str) -> "SqliteSessionStore":
        return SqliteSessionStore(self, name)

    def session_names(self) -> List[str]:
        with self._lock:
            try:
                rows = self.connect().execute(
                    "SELECT name FROM sessions ORDER BY name").fetchall()
            except sqlite3.Error as error:
                raise _wrap(error) from error
        return [row[0] for row in rows]


class _SqliteAppender(SegmentAppender):
    """Buffered row appender over one segment.

    ``write`` lands lines in a process buffer (gated per line, like the
    file backend's per-write fault point); ``flush`` commits the buffer
    as rows — with ``synchronous=FULL`` a committed row is on stable
    storage, so ``sync`` has nothing left to make durable and only
    visits its fault point.
    """

    __slots__ = ("key", "_store", "_vpath", "_next_idx", "_buffer",
                 "_closed")

    def __init__(self, store: "SqliteSessionStore", key: str,
                 next_idx: int) -> None:
        self.key = key
        self._store = store
        self._vpath = store.describe(key)
        self._next_idx = next_idx
        self._buffer: List[bytes] = []
        self._closed = False

    def write(self, line: bytes) -> None:
        gate = self._store.gate
        action = gate.write_action(self._vpath, len(line))
        if action is None:
            self._buffer.append(line)
            return
        # Land what a real disk would have kept — everything already
        # buffered, plus the torn prefix of this line — durably, then
        # let the gate raise.
        if action.kind == "torn" and action.keep > 0:
            self._buffer.append(line[:action.keep])
        if self._buffer:
            self._commit_buffer()
        gate.finish_write(self._vpath, action, len(line))

    def flush(self) -> None:
        self._store.gate.point("flush", self._vpath)
        if self._buffer:
            self._commit_buffer()

    def sync(self) -> None:
        self._store.gate.point("fsync", self._vpath)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        # A closing file handle flushes its buffer; so does this one.
        if self._buffer and not self._store.gate.crashed:
            self._commit_buffer()

    def _commit_buffer(self) -> None:
        buffered, self._buffer = self._buffer, []
        start = self._next_idx
        self._next_idx += len(buffered)
        self._store.insert_lines(self.key, start, buffered)


class SqliteSessionStore(SessionStore):
    """One session's view of the root database."""

    backend = "sqlite"
    fs_directory = None

    def __init__(self, root: SqliteStore, name: str) -> None:
        self._root = root
        self.name = name
        # Virtual directory for fault-plan globs: shaped like the file
        # layout would be next to the database.
        self._vdir = os.path.join(os.path.dirname(root.path) or ".", name)
        self.location = f"{root.path}#{name}"

    @property
    def gate(self) -> StoreGate:
        return self._root.gate

    def _execute(self, sql: str, args: Tuple[Any, ...] = (),
                 *, commit: bool = False) -> Any:
        root = self._root
        with root._lock:
            conn = root.connect()
            try:
                cursor = conn.execute(sql, args)
                if commit:
                    conn.commit()
                return cursor
            except sqlite3.Error as error:
                try:
                    conn.rollback()
                except sqlite3.Error:
                    pass
                raise _wrap(error) from error

    # -- lifecycle ----------------------------------------------------------

    def prepare(self) -> None:
        self._execute("INSERT OR IGNORE INTO sessions (name) VALUES (?)",
                      (self.name,), commit=True)

    def exists(self) -> bool:
        row = self._execute("SELECT 1 FROM sessions WHERE name = ?",
                            (self.name,)).fetchone()
        return row is not None

    # -- journal segments ---------------------------------------------------

    def insert_lines(self, key: str, start_idx: int,
                     lines: List[bytes]) -> None:
        root = self._root
        with root._lock:
            conn = root.connect()
            try:
                conn.executemany(
                    "INSERT INTO journal (session, segment, idx, line) "
                    "VALUES (?, ?, ?, ?)",
                    [(self.name, key, start_idx + offset,
                      sqlite3.Binary(line))
                     for offset, line in enumerate(lines)])
                conn.commit()
            except sqlite3.Error as error:
                try:
                    conn.rollback()
                except sqlite3.Error:
                    pass
                raise _wrap(error) from error

    def segments(self) -> List[Tuple[int, str]]:
        from ..session.journal import _segment_first_seq
        rows = self._execute(
            "SELECT key FROM segments WHERE session = ? "
            "UNION SELECT DISTINCT segment FROM journal WHERE session = ?",
            (self.name, self.name)).fetchall()
        found = []
        for (key,) in rows:
            first = _segment_first_seq(key)
            if first is not None:
                found.append((first, key))
        found.sort()
        return found

    def segment_size(self, key: str) -> int:
        row = self._execute(
            "SELECT COALESCE(SUM(LENGTH(line)), 0) FROM journal "
            "WHERE session = ? AND segment = ?",
            (self.name, key)).fetchone()
        return int(row[0])

    def read_segment(self, key: str) -> bytes:
        rows = self._execute(
            "SELECT line FROM journal WHERE session = ? AND segment = ? "
            "ORDER BY idx", (self.name, key)).fetchall()
        return b"".join(bytes(row[0]) for row in rows)

    def delete_segment(self, key: str) -> None:
        self.gate.point("remove", self.describe(key))
        self._execute("DELETE FROM journal WHERE session = ? "
                      "AND segment = ?", (self.name, key))
        self._execute("DELETE FROM segments WHERE session = ? AND key = ?",
                      (self.name, key), commit=True)

    def truncate_segment(self, key: str, size: int) -> None:
        # Repair path — deliberately ungated, like the file backend's
        # plain-open truncate.
        rows = self._execute(
            "SELECT idx, line FROM journal WHERE session = ? "
            "AND segment = ? ORDER BY idx", (self.name, key)).fetchall()
        pos = 0
        for idx, line in rows:
            line = bytes(line)
            end = pos + len(line)
            if end <= size:
                pos = end
                continue
            if pos < size:
                self._execute(
                    "UPDATE journal SET line = ? WHERE session = ? "
                    "AND segment = ? AND idx = ?",
                    (sqlite3.Binary(line[:size - pos]), self.name, key,
                     idx))
            else:
                self._execute(
                    "DELETE FROM journal WHERE session = ? "
                    "AND segment = ? AND idx = ?", (self.name, key, idx))
            pos = end
        self._execute("SELECT 1", (), commit=True)

    def rollback_segment(self, key: str, size: int) -> None:
        self.truncate_segment(key, size)

    def create_segment(self, first_seq: int, *,
                       durable: bool = True) -> _SqliteAppender:
        key = segment_name(first_seq)
        vpath = self.describe(key)
        gate = self.gate
        gate.point("open", vpath)
        self._execute("INSERT OR IGNORE INTO segments (session, key) "
                      "VALUES (?, ?)", (self.name, key), commit=True)
        if durable:
            gate.point("fsync", vpath)
            gate.point("fsync-dir", self._vdir)
        return _SqliteAppender(self, key, 0)

    def open_segment(self, key: str) -> _SqliteAppender:
        self.gate.point("open", self.describe(key))
        row = self._execute(
            "SELECT COALESCE(MAX(idx) + 1, 0) FROM journal "
            "WHERE session = ? AND segment = ?",
            (self.name, key)).fetchone()
        return _SqliteAppender(self, key, int(row[0]))

    def sync_root(self) -> None:
        self.gate.point("fsync-dir", self._vdir)

    def describe(self, key: str) -> str:
        return os.path.join(self._vdir, key)

    # -- checkpoints --------------------------------------------------------

    def checkpoints(self) -> List[Tuple[int, str]]:
        rows = self._execute(
            "SELECT seq, key FROM checkpoints WHERE session = ? "
            "AND published = 1 ORDER BY seq, key",
            (self.name,)).fetchall()
        return [(int(seq), key) for seq, key in rows]

    def read_checkpoint(self, key: str) -> Optional[bytes]:
        row = self._execute(
            "SELECT data FROM checkpoints WHERE session = ? AND key = ? "
            "AND published = 1", (self.name, key)).fetchone()
        return bytes(row[0]) if row is not None else None

    def publish_checkpoint(self, seq: int, data: bytes) -> str:
        key = checkpoint_name(seq)
        tmp_key = key + ".tmp"
        vfinal = self.describe(key)
        vtmp = vfinal + ".tmp"
        gate = self.gate
        try:
            gate.point("open", vtmp)
            action = gate.write_action(vtmp, len(data))
            if action is not None:
                kept = (data[:action.keep] if action.kind == "torn"
                        else b"")
                self._stage(tmp_key, seq, kept)
                gate.finish_write(vtmp, action, len(data))
            self._stage(tmp_key, seq, data)
            gate.point("flush", vtmp)
            gate.point("fsync", vtmp)
            gate.point("replace", vfinal)
            self._rename(tmp_key, key)
            gate.point_after("replace-done", vfinal)
        except OSError:
            # Mirror the file backend's best-effort temp removal: an
            # unpublished staging row is the ``.tmp`` residue.
            try:
                self._execute(
                    "DELETE FROM checkpoints WHERE session = ? "
                    "AND key = ? AND published = 0",
                    (self.name, tmp_key), commit=True)
            except OSError:
                pass
            raise
        return vfinal

    def _stage(self, key: str, seq: int, data: bytes) -> None:
        """Land (or overwrite) the unpublished staging row durably."""
        self._execute(
            "INSERT INTO checkpoints (session, key, seq, data, published)"
            " VALUES (?, ?, ?, ?, 0) "
            "ON CONFLICT (session, key) DO UPDATE "
            "SET seq = excluded.seq, data = excluded.data, published = 0",
            (self.name, key, seq, sqlite3.Binary(data)), commit=True)

    def _rename(self, tmp_key: str, key: str) -> None:
        """The atomic rename: one committed transaction swaps the
        staging row in as the published checkpoint."""
        root = self._root
        with root._lock:
            conn = root.connect()
            try:
                conn.execute(
                    "DELETE FROM checkpoints WHERE session = ? "
                    "AND key = ?", (self.name, key))
                conn.execute(
                    "UPDATE checkpoints SET key = ?, published = 1 "
                    "WHERE session = ? AND key = ?",
                    (key, self.name, tmp_key))
                conn.commit()
            except sqlite3.Error as error:
                try:
                    conn.rollback()
                except sqlite3.Error:
                    pass
                raise _wrap(error) from error

    def delete_checkpoint(self, key: str) -> None:
        self.gate.point("remove", self.describe(key))
        self._execute("DELETE FROM checkpoints WHERE session = ? "
                      "AND key = ?", (self.name, key), commit=True)

    # -- fault-matrix helpers ----------------------------------------------

    def tmp_residue(self) -> int:
        """Unpublished staging rows — the sqlite twin of ``*.tmp``."""
        row = self._execute(
            "SELECT COUNT(*) FROM checkpoints WHERE session = ? "
            "AND published = 0", (self.name,)).fetchone()
        return int(row[0])
