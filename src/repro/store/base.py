"""The storage seam — every durable touch the session layer makes.

A :class:`SegmentStore` owns one *session root* (the thing ``repro
serve --root`` points at) and hands out :class:`SessionStore` views,
one per named session.  A session store abstracts exactly the
operations the journal and checkpoint writers perform:

* append / rotate / fsync journal segments (via :class:`SegmentAppender`),
* atomic checkpoint publish,
* list / read / delete segments and checkpoints (replay and pruning),
* torn-tail repair (truncate a segment to its valid prefix).

Three backends implement the contract — the original file-per-segment
layout (:mod:`repro.store.filestore`, byte-identical on disk), a sqlite
database (:mod:`repro.store.sqlitestore`) and an S3-style object store
(:mod:`repro.store.objectstore`).  The journal's recovery semantics are
therefore properties of *this interface*, not of one backend, and the
PR 5 fault matrix runs against all three.

Fault injection
---------------
The file backend keeps its :class:`~repro.session.journal.FileOpener`
seam.  The other backends have no file handles to wrap, so they consult
the same :class:`~repro.faults.plan.FaultPlan` through a
:class:`StoreGate` at equivalent *virtual* fault points: every journal
append gates ``("write", "<root>/<session>/wal-XXXXXXXXXX.jsonl")``,
every checkpoint publish gates the ``*.tmp`` write plus the
``replace``/``replace-done`` windows on the final checkpoint name.
Byte counters, globs and crash semantics (:class:`CrashPoint` tears
through ``except OSError``; a crashed gate stays dead) match the file
opener exactly, so one fault recipe drives all backends.

Keys
----
Segment keys are the file names of the file layout —
``wal-<firstseq:010d>.jsonl`` — and checkpoint keys are
``ckpt-<seq:010d>.json`` on every backend, which keeps naming, sorting
and fault-plan globs backend-independent.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..faults.plan import CrashPoint, FaultPlan
from ..session.journal import (
    JournalCorrupt,
    JournalTailGap,
    _decode_line,
    _segment_first_seq,
    _segment_name,
)

__all__ = [
    "CHECKPOINT_PREFIX",
    "CHECKPOINT_SUFFIX",
    "SegmentAppender",
    "SegmentStore",
    "SessionStore",
    "StoreGate",
    "checkpoint_name",
    "checkpoint_seq",
    "load_latest_checkpoint",
    "prune_checkpoints",
    "read_store_entries",
    "segment_name",
    "store_tail_lines",
]

CHECKPOINT_PREFIX = "ckpt-"
CHECKPOINT_SUFFIX = ".json"


def segment_name(first_seq: int) -> str:
    """Canonical segment key: ``wal-<firstseq:010d>.jsonl``."""
    return _segment_name(first_seq)


def segment_first_seq(key: str) -> Optional[int]:
    return _segment_first_seq(key)


def checkpoint_name(seq: int) -> str:
    """Canonical checkpoint key: ``ckpt-<seq:010d>.json``."""
    return f"{CHECKPOINT_PREFIX}{seq:010d}{CHECKPOINT_SUFFIX}"


def checkpoint_seq(key: str) -> Optional[int]:
    name = os.path.basename(key)
    if not (name.startswith(CHECKPOINT_PREFIX)
            and name.endswith(CHECKPOINT_SUFFIX)):
        return None
    digits = name[len(CHECKPOINT_PREFIX):-len(CHECKPOINT_SUFFIX)]
    return int(digits) if digits.isdigit() else None


# ---------------------------------------------------------------------------
# Fault gate for non-file backends
# ---------------------------------------------------------------------------

class StoreGate:
    """Interpret a :class:`~repro.faults.plan.FaultPlan` at virtual paths.

    The non-file backends call :meth:`point` / :meth:`write_action` at
    the same logical moments the file backend's
    :class:`~repro.faults.FaultOpener` intercepts real file I/O, with
    virtual targets shaped like the file layout so the same rule globs
    match.  ``crash`` actions mark the gate dead —
    :class:`~repro.faults.plan.CrashPoint` is raised from every later
    call, exactly like a killed process never touching storage again.
    """

    __slots__ = ("plan", "crashed")

    def __init__(self, plan: Optional[FaultPlan] = None) -> None:
        self.plan = plan
        self.crashed = False

    def check_alive(self) -> None:
        if self.crashed:
            raise CrashPoint("simulated process is dead")

    def crash(self, where: str) -> None:
        self.crashed = True
        raise CrashPoint(f"simulated kill -9 during {where}")

    def point(self, op: str, target: str) -> None:
        """A non-write fault point (open/flush/fsync/replace/remove)."""
        self.check_alive()
        if self.plan is None:
            return
        action = self.plan.decide(op, target)
        if action is None:
            return
        if action.kind == "crash":
            self.crash(f"{op} of {target}")
        raise OSError(action.errno, os.strerror(action.errno), target)

    def point_after(self, op: str, target: str) -> None:
        """A crash-only window *after* an operation landed
        (``replace-done``): non-crash actions are ignored, matching the
        file opener."""
        if self.crashed or self.plan is None:
            return
        action = self.plan.decide(op, target)
        if action is not None and action.kind == "crash":
            self.crash(f"{op} of {target}")

    def write_action(self, target: str, nbytes: int) -> Optional[Any]:
        """Decide for one write of ``nbytes`` to ``target``.

        ``None`` means proceed.  Otherwise the backend must first land
        whatever the action implies durably — the torn prefix
        (``action.keep`` bytes), or everything already buffered for a
        plain ``crash`` — and then call :meth:`finish_write`, which
        raises."""
        self.check_alive()
        if self.plan is None:
            return None
        return self.plan.decide("write", target, nbytes)

    def finish_write(self, target: str, action: Any, total: int) -> None:
        """Raise the fault :meth:`write_action` decided on."""
        if action.kind == "torn":
            if action.then == "crash":
                self.crash(f"torn write to {target}")
            raise OSError(action.errno,
                          f"{os.strerror(action.errno)} (torn write after "
                          f"{action.keep} of {total} bytes)", target)
        if action.kind == "crash":
            self.crash(f"write to {target}")
        raise OSError(action.errno, os.strerror(action.errno), target)


# ---------------------------------------------------------------------------
# The interface
# ---------------------------------------------------------------------------

class SegmentAppender:
    """An open, writable journal segment.

    The :class:`~repro.session.journal.JournalWriter` drives exactly
    the sequence it drove file handles with: ``write`` (land bytes in
    the backend's buffer), ``flush`` (hand them to the backend
    durably-visible layer), ``sync`` (force stable storage), ``close``.
    ``OSError`` from any of them degrades the journal;
    :class:`CrashPoint` tears through.
    """

    #: Segment key (``wal-XXXXXXXXXX.jsonl``).
    key: str = ""

    def write(self, line: bytes) -> None:
        raise NotImplementedError

    def flush(self) -> None:
        raise NotImplementedError

    def sync(self) -> None:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError


class SessionStore:
    """Every durable touch one session makes, behind one interface."""

    #: Backend name reported by ``health`` / ``stats`` frames.
    backend: str = "abstract"
    #: Human-readable location of this session's data.
    location: str = ""
    #: Real directory of the session when the backend is file-shaped
    #: (``None`` for database/object backends).
    fs_directory: Optional[str] = None

    # -- lifecycle ----------------------------------------------------------

    def prepare(self) -> None:
        """Create whatever the backend needs (directories, tables)."""
        raise NotImplementedError

    def exists(self) -> bool:
        """Does this session have any durable state?"""
        raise NotImplementedError

    def close(self) -> None:
        """Release per-session resources (never shared root handles)."""

    # -- journal segments ---------------------------------------------------

    def segments(self) -> List[Tuple[int, str]]:
        """``(first_seq, key)`` of every segment, ordered by first seq."""
        raise NotImplementedError

    def segment_size(self, key: str) -> int:
        raise NotImplementedError

    def read_segment(self, key: str) -> bytes:
        raise NotImplementedError

    def delete_segment(self, key: str) -> None:
        raise NotImplementedError

    def truncate_segment(self, key: str, size: int) -> None:
        """Torn-tail repair: keep only the first ``size`` bytes."""
        raise NotImplementedError

    def create_segment(self, first_seq: int, *,
                       durable: bool = True) -> SegmentAppender:
        """Open a fresh segment; with ``durable`` its existence survives
        a crash before any entry lands (file: fsync file + dir)."""
        raise NotImplementedError

    def open_segment(self, key: str) -> SegmentAppender:
        """Reopen an existing segment for appending."""
        raise NotImplementedError

    def rollback_segment(self, key: str, size: int) -> None:
        """Best-effort degradation rollback to the pre-append size.

        Unlike :meth:`truncate_segment` this must bypass the fault
        layer — it is the backstop running *after* the disk failed."""
        raise NotImplementedError

    def sync_root(self) -> None:
        """Persist namespace changes (file: fsync the directory)."""
        raise NotImplementedError

    def describe(self, key: str) -> str:
        """Human-readable address of ``key`` (file: the path)."""
        return f"{self.location}/{key}"

    # -- checkpoints --------------------------------------------------------

    def checkpoints(self) -> List[Tuple[int, str]]:
        """``(seq, key)`` of every published checkpoint, ordered."""
        raise NotImplementedError

    def read_checkpoint(self, key: str) -> Optional[bytes]:
        """Checkpoint payload, or ``None`` when unreadable/damaged."""
        raise NotImplementedError

    def publish_checkpoint(self, seq: int, data: bytes) -> str:
        """Atomically publish a checkpoint; returns its address.

        Must be all-or-nothing with respect to recovery: a crash at any
        point leaves either the previous checkpoint set or the previous
        set plus the complete new checkpoint — never a readable torn
        one."""
        raise NotImplementedError

    def delete_checkpoint(self, key: str) -> None:
        raise NotImplementedError


class SegmentStore:
    """A session root: names sessions, hands out :class:`SessionStore`."""

    backend: str = "abstract"
    location: str = ""

    def session(self, name: str) -> SessionStore:
        raise NotImplementedError

    def session_names(self) -> List[str]:
        raise NotImplementedError

    def close(self) -> None:
        """Release root-level resources (database connections)."""


# ---------------------------------------------------------------------------
# Generic readers — recovery, pruning and tailing over any backend
# ---------------------------------------------------------------------------

def read_store_entries(store: SessionStore, *, after_seq: int = 0,
                       repair: bool = True) -> Iterator[Dict[str, Any]]:
    """Yield journal entries with ``seq > after_seq`` in order.

    The store-generic twin of
    :func:`repro.session.journal.read_entries`: a torn tail in the last
    segment is truncated (with ``repair``) so later appends extend a
    clean journal; damage anywhere else raises
    :class:`~repro.session.journal.JournalCorrupt`.
    """
    segments = store.segments()
    expected: Optional[int] = None
    for index, (_first, key) in enumerate(segments):
        is_last = index == len(segments) - 1
        data = store.read_segment(key)
        offset = 0
        pos = 0
        total = len(data)
        while pos < total:
            newline = data.find(b"\n", pos)
            if newline < 0:
                line = data[pos:]
                pos = total
            else:
                line = data[pos:newline + 1]
                pos = newline + 1
            entry = _decode_line(line)
            if entry is None or not isinstance(entry.get("seq"), int):
                if not is_last:
                    raise JournalCorrupt(
                        f"corrupt entry at byte {offset} of non-tail "
                        f"segment {store.describe(key)}")
                if repair:
                    store.truncate_segment(key, offset)
                return
            seq = entry["seq"]
            if expected is not None and seq != expected:
                raise JournalCorrupt(
                    f"sequence gap in {store.describe(key)}: expected "
                    f"seq {expected}, found {seq}")
            expected = seq + 1
            offset += len(line)
            if seq > after_seq:
                yield entry


def store_tail_lines(store: SessionStore, *, after_seq: int = 0,
                     limit: Optional[int] = None,
                     max_bytes: Optional[int] = None
                     ) -> List[Tuple[int, bytes]]:
    """Raw framed lines with ``seq > after_seq``, as ``(seq, line)``.

    The store-generic equivalent of one fresh
    :class:`~repro.session.journal.JournalTailReader` poll — used by
    replication export and scrub re-shipping.  An incomplete or
    checksum-failing line at the very end of the last segment is
    treated as not yet flushed (the batch simply stops before it);
    raises :class:`~repro.session.journal.JournalTailGap` when the
    requested range was pruned away.
    """
    next_seq = after_seq + 1
    out: List[Tuple[int, bytes]] = []
    out_bytes = 0
    segments = store.segments()
    if not segments:
        return out
    index: Optional[int] = None
    for i, (first, _key) in enumerate(segments):
        if first <= next_seq:
            index = i
        else:
            break
    if index is None:
        raise JournalTailGap(
            f"journal {store.location!r} now starts at seq "
            f"{segments[0][0]} but the reader needs {next_seq}; "
            f"resync from a checkpoint")
    for i in range(index, len(segments)):
        _first, key = segments[i]
        is_last = i == len(segments) - 1
        data = store.read_segment(key)
        pos = 0
        while True:
            newline = data.find(b"\n", pos)
            if newline < 0:
                break  # incomplete tail line: not yet durably visible
            line = data[pos:newline + 1]
            pos = newline + 1
            entry = _decode_line(line)
            if entry is None or not isinstance(entry.get("seq"), int):
                if is_last and pos >= len(data):
                    return out
                raise JournalCorrupt(
                    f"corrupt entry in {store.describe(key)}")
            seq = entry["seq"]
            if seq < next_seq:
                continue  # overlap at the start of a segment
            if seq != next_seq:
                raise JournalCorrupt(
                    f"sequence gap in {store.describe(key)}: expected "
                    f"{next_seq}, found {seq}")
            next_seq = seq + 1
            out.append((seq, line))
            out_bytes += len(line)
            if limit is not None and len(out) >= limit:
                return out
            if max_bytes is not None and out_bytes >= max_bytes:
                return out
    return out


def load_latest_checkpoint(store: SessionStore,
                           schema: Optional[str] = None
                           ) -> Optional[Dict[str, Any]]:
    """Newest checkpoint that parses (and carries ``schema`` when
    given); damaged candidates are skipped — an older checkpoint plus a
    longer journal replay still recovers."""
    for _seq, key in reversed(store.checkpoints()):
        data = store.read_checkpoint(key)
        if data is None:
            continue
        try:
            state = json.loads(data)
        except ValueError:
            continue
        if not isinstance(state, dict) or not isinstance(
                state.get("seq"), int):
            continue
        if schema is not None and state.get("schema") != schema:
            continue
        return state
    return None


def prune_checkpoints(store: SessionStore, keep: int) -> None:
    """Delete all but the newest ``keep`` checkpoint generations."""
    checkpoints = store.checkpoints()
    doomed = checkpoints[:-keep] if keep > 0 else checkpoints
    for _seq, key in doomed:
        try:
            store.delete_checkpoint(key)
        except OSError:
            pass


def encode_checkpoint(state: Dict[str, Any]) -> bytes:
    """The canonical checkpoint payload: compact, key-sorted JSON."""
    return json.dumps(state, separators=(",", ":"),
                      sort_keys=True).encode("utf-8")
