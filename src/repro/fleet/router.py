"""The fleet router — one address, many workers, no lost acks.

The router speaks the exact JSON-line session protocol a
:class:`~repro.session.client.SessionClient` already speaks, so clients
need zero changes: they connect to the router instead of a worker and
every frame behaves identically.  Behind it:

* **Sharding** — session names map onto workers through a consistent
  :class:`~repro.fleet.hashring.HashRing`; different sessions proceed
  in parallel on different workers.
* **Replication** — in ``sync`` mode (the default) every mutating
  response carries the freshly journaled WAL lines piggybacked by the
  worker; the router lands them on the session's *follower* (the next
  distinct worker on the ring) **before** acknowledging the client, so
  an acknowledged mutation survives the primary's death.  A periodic
  pass ships checkpoints and closes any gaps; in ``async`` mode it is
  the only channel.
* **Failover** — a dead worker (connection refused after paced
  retries) is removed from the ring, which re-routes each of its
  sessions exactly onto the worker already holding its replica; the
  replica directory is the live layout, so the next command recovers
  it like any crash restart.  Retried frames carry the client's ``rid``
  and the rid rides *inside* journal entries, so a mutation that was
  applied-but-unacknowledged replays as a reconstructed response —
  exactly once, end to end.
* **Migration** — ``migrate`` moves a live session to a chosen worker:
  catch-up replication, a ``handover`` flush+close on the source, a
  final tail ship, a ring pin, and a verified re-open on the target.
  Concurrent clients wait on the session's router lock and observe at
  most a retryable frame.

Requests for one session serialize on a router-side lock (the worker
serializes them anyway) — this keeps shipped WAL lines in sequence
order.  Requests for different sessions interleave freely.
"""

from __future__ import annotations

import asyncio
import itertools
import json
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from ..obs.metrics import MetricsRegistry
from ..session.retry import RetryPolicy
from ..session.server import (
    _MAX_LINE,
    _READ_CHUNK,
    _RequestError,
    _encode_frame,
    _too_long_frame,
    _JOURNALED_COMMANDS,
)

from .hashring import HashRing

__all__ = ["FleetError", "Router", "WorkerGone", "WorkerLink"]

#: Worker-side replication plumbing a client must never reach through
#: the router — these frames can rewrite replica state.
_FLEET_INTERNAL = frozenset({"repl-export", "repl-apply", "repl-position",
                             "repl-config", "handover",
                             "store-scrub", "store-repair"})

_DEFAULT_REPL_INTERVAL = 0.25


class FleetError(RuntimeError):
    """A fleet-level invariant failed (replication mismatch, no route)."""


class WorkerGone(FleetError):
    """A worker is unreachable after paced reconnect attempts."""


class WorkerLink:
    """One multiplexed JSON-line connection to a worker.

    Frames from many client connections share the link, so requests are
    re-keyed onto link-local ids and demultiplexed back through futures.
    Reconnects are paced by a :class:`~repro.session.retry.RetryPolicy`;
    when it is exhausted the link raises :class:`WorkerGone` and fails
    every in-flight future, letting the router fail the session over.
    """

    def __init__(self, worker_id: str, host: str, port: int, *,
                 retry: Optional[RetryPolicy] = None,
                 request_timeout: float = 30.0,
                 setup: Optional[List[Dict[str, Any]]] = None) -> None:
        self.worker_id = worker_id
        self.host = host
        self.port = port
        self.retry = retry if retry is not None else RetryPolicy(
            retries=3, backoff=0.05, backoff_max=0.5, seed=0)
        self.request_timeout = request_timeout
        #: Frames sent on every (re)connect before regular traffic —
        #: e.g. ``repl-config`` turning response piggyback off.
        self.setup = list(setup or [])
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._read_task: Optional[asyncio.Task] = None
        self._futures: Dict[str, asyncio.Future] = {}
        self._ids = itertools.count(1)
        self._connect_lock: Optional[asyncio.Lock] = None
        self._closed = False

    @property
    def connected(self) -> bool:
        return self._writer is not None

    async def _ensure(self) -> None:
        if self._closed:
            raise WorkerGone(f"worker {self.worker_id!r} is closed")
        if self._connect_lock is None:
            self._connect_lock = asyncio.Lock()
        async with self._connect_lock:
            if self._writer is not None:
                return
            attempt = 0
            while True:
                try:
                    self._reader, self._writer = \
                        await asyncio.open_connection(
                            self.host, self.port, limit=_MAX_LINE)
                    self._read_task = asyncio.ensure_future(
                        self._read_loop(self._reader))
                    for frame in self.setup:
                        link_id = f"x{next(self._ids)}"
                        await self._exchange(
                            _encode_frame({**frame, "id": link_id}),
                            link_id)
                    return
                except OSError:
                    if self.retry.exhausted(attempt):
                        raise WorkerGone(
                            f"worker {self.worker_id!r} unreachable at "
                            f"{self.host}:{self.port}") from None
                    attempt += 1
                    await asyncio.sleep(self.retry.delay(attempt))

    async def _read_loop(self, reader: asyncio.StreamReader) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                # Demultiplex on the textual id prefix — every worker
                # response to this link starts {"id":"x<n>", and the
                # full parse is deferred until someone needs it.
                key: Any = None
                if line.startswith(b'{"id":"x'):
                    end = line.find(b'"', 8)
                    if end > 0:
                        key = line[7:end].decode("ascii")
                if key is None:
                    try:
                        frame = json.loads(line)
                    except ValueError:
                        continue
                    if not isinstance(frame, dict):
                        continue
                    key = frame.get("id")
                future = self._futures.pop(key, None)
                if future is not None and not future.done():
                    future.set_result(line)
        except (ConnectionResetError, BrokenPipeError, OSError,
                asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            raise
        finally:
            self._drop()

    def _drop(self) -> None:
        """Fail every in-flight request and forget the connection."""
        writer, self._writer, self._reader = self._writer, None, None
        if writer is not None:
            try:
                writer.close()
            except Exception:
                pass
        futures, self._futures = self._futures, {}
        for future in futures.values():
            if not future.done():
                future.set_exception(WorkerGone(
                    f"connection to worker {self.worker_id!r} lost "
                    f"mid-request"))

    async def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Send one frame and await its (parsed) response.

        Raises :class:`WorkerGone` if the worker cannot be reached or
        dies mid-request, and :class:`asyncio.TimeoutError` if it stays
        silent past ``request_timeout``.
        """
        frame, _raw = await self.forward(message)
        assert frame is not None
        return frame

    async def forward(self, message: Dict[str, Any],
                      raw: Optional[bytes] = None
                      ) -> Tuple[Optional[Dict[str, Any]], Optional[bytes]]:
        """Send one frame, returning ``(parsed_or_None, raw_or_None)``.

        ``raw`` is the client's original line for this ``message``;
        when given, the link forwards those bytes with only the frame
        id spliced (no re-encode), and — when the worker's response is
        a plain success with no piggybacked ``"_wal"`` — returns the
        raw response bytes with the client id restored, ready to write
        to the client verbatim, skipping the response parse entirely
        (``parsed`` is None unless the payload needed inspection).
        Every splice verifies an exact ``{"id":<id>`` prefix and falls
        back to a full re-encode/parse on any mismatch.
        """
        await self._ensure()
        link_id = f"x{next(self._ids)}"
        link_key = json.dumps(link_id).encode("utf-8")
        orig_key = json.dumps(message.get("id"),
                              separators=(",", ":")).encode("utf-8")
        payload: Optional[bytes] = None
        if raw is not None:
            prefix = b'{"id":' + orig_key
            if raw.startswith(prefix) \
                    and raw[len(prefix):len(prefix) + 1] in (b",", b"}"):
                payload = b'{"id":' + link_key + raw[len(prefix):] + b"\n"
        if payload is None:
            forwarded = dict(message)
            forwarded["id"] = link_id
            payload = _encode_frame(forwarded)
        line = await self._exchange(payload, link_id)
        if raw is not None and line.endswith(b"\n") \
                and line.startswith(b'{"id":' + link_key + b',"ok":true') \
                and b'"_wal"' not in line:
            raw_out = b'{"id":' + orig_key + line[len(link_key) + 6:]
            if b'"replayed"' not in line:
                return None, raw_out
            return json.loads(line), raw_out
        return json.loads(line), None

    async def _exchange(self, payload: bytes, link_id: str) -> bytes:
        assert self._writer is not None
        future: asyncio.Future = \
            asyncio.get_running_loop().create_future()
        self._futures[link_id] = future
        try:
            self._writer.write(payload)
            await self._writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            self._drop()
            raise WorkerGone(
                f"lost connection to worker {self.worker_id!r}") from None
        try:
            return await asyncio.wait_for(future, self.request_timeout)
        finally:
            self._futures.pop(link_id, None)

    async def close(self) -> None:
        self._closed = True
        task, self._read_task = self._read_task, None
        self._drop()
        if task is not None:
            task.cancel()
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass


class Router:
    """Serve the session protocol over a sharded, replicated fleet.

    ``workers`` maps worker id → ``(host, port)``.  ``replication`` is
    ``"sync"`` (ship piggybacked WAL lines before acknowledging) or
    ``"async"`` (periodic shipping only).
    """

    def __init__(self, workers: Dict[str, Tuple[str, int]], *,
                 host: str = "127.0.0.1", port: int = 0,
                 replication: str = "sync",
                 repl_interval: float = _DEFAULT_REPL_INTERVAL,
                 request_timeout: float = 30.0,
                 max_frame_bytes: int = _MAX_LINE,
                 vnodes: int = 64) -> None:
        if replication not in ("sync", "async"):
            raise ValueError("replication must be 'sync' or 'async'")
        self.host = host
        self.port = port
        self.replication = replication
        self.repl_interval = repl_interval
        self.request_timeout = request_timeout
        self.max_frame_bytes = max_frame_bytes
        self.ring = HashRing(workers, vnodes=vnodes)
        self.metrics = MetricsRegistry()
        # Timer-driven replication has no use for per-response WAL
        # payloads: turn them off at the worker so responses can be
        # forwarded to clients byte-for-byte.
        setup = [] if replication == "sync" else \
            [{"cmd": "repl-config", "piggyback": False}]
        self._links: Dict[str, WorkerLink] = {
            worker_id: WorkerLink(worker_id, addr[0], addr[1],
                                  request_timeout=request_timeout,
                                  setup=setup)
            for worker_id, addr in workers.items()}
        self._addresses = dict(workers)
        self._down: Set[str] = set()
        self._locks: Dict[str, asyncio.Lock] = {}
        self._known: Set[str] = set()
        self._connections: Set[asyncio.StreamWriter] = set()
        self._server: Optional[asyncio.AbstractServer] = None
        self._stopped: Optional[asyncio.Event] = None
        self._repl_task: Optional[asyncio.Task] = None

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._client_connected, self.host, self.port, limit=_MAX_LINE)
        self.port = self._server.sockets[0].getsockname()[1]
        if self.repl_interval > 0:
            self._repl_task = asyncio.ensure_future(self._repl_loop())

    async def run(self) -> None:
        if self._server is None:
            await self.start()
        assert self._stopped is not None
        await self._stopped.wait()
        await self.stop()

    def request_stop(self) -> None:
        if self._stopped is not None:
            self._stopped.set()

    async def stop(self) -> None:
        if self._repl_task is not None:
            self._repl_task.cancel()
            try:
                await self._repl_task
            except (asyncio.CancelledError, Exception):
                pass
            self._repl_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._connections):
            writer.close()
        for link in self._links.values():
            await link.close()

    # -- connection handling (same framing as SessionServer) ----------------

    async def _client_connected(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        try:
            self._connections.add(writer)
            await self._serve_connection(reader, writer)
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            pass
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        buffer = bytearray()
        discarding = False
        limit = self.max_frame_bytes
        while True:
            newline = buffer.find(b"\n")
            if newline < 0:
                if len(buffer) > limit:
                    if not discarding:
                        discarding = True
                        writer.write(_encode_frame(_too_long_frame(limit)))
                        await writer.drain()
                    del buffer[:]
                chunk = await reader.read(_READ_CHUNK)
                if not chunk:
                    return
                buffer += chunk
                continue
            line = bytes(buffer[:newline])
            del buffer[:newline + 1]
            if discarding:
                discarding = False
                continue
            if len(line) > limit:
                writer.write(_encode_frame(_too_long_frame(limit)))
                await writer.drain()
                continue
            response = await self._handle_line(line)
            writer.write(response if isinstance(response, bytes)
                         else _encode_frame(response))
            await writer.drain()

    async def _handle_line(self, line: bytes) -> Any:
        """Returns a response frame dict — or raw bytes ready to write
        when the worker's response passed through unmodified."""
        request_id: Any = None
        try:
            try:
                message = json.loads(line)
            except ValueError:
                raise _RequestError("bad-request", "request is not JSON")
            if not isinstance(message, dict):
                raise _RequestError("bad-request",
                                    "request must be a JSON object")
            request_id = message.get("id")
            cmd = message.get("cmd")
            if cmd in _FLEET_INTERNAL:
                raise _RequestError(
                    "bad-request",
                    f"cmd {cmd!r} is fleet-internal replication plumbing")
            handler = self.LOCAL_COMMANDS.get(cmd)
            if handler is not None:
                result = await handler(self, message)
                return {"id": request_id, "ok": True, "result": result}
            frame, raw = await self._route(message, line)
            if raw is not None:
                return raw
            frame["id"] = request_id
            return frame
        except _RequestError as error:
            return {"id": request_id, "ok": False, "error": error.frame()}
        except (FleetError, asyncio.TimeoutError) as error:
            return {"id": request_id, "ok": False,
                    "error": {"type": "overloaded",
                              "message": f"fleet is failing over "
                                         f"({error}); retry"}}
        except Exception as error:  # pragma: no cover - defensive
            return {"id": request_id, "ok": False,
                    "error": {"type": "internal", "message": str(error)}}

    # -- routing ------------------------------------------------------------

    def _session_lock(self, name: str) -> asyncio.Lock:
        lock = self._locks.get(name)
        if lock is None:
            lock = self._locks[name] = asyncio.Lock()
        return lock

    @staticmethod
    def _retry_safe(message: Dict[str, Any]) -> bool:
        """A frame that may be replayed against the follower.

        Mutations carrying a ``rid`` dedup durably at the worker (the
        rid rides in the journal entry), and commands that never
        journal are free to re-run.  A rid-less mutation is the only
        case the router must bounce back as a retryable error.
        """
        if message.get("rid") is not None:
            return True
        return message.get("cmd") not in _JOURNALED_COMMANDS

    async def _route(self, message: Dict[str, Any],
                     line: Optional[bytes] = None
                     ) -> Tuple[Dict[str, Any], Optional[bytes]]:
        name = message.get("session")
        if not isinstance(name, str) or not name:
            raise _RequestError(
                "bad-request",
                f"cmd {message.get('cmd')!r} requires a session name")
        self._known.add(name)
        self.metrics.counter("fleet.requests").inc()
        async with self._session_lock(name):
            for attempt in (0, 1):
                worker = self.ring.lookup(name)
                if worker is None:
                    raise _RequestError("overloaded", "no live workers")
                self.metrics.counter(
                    f"fleet.worker.{worker}.requests").inc()
                link = self._links[worker]
                try:
                    frame, raw = await link.forward(message, line)
                    if frame is None:
                        # verified plain success, forwarded verbatim
                        return {}, raw
                except WorkerGone:
                    await self._worker_down(worker)
                    if attempt == 0 and self._retry_safe(message):
                        continue
                    raise _RequestError(
                        "busy",
                        f"worker {worker!r} died mid-request; retry")
                except asyncio.TimeoutError:
                    raise _RequestError(
                        "timeout",
                        f"worker {worker!r} exceeded "
                        f"{self.request_timeout}s") from None
                error = frame.get("error") or {}
                if not frame.get("ok") and error.get("type") == "degraded":
                    # The worker's disk is failing this session; move it
                    # onto its follower and retry there once.
                    if attempt == 0 and await self._evacuate(name, worker):
                        continue
                    return frame, raw
                result = frame.get("result")
                if frame.get("ok") and isinstance(result, dict):
                    if result.get("replayed"):
                        self.metrics.counter("fleet.rid_replays").inc()
                    wal = result.pop("_wal", None)
                    if wal is not None:
                        raw = None  # response mutated: re-encode
                        if self.replication == "sync":
                            await self._ship(name, worker, wal)
                return frame, raw
        raise FleetError("unreachable")  # pragma: no cover

    # -- replication --------------------------------------------------------

    async def _ship(self, name: str, worker: str,
                    wal: Dict[str, Any]) -> None:
        """Land piggybacked WAL lines on the session's follower."""
        follower = self.ring.lookup(name, skip=(worker,))
        if follower is None:
            return
        if wal.get("full"):
            await self._try_full_sync(name, worker, follower)
            return
        link = self._links[follower]
        try:
            frame = await link.request({
                "cmd": "repl-apply", "session": name,
                "lines": wal.get("lines", [])})
        except (WorkerGone, asyncio.TimeoutError):
            await self._worker_down(follower)
            return
        error = frame.get("error") or {}
        if frame.get("ok"):
            self.metrics.counter("fleet.repl.ships").inc()
            self.metrics.counter("fleet.repl.lines").inc(
                len(wal.get("lines", [])))
        elif error.get("type") == "repl-gap":
            await self._try_full_sync(name, worker, follower)

    async def _try_full_sync(self, name: str, source: str,
                             target: str) -> Optional[int]:
        self.metrics.counter("fleet.full_syncs").inc()
        try:
            return await self._full_sync(name, source, target)
        except (WorkerGone, asyncio.TimeoutError, FleetError):
            return None

    async def _full_sync(self, name: str, source: str,
                         target: str) -> int:
        """Replicate ``name`` from ``source`` until ``target`` holds
        everything durable at the source; returns the target position."""
        src, tgt = self._links[source], self._links[target]
        frame = await tgt.request({"cmd": "repl-position", "session": name})
        if not frame.get("ok"):
            raise FleetError(
                f"follower {target!r} refuses replication of {name!r}: "
                f"{(frame.get('error') or {}).get('message')}")
        position = frame["result"]["position"]
        after_ckpt = frame["result"].get("checkpoint_seq", 0)
        while True:
            frame = await src.request({
                "cmd": "repl-export", "session": name,
                "after_seq": position, "after_ckpt": after_ckpt})
            if not frame.get("ok"):
                raise FleetError(
                    f"cannot export {name!r} from {source!r}: "
                    f"{(frame.get('error') or {}).get('message')}")
            export = frame["result"]
            lines = export.get("lines", [])
            payload: Dict[str, Any] = {
                "cmd": "repl-apply", "session": name, "lines": lines}
            if "checkpoint" in export:
                payload["checkpoint"] = export["checkpoint"]
            elif not lines:
                return position  # caught up
            frame = await tgt.request(payload)
            if not frame.get("ok"):
                raise FleetError(
                    f"cannot apply {name!r} onto {target!r}: "
                    f"{(frame.get('error') or {}).get('message')}")
            position = frame["result"]["position"]
            after_ckpt = max(after_ckpt,
                             export.get("checkpoint_seq", after_ckpt))
            self.metrics.counter("fleet.repl.lines").inc(len(lines))
            self.metrics.counter("fleet.repl.ships").inc()

    async def _repl_loop(self) -> None:
        """Background pass shipping checkpoints and closing any gaps
        the synchronous piggyback path could not cover (and, in
        ``async`` mode, all replication)."""
        while True:
            await asyncio.sleep(self.repl_interval)
            for name in sorted(self._known):
                try:
                    async with self._session_lock(name):
                        await self._sync_session(name)
                except asyncio.CancelledError:
                    raise
                except Exception:
                    continue

    async def _sync_session(self, name: str) -> Optional[Dict[str, Any]]:
        """One replication pass for ``name`` (caller holds its lock)."""
        primary, follower = self.ring.lookup_pair(name)
        if primary is None or follower is None:
            return None
        position = await self._try_full_sync(name, primary, follower)
        return {"primary": primary, "follower": follower,
                "position": position}

    # -- failure handling ---------------------------------------------------

    async def _worker_down(self, worker: str) -> None:
        """Remove a dead worker; its sessions re-route to their
        replicas by ring arithmetic alone."""
        if worker not in self.ring:
            return
        self.ring.remove(worker)
        self._down.add(worker)
        self.metrics.counter("fleet.failovers").inc()
        link = self._links.get(worker)
        if link is not None:
            await link.close()

    async def _evacuate(self, name: str, worker: str) -> bool:
        """Move one degraded session off ``worker`` onto its follower
        (full sync, source close, pin).  The worker itself stays in the
        ring — only this session's disk is failing."""
        follower = self.ring.lookup(name, skip=(worker,))
        if follower is None:
            return False
        if await self._try_full_sync(name, worker, follower) is None:
            return False
        try:
            frame = await self._links[worker].request(
                {"cmd": "handover", "session": name})
        except (WorkerGone, asyncio.TimeoutError):
            await self._worker_down(worker)
            return True  # ring removal re-routes the session anyway
        if not frame.get("ok"):
            return False
        final = frame["result"]["position"]
        position = await self._try_full_sync(name, worker, follower)
        if position is not None and position < final:
            return False
        self.ring.pin(name, follower)
        self.metrics.counter("fleet.evacuations").inc()
        return True

    # -- router-local commands ----------------------------------------------

    async def _cmd_ping(self, message: Dict[str, Any]) -> Dict[str, Any]:
        return {"pong": True, "router": True}

    async def _cmd_sessions(self,
                            message: Dict[str, Any]) -> Dict[str, Any]:
        names: Set[str] = set()
        for frame in (await self._broadcast({"cmd": "sessions"})).values():
            if frame.get("ok"):
                names.update(frame["result"].get("sessions", []))
        return {"sessions": sorted(names)}

    async def _cmd_health(self, message: Dict[str, Any]) -> Dict[str, Any]:
        frames = await self._broadcast({"cmd": "health"})
        workers: Dict[str, Any] = {}
        degraded: List[str] = []
        for worker_id in sorted(self._addresses):
            if worker_id in self._down:
                workers[worker_id] = {"status": "down"}
                continue
            frame = frames.get(worker_id)
            if frame is None or not frame.get("ok"):
                workers[worker_id] = {"status": "unreachable"}
                continue
            health = frame["result"]
            workers[worker_id] = health
            degraded.extend(health.get("degraded", []))
            self.metrics.gauge(
                f"fleet.worker.{worker_id}.open_sessions").set(
                    health.get("sessions", 0))
            self.metrics.gauge(
                f"fleet.worker.{worker_id}.connections").set(
                    health.get("connections", 0))
        status = "ok"
        if self._down or any(w.get("status") in ("down", "unreachable")
                             for w in workers.values()):
            status = "degraded"
        elif degraded:
            status = "degraded"
        return {"status": status, "role": "router",
                "replication": self.replication,
                "workers": workers,
                "ring": self.ring.workers,
                "pins": self.ring.pins,
                "down": sorted(self._down),
                "degraded": sorted(set(degraded)),
                "connections": len(self._connections),
                "metrics": self.metrics.snapshot()}

    async def _cmd_fleet_sync(self,
                              message: Dict[str, Any]) -> Dict[str, Any]:
        if "session" in message:
            names: Iterable[str] = [message["session"]]
        else:
            names = sorted(self._known
                           | set((await self._cmd_sessions({}))["sessions"]))
        synced: Dict[str, Any] = {}
        for name in names:
            self._known.add(name)
            async with self._session_lock(name):
                synced[name] = await self._sync_session(name)
        return {"synced": synced}

    async def _cmd_migrate(self, message: Dict[str, Any]) -> Dict[str, Any]:
        name = message.get("session")
        target = message.get("target")
        if not isinstance(name, str) or not name:
            raise _RequestError("bad-request",
                                "migrate requires a session name")
        if target not in self.ring:
            raise _RequestError("bad-request",
                                f"unknown or dead worker {target!r}")
        self._known.add(name)
        self.metrics.counter("fleet.requests").inc()
        async with self._session_lock(name):
            source = self.ring.lookup(name)
            if source is None:
                raise _RequestError("overloaded", "no live workers")
            if source == target:
                return {"migrated": False, "session": name,
                        "worker": target}
            # 1. catch the target up while the session stays live
            await self._full_sync(name, source, target)
            # 2. freeze the source: flush, close, read final position
            frame = await self._links[source].request(
                {"cmd": "handover", "session": name})
            if not frame.get("ok"):
                raise _RequestError(
                    "internal", f"handover of {name!r} on {source!r} "
                    f"failed: {(frame.get('error') or {}).get('message')}")
            final = frame["result"]["position"]
            # 3. land the tail written between (1) and the freeze
            position = await self._full_sync(name, source, target)
            if position != final:
                raise FleetError(
                    f"migration of {name!r} stalled: source froze at "
                    f"{final}, target reached {position}")
            # 4. re-route, then prove the target recovers to the exact
            #    frozen position before any client frame lands there
            self.ring.pin(name, target)
            frame = await self._links[target].request(
                {"cmd": "open", "session": name})
            if not frame.get("ok") \
                    or frame["result"].get("position") != final:
                raise FleetError(
                    f"target {target!r} recovered {name!r} at "
                    f"{(frame.get('result') or {}).get('position')}, "
                    f"expected {final}")
            self.metrics.counter("fleet.migrations").inc()
            return {"migrated": True, "session": name, "from": source,
                    "to": target, "position": final}

    # -- anti-entropy scrub --------------------------------------------------

    async def _fetch_range(self, follower: str, name: str, after: int,
                           until: Optional[int]) -> Optional[List[str]]:
        """Export the exact raw lines ``(after, until]`` from a
        follower's replica, or ``None`` when it cannot serve them."""
        lines: List[str] = []
        position = after
        while True:
            try:
                frame = await self._links[follower].request({
                    "cmd": "repl-export", "session": name,
                    "after_seq": position, "after_ckpt": 1 << 60})
            except (WorkerGone, asyncio.TimeoutError):
                return None
            if not frame.get("ok"):
                return None
            export = frame["result"]
            if "checkpoint" in export \
                    or export.get("from", position) != position:
                return None  # the replica pruned past the range
            batch = export.get("lines", [])
            if not batch:
                break
            lines.extend(batch)
            position = export.get("end", position)
            if until is not None and position >= until:
                break
        return lines or None

    async def _cmd_scrub(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Anti-entropy pass for one session: scrub the primary's
        durable state and re-ship damaged/missing ranges from the
        follower's replica."""
        name = message.get("session")
        if not isinstance(name, str) or not name:
            raise _RequestError("bad-request",
                                "scrub requires a session name")
        self._known.add(name)
        self.metrics.counter("fleet.requests").inc()
        repair = bool(message.get("repair", True))
        async with self._session_lock(name):
            primary = self.ring.lookup(name)
            if primary is None:
                raise _RequestError("overloaded", "no live workers")
            follower = self.ring.lookup(name, skip=(primary,))
            frame = await self._links[primary].request(
                {"cmd": "store-scrub", "session": name, "repair": repair})
            if not frame.get("ok"):
                raise _RequestError(
                    "internal",
                    f"scrub of {name!r} on {primary!r} failed: "
                    f"{(frame.get('error') or {}).get('message')}")
            report = frame["result"]
            needs = report.get("needs", [])
            if not (repair and needs and follower is not None
                    and not report.get("open")):
                report.update({"worker": primary, "follower": follower})
                return report
            shipped = 0
            for need in needs:
                after = int(need["after"])
                until = need.get("until")
                until = int(until) if until is not None else None
                lines = await self._fetch_range(follower, name, after,
                                                until)
                if lines is None:
                    continue
                try:
                    frame = await self._links[primary].request({
                        "cmd": "store-repair", "session": name,
                        "after": after, "until": until, "lines": lines})
                except (WorkerGone, asyncio.TimeoutError):
                    break
                if frame.get("ok"):
                    shipped += 1
                    report = frame["result"]  # includes the re-scrub
            self.metrics.counter("fleet.scrub_repairs").inc(shipped)
            report.update({"worker": primary, "follower": follower,
                           "shipped_ranges": shipped})
            return report

    async def _cmd_shutdown(self,
                            message: Dict[str, Any]) -> Dict[str, Any]:
        await self._broadcast({"cmd": "shutdown"})
        self.request_stop()
        return {"stopping": True}

    async def _broadcast(
            self, message: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
        """Send one frame to every live worker; unreachable workers are
        simply absent from the result."""
        out: Dict[str, Dict[str, Any]] = {}

        async def one(worker_id: str, link: WorkerLink) -> None:
            try:
                out[worker_id] = await link.request(dict(message))
            except (WorkerGone, asyncio.TimeoutError):
                pass

        await asyncio.gather(*(one(worker_id, link)
                               for worker_id, link in self._links.items()
                               if worker_id in self.ring))
        return out


Router.LOCAL_COMMANDS = {
    "ping": Router._cmd_ping,
    "sessions": Router._cmd_sessions,
    "health": Router._cmd_health,
    "fleet-health": Router._cmd_health,
    "fleet-sync": Router._cmd_fleet_sync,
    "scrub": Router._cmd_scrub,
    "migrate": Router._cmd_migrate,
    "shutdown": Router._cmd_shutdown,
}
