"""repro.fleet — sharded multi-worker session fleet.

One router, many workers, one address.  Session names consistent-hash
onto workers (:mod:`~repro.fleet.hashring`), every session's WAL ships
to a designated follower (:mod:`~repro.fleet.replica`,
:mod:`~repro.fleet.worker`), and the router
(:mod:`~repro.fleet.router`) proxies the unmodified JSON-line session
protocol with exactly-once retry semantics across worker death and
live migration.  :mod:`~repro.fleet.runner` hosts whole fleets
in-process for tests and benchmarks.

Clients are untouched: a
:class:`~repro.session.client.SessionClient` pointed at the router
behaves exactly as if it were talking to a single server — worker
failures and migrations surface as nothing more than the retryable
error frames it already handles.
"""

from .hashring import HashRing
from .replica import ReplicaError, ReplicaGap, ReplicaStore
from .router import FleetError, Router, WorkerGone, WorkerLink
from .runner import LocalFleet, ServerThread
from .worker import WorkerServer

__all__ = [
    "FleetError",
    "HashRing",
    "LocalFleet",
    "ReplicaError",
    "ReplicaGap",
    "ReplicaStore",
    "Router",
    "ServerThread",
    "WorkerGone",
    "WorkerLink",
    "WorkerServer",
]
