"""In-process fleet harnesses for tests, benchmarks and embedding.

:class:`LocalFleet` runs N :class:`~repro.fleet.worker.WorkerServer`
instances (each with its own root directory — its own "disk") and one
:class:`~repro.fleet.router.Router` on a single background event-loop
thread, exposing plain blocking helpers so synchronous test code and
:class:`~repro.session.client.SessionClient` can drive a whole fleet
without subprocess choreography.  :meth:`LocalFleet.kill_worker` drops
a worker abruptly — no drain, no journal sync — to exercise failover.

:class:`ServerThread` runs a single ordinary
:class:`~repro.session.server.SessionServer` the same way, so routed
and direct topologies can be benchmarked side by side.

Process-level crash realism (SIGKILL, lost page cache) lives in
``tools/fleet_smoke.py``, which drives real subprocesses through the
``repro fleet`` CLI instead.
"""

from __future__ import annotations

import asyncio
import os
import threading
from typing import Any, Dict, Optional, Tuple

from ..session.client import SessionClient
from ..session.server import SessionServer
from .router import Router
from .worker import WorkerServer

__all__ = ["LocalFleet", "ServerThread"]

_START_TIMEOUT = 30.0


class _LoopThread:
    """One daemon thread running an event loop for blocking callers."""

    def __init__(self) -> None:
        self.loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.run_forever()

    def start(self) -> None:
        self._thread.start()

    def call(self, coro: Any, timeout: float = _START_TIMEOUT) -> Any:
        return asyncio.run_coroutine_threadsafe(
            coro, self.loop).result(timeout)

    def stop(self) -> None:
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(timeout=5)
        if not self.loop.is_running():
            self.loop.close()


class LocalFleet:
    """N workers + a router on one background loop, blocking API."""

    def __init__(self, root: str, *, workers: int = 2,
                 fsync: str = "never", replication: str = "sync",
                 repl_interval: float = 0.25,
                 request_timeout: float = 30.0,
                 worker_kwargs: Optional[Dict[str, Any]] = None,
                 router_kwargs: Optional[Dict[str, Any]] = None) -> None:
        self.root = root
        self.worker_count = workers
        self.fsync = fsync
        self.replication = replication
        self.repl_interval = repl_interval
        self.request_timeout = request_timeout
        self.worker_kwargs = dict(worker_kwargs or {})
        self.router_kwargs = dict(router_kwargs or {})
        self.workers: Dict[str, WorkerServer] = {}
        self.router: Optional[Router] = None
        self._loop: Optional[_LoopThread] = None

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "LocalFleet":
        self._loop = _LoopThread()
        self._loop.start()
        addresses: Dict[str, Tuple[str, int]] = {}
        for index in range(self.worker_count):
            worker_id = f"w{index}"
            worker_root = os.path.join(self.root, worker_id)
            server = WorkerServer(worker_root, worker_id=worker_id,
                                  fsync=self.fsync, **self.worker_kwargs)
            self._loop.call(server.start())
            self.workers[worker_id] = server
            addresses[worker_id] = (server.host, server.port)
        self.router = Router(addresses, replication=self.replication,
                             repl_interval=self.repl_interval,
                             request_timeout=self.request_timeout,
                             **self.router_kwargs)
        self._loop.call(self.router.start())
        return self

    @property
    def port(self) -> int:
        assert self.router is not None
        return self.router.port

    @property
    def host(self) -> str:
        assert self.router is not None
        return self.router.host

    def stop(self) -> None:
        if self._loop is None:
            return
        if self.router is not None:
            self._loop.call(self.router.stop())
        for server in self.workers.values():
            try:
                self._loop.call(server.stop())
            except Exception:
                pass
        self._loop.stop()
        self._loop = None

    def __enter__(self) -> "LocalFleet":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- clients ------------------------------------------------------------

    def client(self, **kwargs: Any) -> SessionClient:
        """A retrying client pointed at the router."""
        kwargs.setdefault("retries", 4)
        kwargs.setdefault("backoff", 0.05)
        return SessionClient(self.host, self.port, **kwargs)

    def direct_client(self, worker_id: str, **kwargs: Any) -> SessionClient:
        server = self.workers[worker_id]
        return SessionClient(server.host, server.port, **kwargs)

    # -- fault injection ----------------------------------------------------

    def kill_worker(self, worker_id: str) -> None:
        """Drop a worker abruptly: stop accepting, cut every client
        connection, abandon its open sessions without syncing.

        This is the in-process stand-in for ``SIGKILL`` — acknowledged
        state must survive on the follower, not on this worker's
        goodwill.
        """
        server = self.workers[worker_id]
        assert self._loop is not None
        self._loop.call(self._kill(server))

    @staticmethod
    async def _kill(server: WorkerServer) -> None:
        if server._server is not None:
            server._server.close()
            await server._server.wait_closed()
            server._server = None
        for writer in list(server._connections):
            writer.close()
        # Abandon sessions: no close(), no sync() — exactly what a
        # killed process would (not) do.  The dropped file objects may
        # flush on garbage collection, but nothing in the fleet reads
        # this root again after failover.
        server.manager.sessions.clear()

    def worker_of(self, session: str) -> str:
        """Which worker currently owns ``session``."""
        assert self.router is not None
        worker = self.router.ring.lookup(session)
        if worker is None:
            raise RuntimeError("no live workers")
        return worker

    def follower_of(self, session: str) -> str:
        assert self.router is not None
        _primary, follower = self.router.ring.lookup_pair(session)
        if follower is None:
            raise RuntimeError("no follower available")
        return follower


class ServerThread:
    """A single plain :class:`SessionServer` on a background loop."""

    def __init__(self, root: str, **kwargs: Any) -> None:
        self.server = SessionServer(root, **kwargs)
        self._loop: Optional[_LoopThread] = None

    def start(self) -> "ServerThread":
        self._loop = _LoopThread()
        self._loop.start()
        self._loop.call(self.server.start())
        return self

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def client(self, **kwargs: Any) -> SessionClient:
        return SessionClient(self.host, self.port, **kwargs)

    def stop(self) -> None:
        if self._loop is None:
            return
        self._loop.call(self.server.stop())
        self._loop.stop()
        self._loop = None

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
