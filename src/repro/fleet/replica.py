"""Follower-side storage of shipped WAL lines and checkpoints.

A :class:`ReplicaStore` receives the raw journal lines and checkpoint
snapshots a primary worker exports (``repl-export``) and lands them in
the worker's session store in **exactly** the live session layout —
``wal-*.jsonl`` segments of verbatim framed lines plus ``ckpt-*.json``
snapshots.  Promotion after a primary death is therefore not a special
code path at all: opening the session through the ordinary
:class:`~repro.session.manager.SessionManager` replays checkpoint +
tail exactly as crash recovery does, and replay determinism (the Apt
fixpoint argument behind ``fingerprint``) guarantees the follower
reaches the identical state the primary acknowledged.

The landing goes through the :class:`~repro.store.base.SessionStore`
interface, so a follower replicates into whichever backend its worker
runs on (``file``, ``sqlite``, ``object``) — and its replica doubles
as the healthy *source* for the anti-entropy scrub
(:mod:`repro.store.scrub`) when the primary's copy is damaged.

Apply is idempotent and gap-refusing: lines at or below the replica's
position are skipped (re-ships are harmless), a line that would skip a
sequence number raises :class:`ReplicaGap` so the router falls back to
a full export loop.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Dict, Iterable, List, Optional

from ..session.codec import check_name
from ..session.journal import DEFAULT_SEGMENT_BYTES, _decode_line
from ..store.base import (
    SegmentAppender,
    SessionStore,
    encode_checkpoint,
    load_latest_checkpoint,
    prune_checkpoints,
)

__all__ = ["ReplicaError", "ReplicaGap", "ReplicaStore"]


class ReplicaError(RuntimeError):
    """A shipped line or checkpoint that cannot be applied."""


class ReplicaGap(ReplicaError):
    """Shipped lines skip ahead of the replica's position.

    The router must fall back to a full ``repl-export`` catch-up loop
    (and possibly a checkpoint) to close the hole.
    """


class _SessionState:
    __slots__ = ("position", "checkpoint_seq", "segment_key",
                 "segment_size")

    def __init__(self, position: int, checkpoint_seq: int,
                 segment_key: Optional[str], segment_size: int) -> None:
        self.position = position
        self.checkpoint_seq = checkpoint_seq
        self.segment_key = segment_key
        self.segment_size = segment_size


class ReplicaStore:
    """Land shipped session state under ``root`` in live-session layout."""

    def __init__(self, root: str, *,
                 store: Optional[Any] = None,
                 segment_max_bytes: int = DEFAULT_SEGMENT_BYTES,
                 keep_checkpoints: int = 2) -> None:
        self.root = root
        self.segment_max_bytes = segment_max_bytes
        self.keep_checkpoints = keep_checkpoints
        if store is None:
            from ..store.filestore import FileStore
            store = FileStore(root)
        self.store = store
        self._states: Dict[str, _SessionState] = {}
        self._lock = threading.Lock()
        os.makedirs(root, exist_ok=True)

    def session_dir(self, name: str) -> str:
        check_name(name, "session name")
        return os.path.join(self.root, name)

    def session_store(self, name: str) -> SessionStore:
        """The per-session store view — scrub's repair source."""
        check_name(name, "session name")
        return self.store.session(name)

    # -- state --------------------------------------------------------------

    def _state(self, name: str) -> _SessionState:
        state = self._states.get(name)
        if state is None:
            state = self._scan(name)
            self._states[name] = state
        return state

    def _scan(self, name: str) -> _SessionState:
        """Rebuild the replica position for ``name`` from the store.

        A torn final line (this process killed mid-append) is truncated
        off the last segment so later appends extend a clean journal —
        the same repair crash recovery performs.
        """
        store = self.session_store(name)
        checkpoint = load_latest_checkpoint(store)
        checkpoint_seq = checkpoint["seq"] if checkpoint else 0
        position = checkpoint_seq
        segment_key: Optional[str] = None
        segment_size = 0
        segments = store.segments()
        if segments:
            last_seq: Optional[int] = None
            for index, (_first, key) in enumerate(segments):
                data = store.read_segment(key)
                valid_bytes = 0
                pos = 0
                while pos < len(data):
                    newline = data.find(b"\n", pos)
                    line = (data[pos:newline + 1] if newline >= 0
                            else data[pos:])
                    pos = newline + 1 if newline >= 0 else len(data)
                    entry = _decode_line(line)
                    if entry is None \
                            or not isinstance(entry.get("seq"), int):
                        break
                    valid_bytes += len(line)
                    last_seq = entry["seq"]
                if index == len(segments) - 1:
                    if valid_bytes < len(data):
                        store.truncate_segment(key, valid_bytes)
                    segment_key = key
                    segment_size = valid_bytes
            if last_seq is not None:
                position = max(position, last_seq)
        return _SessionState(position, checkpoint_seq, segment_key,
                             segment_size)

    def forget(self, name: str) -> None:
        """Drop the cached state (e.g. after the session was promoted
        to a live primary on this worker and the journal moved on)."""
        with self._lock:
            self._states.pop(name, None)

    def position(self, name: str) -> int:
        """Highest applied sequence number for ``name``."""
        with self._lock:
            return self._state(name).position

    def checkpoint_seq(self, name: str) -> int:
        with self._lock:
            return self._state(name).checkpoint_seq

    def names(self) -> List[str]:
        try:
            return sorted(self.store.session_names())
        except OSError:
            return []

    # -- apply --------------------------------------------------------------

    def apply(self, name: str, lines: Iterable[str],
              checkpoint: Optional[Dict[str, Any]] = None) -> int:
        """Land shipped raw lines (and optionally a checkpoint snapshot).

        Returns the replica position afterwards.  Lines must be the
        framed journal lines exactly as exported (trailing newline
        optional in transport); each is CRC-verified before landing.
        """
        with self._lock:
            state = self._state(name)
            store = self.session_store(name)
            if checkpoint is not None:
                self._apply_checkpoint(name, store, state, checkpoint)
            appender: Optional[SegmentAppender] = None
            try:
                for text in lines:
                    raw = text.encode("utf-8")
                    if not raw.endswith(b"\n"):
                        raw += b"\n"
                    entry = _decode_line(raw)
                    if entry is None \
                            or not isinstance(entry.get("seq"), int):
                        raise ReplicaError(
                            f"shipped line for {name!r} fails its "
                            f"checksum or carries no seq")
                    seq = entry["seq"]
                    if seq <= state.position:
                        continue  # idempotent re-ship
                    if seq != state.position + 1:
                        raise ReplicaGap(
                            f"replica of {name!r} is at "
                            f"{state.position}, shipped line has seq "
                            f"{seq}")
                    if appender is not None and (
                            state.segment_size >= self.segment_max_bytes):
                        appender.flush()
                        appender.close()
                        appender = None
                    if appender is None:
                        appender = self._segment_appender(store, state, seq)
                    appender.write(raw)
                    state.segment_size += len(raw)
                    state.position = seq
            finally:
                if appender is not None:
                    appender.flush()
                    appender.close()
            return state.position

    def _segment_appender(self, store: SessionStore, state: _SessionState,
                          next_seq: int) -> SegmentAppender:
        store.prepare()
        if state.segment_key is not None \
                and state.segment_size < self.segment_max_bytes \
                and any(key == state.segment_key
                        for _first, key in store.segments()):
            return store.open_segment(state.segment_key)
        appender = store.create_segment(next_seq, durable=False)
        state.segment_key = appender.key
        state.segment_size = 0
        return appender

    def _apply_checkpoint(self, name: str, store: SessionStore,
                          state: _SessionState,
                          checkpoint: Dict[str, Any]) -> None:
        seq = checkpoint.get("seq")
        if not isinstance(seq, int):
            raise ReplicaError(
                f"shipped checkpoint for {name!r} carries no seq")
        if seq <= state.checkpoint_seq:
            return  # stale re-ship
        store.prepare()
        store.publish_checkpoint(seq, encode_checkpoint(checkpoint))
        prune_checkpoints(store, self.keep_checkpoints)
        state.checkpoint_seq = seq
        if seq > state.position:
            # The snapshot supersedes everything we hold: recovery
            # starts from it, and any journal line at or below it is
            # covered.  Lines beyond it cannot exist locally (they
            # would have implied a higher position), so drop the lot.
            for _first, key in store.segments():
                try:
                    store.delete_segment(key)
                except OSError:
                    pass
            state.position = seq
            state.segment_key = None
            state.segment_size = 0
        else:
            self._prune_covered(store, state, seq)

    def _prune_covered(self, store: SessionStore, state: _SessionState,
                       up_to_seq: int) -> None:
        """Delete segments whose every entry is covered by a checkpoint
        (mirror of :meth:`JournalWriter.prune` for the replica side)."""
        segments = store.segments()
        for index, (first, key) in enumerate(segments):
            next_first = (segments[index + 1][0]
                          if index + 1 < len(segments)
                          else state.position + 1)
            if next_first <= up_to_seq + 1 and key != state.segment_key:
                try:
                    store.delete_segment(key)
                except OSError:
                    pass

    # -- promotion sanity ---------------------------------------------------

    def verify(self, name: str) -> int:
        """Re-scan ``name`` from the store and return its durable position.

        Used before promoting a replica: the cached state is dropped so
        the answer reflects exactly what recovery will see.
        """
        with self._lock:
            self._states.pop(name, None)
            state = self._state(name)
            return state.position
