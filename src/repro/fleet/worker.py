"""A fleet worker — the session server plus replication frames.

A :class:`WorkerServer` is an ordinary
:class:`~repro.session.server.SessionServer` (same protocol, same
guarantees) extended with the frames a router needs to replicate and
move sessions:

``repl-export``
    Read raw journal lines (and the latest checkpoint snapshot, when
    the follower's is older) for one session — the source side of the
    replication channel.  Works whether the session is live or closed.
``repl-apply``
    Land shipped lines/checkpoints into the local
    :class:`~repro.fleet.replica.ReplicaStore` — refused while the
    session is live here (a replica must never shadow a primary).
``repl-position``
    The local position of a session, live or replica — used by the
    router to seed its replication cursors.
``handover``
    Flush and close a live session, returning its durable position —
    the source side of a live migration.
``worker-info``
    Identity frame (worker id, root, session counts).

Replicas land in the **same root** as live sessions, in the exact live
layout — promotion after a primary death is just ``open`` (ordinary
crash recovery), no special path.

Synchronous replication rides responses: after any command that
journaled entries, the worker piggybacks the freshly appended raw WAL
lines onto the response (``"_wal"``), straight from the writer's
in-memory tail — visible even under ``fsync=never`` buffering.  The
router pushes them to the follower before acknowledging the client.
An ``async``-mode router sends ``repl-config {"piggyback": false}``
on connect to turn the per-response payload off entirely — it ships
from ``repl-export`` on a timer instead, and the response bytes can be
forwarded to the client verbatim.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional, Set

from ..session.journal import (
    JournalDegraded,
    JournalTailGap,
    JournalTailReader,
)
from ..session.server import SessionServer, _RequestError
from ..session.session import _load_latest_checkpoint
from .replica import ReplicaGap, ReplicaStore

__all__ = ["WorkerServer"]

#: Commands that are replication plumbing, not client traffic — never
#: piggyback WAL lines onto their responses.
_REPL_COMMANDS = frozenset({"repl-export", "repl-apply", "repl-position",
                            "repl-config", "handover"})

_EXPORT_LIMIT = 512
_EXPORT_MAX_BYTES = 1 << 18


class WorkerServer(SessionServer):
    """One shard of the fleet: a session server that can replicate."""

    def __init__(self, root: str, *, worker_id: str, **kwargs: Any) -> None:
        super().__init__(root, **kwargs)
        self.worker_id = worker_id
        self.info = {"worker": worker_id, "role": "worker"}
        self.replica = ReplicaStore(root)
        #: Attach fresh WAL lines to mutating responses (sync
        #: replication).  Routers running timer-driven replication
        #: disable this via ``repl-config``.
        self.piggyback = True
        # Sessions that have been live here since the replica store last
        # scanned them: their journals moved without the store noticing,
        # so its cached positions must be dropped before replica reads.
        self._was_open: Set[str] = set()

    # -- WAL piggyback (synchronous replication) ----------------------------

    def _post_command(self, name: str, message: Dict[str, Any],
                      result: Dict[str, Any],
                      before_seq: Optional[int]) -> Dict[str, Any]:
        if message.get("cmd") in _REPL_COMMANDS \
                or not isinstance(result, dict):
            return result
        session = self.manager.sessions.get(name)
        if session is None:
            return result
        self._was_open.add(name)
        if not self.piggyback or not session.durable:
            return result
        position = session.position
        if before_seq is None:
            # The session was opened (recovered) by this very request:
            # the router has no cursor yet — tell it to run a full sync.
            if position > 0:
                result["_wal"] = {"full": True, "position": position}
            return result
        if position <= before_seq:
            return result
        lines = session._journal.recent_lines(before_seq)
        if lines is None:
            result["_wal"] = {"full": True, "position": position}
        else:
            result["_wal"] = {
                "after": before_seq, "position": position,
                "lines": [line[:-1].decode("utf-8") for line in lines]}
        return result

    # -- replication frames -------------------------------------------------

    def _cmd_repl_export(self, message: Dict[str, Any]) -> Dict[str, Any]:
        name = message["session"]
        after_seq = int(message.get("after_seq", 0))
        after_ckpt = int(message.get("after_ckpt", 0))
        limit = int(message.get("limit", _EXPORT_LIMIT))
        max_bytes = int(message.get("max_bytes", _EXPORT_MAX_BYTES))
        session = self.manager.sessions.get(name)
        if session is not None and not session.degraded:
            try:
                session.sync()  # surface fsync="never" buffered entries
            except (JournalDegraded, OSError):
                pass  # the acknowledged prefix on disk still exports
        directory = self.manager.path_of(name)
        if not os.path.isdir(directory):
            raise _RequestError("bad-request",
                                f"no session {name!r} on this worker")
        checkpoint = _load_latest_checkpoint(directory)
        ckpt_seq = checkpoint["seq"] if checkpoint else 0
        include = checkpoint is not None and ckpt_seq > after_ckpt
        base = max(after_seq, ckpt_seq) if include else after_seq
        try:
            pairs = JournalTailReader(directory, after_seq=base).poll(
                limit=limit, max_bytes=max_bytes)
        except JournalTailGap:
            if checkpoint is None or ckpt_seq <= base:
                raise _RequestError(
                    "repl-gap",
                    f"journal of {name!r} was pruned past seq {base} "
                    f"and no newer checkpoint exists") from None
            include = True
            base = ckpt_seq
            pairs = JournalTailReader(directory, after_seq=base).poll(
                limit=limit, max_bytes=max_bytes)
        result: Dict[str, Any] = {
            "from": base,
            "end": pairs[-1][0] if pairs else base,
            "lines": [line[:-1].decode("utf-8") for _seq, line in pairs]}
        if include:
            result["checkpoint"] = checkpoint
            result["checkpoint_seq"] = ckpt_seq
        return result

    def _cmd_repl_apply(self, message: Dict[str, Any]) -> Dict[str, Any]:
        name = message["session"]
        if self.manager.is_open(name):
            raise _RequestError(
                "bad-request",
                f"session {name!r} is live on this worker; a replica "
                f"must not shadow a primary")
        lines = message.get("lines", [])
        if not isinstance(lines, list):
            raise _RequestError("bad-request", "lines must be a list")
        self._refresh_replica(name)
        try:
            position = self.replica.apply(name, lines,
                                          message.get("checkpoint"))
        except ReplicaGap as error:
            raise _RequestError(
                "repl-gap", str(error),
                detail={"position": self.replica.position(name)}) from None
        return {"position": position}

    def _cmd_repl_position(self, message: Dict[str, Any]) -> Dict[str, Any]:
        name = message["session"]
        session = self.manager.sessions.get(name)
        if session is not None:
            return {"open": True, "position": session.position,
                    "checkpoint_seq": 0}
        if not os.path.isdir(self.manager.path_of(name)):
            return {"open": False, "position": 0, "checkpoint_seq": 0}
        self._refresh_replica(name)
        return {"open": False,
                "position": self.replica.position(name),
                "checkpoint_seq": self.replica.checkpoint_seq(name)}

    def _refresh_replica(self, name: str) -> None:
        """Drop the replica store's cached view of ``name`` if the
        session has been live here since the cache was built."""
        if name in self._was_open:
            self.replica.forget(name)
            self._was_open.discard(name)

    def _cmd_handover(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Flush + close a live session for migration; report the
        durable position the target must reach before taking over."""
        name = message["session"]
        session = self.manager.sessions.get(name)
        if session is not None:
            try:
                session.sync()
            except (JournalDegraded, OSError):
                pass  # acknowledged entries are on disk regardless
        closed = self.manager.close(name)
        self._rid_cache.pop(name, None)
        self._was_open.discard(name)  # verify() rescans from disk
        return {"closed": closed,
                "position": self.replica.verify(name)}

    def _cmd_repl_config(self, message: Dict[str, Any]) -> Dict[str, Any]:
        if "piggyback" in message:
            self.piggyback = bool(message["piggyback"])
        return {"piggyback": self.piggyback}

    def _cmd_worker_info(self, message: Dict[str, Any]) -> Dict[str, Any]:
        return {"worker": self.worker_id, "role": "worker",
                "root": self.manager.root,
                "open_sessions": sorted(self.manager.sessions),
                "sessions": self.manager.names()}


WorkerServer.COMMANDS = {
    **SessionServer.COMMANDS,
    "repl-export": WorkerServer._cmd_repl_export,
    "repl-apply": WorkerServer._cmd_repl_apply,
    "repl-position": WorkerServer._cmd_repl_position,
    "handover": WorkerServer._cmd_handover,
    "repl-config": WorkerServer._cmd_repl_config,
    "worker-info": WorkerServer._cmd_worker_info,
}
WorkerServer.GLOBAL_COMMANDS = (SessionServer.GLOBAL_COMMANDS
                                | {"repl-config", "worker-info"})
