"""A fleet worker — the session server plus replication frames.

A :class:`WorkerServer` is an ordinary
:class:`~repro.session.server.SessionServer` (same protocol, same
guarantees) extended with the frames a router needs to replicate and
move sessions:

``repl-export``
    Read raw journal lines (and the latest checkpoint snapshot, when
    the follower's is older) for one session — the source side of the
    replication channel.  Works whether the session is live or closed.
``repl-apply``
    Land shipped lines/checkpoints into the local
    :class:`~repro.fleet.replica.ReplicaStore` — refused while the
    session is live here (a replica must never shadow a primary).
``repl-position``
    The local position of a session, live or replica — used by the
    router to seed its replication cursors.
``handover``
    Flush and close a live session, returning its durable position —
    the source side of a live migration.
``worker-info``
    Identity frame (worker id, root, session counts).
``store-scrub``
    Run the anti-entropy scrub (:mod:`repro.store.scrub`) over one
    session's durable state: verify every checkpoint and segment,
    truncate a torn tail, and report the sequence ranges that need
    re-shipping from a healthy peer.
``store-repair``
    Land a shipped repair range (the resolution of a ``store-scrub``
    ``needs`` entry) — refused while the session is live here.

Replicas land in the **same root** as live sessions, in the exact live
layout — promotion after a primary death is just ``open`` (ordinary
crash recovery), no special path.

Synchronous replication rides responses: after any command that
journaled entries, the worker piggybacks the freshly appended raw WAL
lines onto the response (``"_wal"``), straight from the writer's
in-memory tail — visible even under ``fsync=never`` buffering.  The
router pushes them to the follower before acknowledging the client.
An ``async``-mode router sends ``repl-config {"piggyback": false}``
on connect to turn the per-response payload off entirely — it ships
from ``repl-export`` on a timer instead, and the response bytes can be
forwarded to the client verbatim.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Set

from ..session.journal import JournalDegraded, JournalTailGap, _decode_line
from ..session.server import SessionServer, _RequestError
from ..store.base import load_latest_checkpoint, store_tail_lines
from .replica import ReplicaGap, ReplicaStore

__all__ = ["WorkerServer"]

#: Commands that are replication plumbing, not client traffic — never
#: piggyback WAL lines onto their responses.
_REPL_COMMANDS = frozenset({"repl-export", "repl-apply", "repl-position",
                            "repl-config", "handover",
                            "store-scrub", "store-repair"})

_EXPORT_LIMIT = 512
_EXPORT_MAX_BYTES = 1 << 18


class WorkerServer(SessionServer):
    """One shard of the fleet: a session server that can replicate."""

    def __init__(self, root: str, *, worker_id: str, **kwargs: Any) -> None:
        super().__init__(root, **kwargs)
        self.worker_id = worker_id
        self.info = {"worker": worker_id, "role": "worker"}
        self.replica = ReplicaStore(root, store=self.manager.store)
        #: Attach fresh WAL lines to mutating responses (sync
        #: replication).  Routers running timer-driven replication
        #: disable this via ``repl-config``.
        self.piggyback = True
        # Sessions that have been live here since the replica store last
        # scanned them: their journals moved without the store noticing,
        # so its cached positions must be dropped before replica reads.
        self._was_open: Set[str] = set()

    # -- WAL piggyback (synchronous replication) ----------------------------

    def _post_command(self, name: str, message: Dict[str, Any],
                      result: Dict[str, Any],
                      before_seq: Optional[int]) -> Dict[str, Any]:
        if message.get("cmd") in _REPL_COMMANDS \
                or not isinstance(result, dict):
            return result
        session = self.manager.sessions.get(name)
        if session is None:
            return result
        self._was_open.add(name)
        if not self.piggyback or not session.durable:
            return result
        position = session.position
        if before_seq is None:
            # The session was opened (recovered) by this very request:
            # the router has no cursor yet — tell it to run a full sync.
            if position > 0:
                result["_wal"] = {"full": True, "position": position}
            return result
        if position <= before_seq:
            return result
        lines = session._journal.recent_lines(before_seq)
        if lines is None:
            result["_wal"] = {"full": True, "position": position}
        else:
            result["_wal"] = {
                "after": before_seq, "position": position,
                "lines": [line[:-1].decode("utf-8") for line in lines]}
        return result

    # -- replication frames -------------------------------------------------

    def _cmd_repl_export(self, message: Dict[str, Any]) -> Dict[str, Any]:
        name = message["session"]
        after_seq = int(message.get("after_seq", 0))
        after_ckpt = int(message.get("after_ckpt", 0))
        limit = int(message.get("limit", _EXPORT_LIMIT))
        max_bytes = int(message.get("max_bytes", _EXPORT_MAX_BYTES))
        session = self.manager.sessions.get(name)
        if session is not None and not session.degraded:
            try:
                session.sync()  # surface fsync="never" buffered entries
            except (JournalDegraded, OSError):
                pass  # the acknowledged prefix on disk still exports
        self.manager.path_of(name)  # validates the name
        store = self.manager.store.session(name)
        if not store.exists():
            raise _RequestError("bad-request",
                                f"no session {name!r} on this worker")
        checkpoint = load_latest_checkpoint(store)
        ckpt_seq = checkpoint["seq"] if checkpoint else 0
        include = checkpoint is not None and ckpt_seq > after_ckpt
        base = max(after_seq, ckpt_seq) if include else after_seq
        try:
            pairs = store_tail_lines(store, after_seq=base,
                                     limit=limit, max_bytes=max_bytes)
        except JournalTailGap:
            if checkpoint is None or ckpt_seq <= base:
                raise _RequestError(
                    "repl-gap",
                    f"journal of {name!r} was pruned past seq {base} "
                    f"and no newer checkpoint exists") from None
            include = True
            base = ckpt_seq
            pairs = store_tail_lines(store, after_seq=base,
                                     limit=limit, max_bytes=max_bytes)
        result: Dict[str, Any] = {
            "from": base,
            "end": pairs[-1][0] if pairs else base,
            "lines": [line[:-1].decode("utf-8") for _seq, line in pairs]}
        if include:
            result["checkpoint"] = checkpoint
            result["checkpoint_seq"] = ckpt_seq
        return result

    def _cmd_repl_apply(self, message: Dict[str, Any]) -> Dict[str, Any]:
        name = message["session"]
        if self.manager.is_open(name):
            raise _RequestError(
                "bad-request",
                f"session {name!r} is live on this worker; a replica "
                f"must not shadow a primary")
        lines = message.get("lines", [])
        if not isinstance(lines, list):
            raise _RequestError("bad-request", "lines must be a list")
        self._refresh_replica(name)
        try:
            position = self.replica.apply(name, lines,
                                          message.get("checkpoint"))
        except ReplicaGap as error:
            raise _RequestError(
                "repl-gap", str(error),
                detail={"position": self.replica.position(name)}) from None
        return {"position": position}

    def _cmd_repl_position(self, message: Dict[str, Any]) -> Dict[str, Any]:
        name = message["session"]
        session = self.manager.sessions.get(name)
        if session is not None:
            return {"open": True, "position": session.position,
                    "checkpoint_seq": 0}
        self.manager.path_of(name)  # validates the name
        if not self.manager.store.session(name).exists():
            return {"open": False, "position": 0, "checkpoint_seq": 0}
        self._refresh_replica(name)
        return {"open": False,
                "position": self.replica.position(name),
                "checkpoint_seq": self.replica.checkpoint_seq(name)}

    def _refresh_replica(self, name: str) -> None:
        """Drop the replica store's cached view of ``name`` if the
        session has been live here since the cache was built."""
        if name in self._was_open:
            self.replica.forget(name)
            self._was_open.discard(name)

    def _cmd_handover(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Flush + close a live session for migration; report the
        durable position the target must reach before taking over."""
        name = message["session"]
        session = self.manager.sessions.get(name)
        if session is not None:
            try:
                session.sync()
            except (JournalDegraded, OSError):
                pass  # acknowledged entries are on disk regardless
        closed = self.manager.close(name)
        self._rid_cache.pop(name, None)
        self._was_open.discard(name)  # verify() rescans from disk
        return {"closed": closed,
                "position": self.replica.verify(name)}

    # -- anti-entropy scrub/repair ------------------------------------------

    def _cmd_store_scrub(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Verify one session's durable state; repair what local
        truncation can fix, report the ranges that need re-shipping."""
        from ..store.scrub import scrub_session

        name = message["session"]
        self.manager.path_of(name)  # validates the name
        store = self.manager.store.session(name)
        if not store.exists():
            raise _RequestError("bad-request",
                                f"no session {name!r} on this worker")
        live = self.manager.sessions.get(name)
        if live is not None and not live.degraded:
            try:
                live.sync()  # the tail must be complete before scanning
            except (JournalDegraded, OSError):
                pass
        repair = bool(message.get("repair", True))
        # A live writer owns the tail segment: never truncate under it.
        report = scrub_session(store, repair=repair,
                               allow_tail=repair and live is None)
        report["session"] = name
        report["open"] = live is not None
        return report

    def _cmd_store_repair(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Land a shipped repair range (resolves a scrub ``needs``)."""
        from ..store.scrub import apply_repair, scrub_session

        name = message["session"]
        if self.manager.is_open(name):
            raise _RequestError(
                "bad-request",
                f"session {name!r} is live on this worker; close or "
                f"hand it over before repairing its store")
        self.manager.path_of(name)  # validates the name
        store = self.manager.store.session(name)
        lines = message.get("lines", [])
        if not isinstance(lines, list):
            raise _RequestError("bad-request", "lines must be a list")
        after = int(message["after"])
        until = message.get("until")
        until = int(until) if until is not None else None
        shipped = []
        for text in lines:
            raw = text.encode("utf-8")
            if not raw.endswith(b"\n"):
                raw += b"\n"
            entry = _decode_line(raw)
            if entry is None or not isinstance(entry.get("seq"), int):
                raise _RequestError(
                    "bad-request",
                    f"shipped repair line for {name!r} fails its "
                    f"checksum or carries no seq")
            seq = entry["seq"]
            if seq <= after or (until is not None and seq > until):
                continue  # outside the damaged range
            shipped.append((seq, raw))
        try:
            apply_repair(store, after, until, shipped)
        except OSError as error:
            raise _RequestError("io-error", str(error)) from None
        self.replica.forget(name)
        report = scrub_session(store, repair=True)
        report["session"] = name
        return report

    def _cmd_repl_config(self, message: Dict[str, Any]) -> Dict[str, Any]:
        if "piggyback" in message:
            self.piggyback = bool(message["piggyback"])
        return {"piggyback": self.piggyback}

    def _cmd_worker_info(self, message: Dict[str, Any]) -> Dict[str, Any]:
        return {"worker": self.worker_id, "role": "worker",
                "root": self.manager.root,
                "open_sessions": sorted(self.manager.sessions),
                "sessions": self.manager.names()}


WorkerServer.COMMANDS = {
    **SessionServer.COMMANDS,
    "repl-export": WorkerServer._cmd_repl_export,
    "repl-apply": WorkerServer._cmd_repl_apply,
    "repl-position": WorkerServer._cmd_repl_position,
    "handover": WorkerServer._cmd_handover,
    "store-scrub": WorkerServer._cmd_store_scrub,
    "store-repair": WorkerServer._cmd_store_repair,
    "repl-config": WorkerServer._cmd_repl_config,
    "worker-info": WorkerServer._cmd_worker_info,
}
WorkerServer.GLOBAL_COMMANDS = (SessionServer.GLOBAL_COMMANDS
                                | {"repl-config", "worker-info"})
