"""Consistent hashing of session names onto workers.

The router places every session on the ring once and never rebalances
behind a client's back: adding a worker moves only the sessions whose
arc it claims, and removing a dead worker makes each of its sessions
land exactly where its replica already lives (the *follower* of a
session is defined as the next distinct worker on the ring walk, so the
failover routing decision and the replication target are the same
computation).

Hashes come from :func:`hashlib.blake2b`, not :func:`hash` — placement
must agree across processes and runs (``PYTHONHASHSEED`` randomizes the
builtin).  ``vnodes`` virtual points per worker smooth the arcs.

Pins (:meth:`HashRing.pin`) override placement per session — live
migration parks a session on its target worker regardless of hashing.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Optional, Set, Tuple

__all__ = ["HashRing"]

#: Virtual points per worker; 64 keeps arc sizes within a few percent
#: of fair for small fleets without making lookups measurably slower.
DEFAULT_VNODES = 64


def _hash(key: str) -> int:
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Deterministic worker placement with virtual nodes and pins."""

    def __init__(self, workers: Iterable[str] = (), *,
                 vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._points: List[Tuple[int, str]] = []
        self._workers: Set[str] = set()
        self._pins: Dict[str, str] = {}
        for worker in workers:
            self.add(worker)

    # -- membership ---------------------------------------------------------

    def add(self, worker: str) -> None:
        """Add a worker (idempotent)."""
        if worker in self._workers:
            return
        self._workers.add(worker)
        for index in range(self.vnodes):
            bisect.insort(self._points, (_hash(f"{worker}#{index}"), worker))

    def remove(self, worker: str) -> None:
        """Drop a worker and any pins that pointed at it (idempotent)."""
        if worker not in self._workers:
            return
        self._workers.discard(worker)
        self._points = [point for point in self._points
                        if point[1] != worker]
        for name, pinned in list(self._pins.items()):
            if pinned == worker:
                del self._pins[name]

    @property
    def workers(self) -> List[str]:
        return sorted(self._workers)

    def __len__(self) -> int:
        return len(self._workers)

    def __contains__(self, worker: str) -> bool:
        return worker in self._workers

    # -- pins ---------------------------------------------------------------

    def pin(self, name: str, worker: str) -> None:
        """Force ``name`` onto ``worker`` regardless of hashing."""
        if worker not in self._workers:
            raise KeyError(f"unknown worker {worker!r}")
        self._pins[name] = worker

    def unpin(self, name: str) -> None:
        self._pins.pop(name, None)

    def pinned(self, name: str) -> Optional[str]:
        return self._pins.get(name)

    @property
    def pins(self) -> Dict[str, str]:
        return dict(self._pins)

    # -- lookup -------------------------------------------------------------

    def lookup(self, name: str,
               skip: Iterable[str] = ()) -> Optional[str]:
        """The worker owning ``name``; ``None`` with no eligible worker.

        ``skip`` excludes workers (used to find the *next* distinct
        worker on the ring — the follower).  A pin wins unless the
        pinned worker is skipped.
        """
        excluded = set(skip)
        pinned = self._pins.get(name)
        if pinned is not None and pinned in self._workers \
                and pinned not in excluded:
            return pinned
        points = self._points
        if not points:
            return None
        index = bisect.bisect_left(points, (_hash(name), ""))
        for step in range(len(points)):
            worker = points[(index + step) % len(points)][1]
            if worker not in excluded:
                return worker
        return None

    def lookup_pair(self, name: str) -> Tuple[Optional[str], Optional[str]]:
        """``(primary, follower)`` for a session — the follower is the
        next distinct worker on the ring walk, so removing the primary
        re-routes the session exactly onto its replica."""
        primary = self.lookup(name)
        if primary is None:
            return None, None
        follower = self.lookup(name, skip=(primary,))
        return primary, follower
