"""File-level fault injection for the journal/checkpoint write paths.

:class:`FaultOpener` is a drop-in replacement for the journal's
:class:`~repro.session.journal.FileOpener`: every file the journal or
checkpoint writer opens comes back wrapped in a :class:`FaultyFile`, and
every ``write``/``flush``/``fsync``/``replace``/``remove`` consults the
:class:`~repro.faults.plan.FaultPlan` first.

Crash semantics
---------------
A ``crash`` action marks the opener dead and raises
:class:`~repro.faults.plan.CrashPoint` (a ``BaseException`` — it tears
through the ``except OSError`` degradation paths the way ``kill -9``
would).  Once dead, **every** later call on the opener or its files
raises ``CrashPoint`` too: the simulated process never touches the disk
again.  Tests then model "restart" by building a fresh session with a
fresh (or no) opener over the same directory.

Torn writes flush the surviving prefix to the OS before crashing, so the
bytes a real crash would have left in the file are visible to the
recovery code running later in the same test process.
"""

from __future__ import annotations

import os
from typing import Any, Optional

from ..session.journal import FileOpener
from .plan import Action, CrashPoint, FaultPlan

__all__ = ["FaultOpener", "FaultyFile"]


class FaultyFile:
    """A file handle that consults the fault plan before touching disk."""

    __slots__ = ("real", "path", "opener")

    def __init__(self, real: Any, path: str, opener: "FaultOpener") -> None:
        self.real = real
        self.path = path
        self.opener = opener

    # -- the faultable operations ------------------------------------------

    def write(self, data: Any) -> int:
        opener = self.opener
        opener.check_alive()
        action = opener.plan.decide("write", self.path, len(data))
        if action is None:
            return self.real.write(data)
        if action.kind == "torn":
            self.real.write(data[:action.keep])
            self.real.flush()
            if action.then == "crash":
                opener.crash(f"torn write to {self.path}")
            raise OSError(action.errno,
                          f"{os.strerror(action.errno)} (torn write after "
                          f"{action.keep} of {len(data)} bytes)", self.path)
        if action.kind == "crash":
            self.real.flush()
            opener.crash(f"write to {self.path}")
        raise OSError(action.errno, os.strerror(action.errno), self.path)

    def flush(self) -> None:
        opener = self.opener
        opener.check_alive()
        action = opener.plan.decide("flush", self.path)
        if action is not None:
            if action.kind == "crash":
                opener.crash(f"flush of {self.path}")
            raise OSError(action.errno, os.strerror(action.errno), self.path)
        self.real.flush()

    def truncate(self, size: Optional[int] = None) -> int:
        opener = self.opener
        opener.check_alive()
        action = opener.plan.decide("truncate", self.path)
        if action is not None:
            if action.kind == "crash":
                opener.crash(f"truncate of {self.path}")
            raise OSError(action.errno, os.strerror(action.errno), self.path)
        return self.real.truncate(size)

    # -- transparent passthrough -------------------------------------------

    def fileno(self) -> int:
        return self.real.fileno()

    def close(self) -> None:
        # Closing never faults: the degradation paths close handles while
        # cleaning up after an injected error, and a second failure there
        # would mask the first (exactly the bug the harness hunts).
        self.real.close()

    def __enter__(self) -> "FaultyFile":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __getattr__(self, name: str) -> Any:
        return getattr(self.real, name)


class FaultOpener(FileOpener):
    """A :class:`~repro.session.journal.FileOpener` driven by a plan."""

    def __init__(self, plan: Optional[FaultPlan] = None) -> None:
        self.plan = plan if plan is not None else FaultPlan()
        self.crashed = False

    # -- crash bookkeeping --------------------------------------------------

    def check_alive(self) -> None:
        if self.crashed:
            raise CrashPoint("simulated process is dead")

    def crash(self, where: str) -> None:
        self.crashed = True
        raise CrashPoint(f"simulated kill -9 during {where}")

    # -- FileOpener surface -------------------------------------------------

    def __call__(self, path: str, mode: str = "r", **kwargs: Any) -> Any:
        self.check_alive()
        action = self.plan.decide("open", path)
        if action is not None:
            if action.kind == "crash":
                self.crash(f"open of {path}")
            raise OSError(action.errno, os.strerror(action.errno), path)
        return FaultyFile(open(path, mode, **kwargs), path, self)

    def fsync(self, handle: Any) -> None:
        self.check_alive()
        path = getattr(handle, "path", getattr(handle, "name", ""))
        action = self.plan.decide("fsync", str(path))
        if action is not None:
            if action.kind == "crash":
                self.crash(f"fsync of {path}")
            raise OSError(action.errno, os.strerror(action.errno),
                          str(path))
        os.fsync(handle.fileno())

    def fsync_dir(self, directory: str) -> None:
        self.check_alive()
        action = self.plan.decide("fsync-dir", directory)
        if action is not None:
            if action.kind == "crash":
                self.crash(f"directory fsync of {directory}")
            raise OSError(action.errno, os.strerror(action.errno),
                          directory)
        super().fsync_dir(directory)

    def replace(self, src: str, dst: str) -> None:
        self.check_alive()
        action = self.plan.decide("replace", dst)
        if action is not None:
            if action.kind == "crash":
                self.crash(f"replace of {dst} (before rename)")
            raise OSError(action.errno, os.strerror(action.errno), dst)
        os.replace(src, dst)
        action = self.plan.decide("replace-done", dst)
        if action is not None and action.kind == "crash":
            # The rename itself landed — the crash window *after*
            # os.replace but before the directory fsync.
            self.crash(f"replace of {dst} (after rename)")

    def remove(self, path: str) -> None:
        self.check_alive()
        action = self.plan.decide("remove", path)
        if action is not None:
            if action.kind == "crash":
                self.crash(f"remove of {path}")
            raise OSError(action.errno, os.strerror(action.errno), path)
        os.remove(path)

    def getsize(self, path: str) -> int:
        self.check_alive()
        return os.path.getsize(path)
