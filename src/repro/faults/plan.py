"""Deterministic, seedable fault plans.

A :class:`FaultPlan` is a list of :class:`FaultRule` objects consulted at
named fault points (``"write"``, ``"fsync"``, ``"replace"``, ``"c2s"``,
...).  Each rule matches an operation name plus a target path glob and
fires either at a precise point — the *nth* matching call, or once a
cumulative byte count crosses *after_bytes* — or stochastically with
*probability* drawn from the plan's own seeded ``random.Random``.  The
same seed and the same call sequence therefore produce exactly the same
injected faults, which is what makes crash-matrix tests reproducible and
CI chaos runs debuggable.

The plan only *decides*; the injection sites (:mod:`repro.faults.files`
for the journal/checkpoint opener, :mod:`repro.faults.netproxy` for the
server stream proxy) interpret the returned :class:`Action`:

``error``
    raise ``OSError(errno, ...)`` at the fault point (``ENOSPC``,
    ``EIO``, ...).
``torn``
    write only the first ``keep`` bytes of the payload, then follow with
    ``then`` (``"crash"`` or ``"error"``) — a torn write.
``crash``
    simulate instant process death via :class:`CrashPoint`; the opener
    stays dead (every later I/O call raises) until a fresh opener is
    built, exactly as a killed process never touches the file again.
``drop`` / ``delay`` / ``truncate`` / ``reset``
    stream-proxy actions: swallow a frame, stall it, forward a prefix,
    or hard-close the connection.

``decide`` is thread-safe (the proxy pumps frames from several threads);
every fired fault is appended to :attr:`FaultPlan.history` for
assertions and post-mortem logs.
"""

from __future__ import annotations

import errno as _errno
import random
import threading
from fnmatch import fnmatch
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["Action", "CrashPoint", "FaultPlan", "FaultRule"]


class CrashPoint(BaseException):
    """Simulated instant process death at a fault point.

    Deliberately a ``BaseException``: the hardened code paths catch
    ``OSError`` to degrade gracefully, and a simulated ``kill -9`` must
    tear straight through them the way a real one gives no chance to
    run ``except`` blocks.
    """


class Action:
    """What a fired rule tells the injection site to do."""

    __slots__ = ("kind", "errno", "keep", "seconds", "then")

    def __init__(self, kind: str, *, errno: int = _errno.EIO,
                 keep: int = 0, seconds: float = 0.0,
                 then: str = "error") -> None:
        self.kind = kind
        self.errno = errno
        self.keep = keep
        self.seconds = seconds
        self.then = then

    def __repr__(self) -> str:
        return (f"Action({self.kind!r}, errno={self.errno}, "
                f"keep={self.keep}, seconds={self.seconds}, "
                f"then={self.then!r})")


class FaultRule:
    """One trigger: *when* (op/pattern/counters) plus *what* (action)."""

    __slots__ = ("op", "pattern", "nth", "after_bytes", "probability",
                 "times", "action", "calls", "seen_bytes", "fired")

    def __init__(self, op: str, action: Action, *, pattern: str = "*",
                 nth: Optional[int] = None,
                 after_bytes: Optional[int] = None,
                 probability: Optional[float] = None,
                 times: Optional[int] = None) -> None:
        self.op = op
        self.pattern = pattern
        self.nth = nth
        self.after_bytes = after_bytes
        self.probability = probability
        self.times = times
        self.action = action
        self.calls = 0
        self.seen_bytes = 0
        self.fired = 0

    def matches(self, op: str, target: str) -> bool:
        return op == self.op and fnmatch(target, self.pattern)

    def __repr__(self) -> str:
        return (f"FaultRule({self.op!r}, pattern={self.pattern!r}, "
                f"nth={self.nth}, after_bytes={self.after_bytes}, "
                f"probability={self.probability}, fired={self.fired})")


class FaultPlan:
    """A seeded, ordered set of fault rules.

    The first matching rule that decides to fire wins; rules that have
    exhausted their ``times`` quota are skipped.  All mutation happens
    under one lock so concurrent injection sites (proxy pump threads,
    the server's session threads) see consistent counters.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.rng = random.Random(seed)
        self.rules: List[FaultRule] = []
        self.history: List[Tuple[str, str, str]] = []
        self._lock = threading.Lock()

    # -- rule registration --------------------------------------------------

    def add_rule(self, rule: FaultRule) -> FaultRule:
        self.rules.append(rule)
        return rule

    def on(self, op: str, action: Action, **when: Any) -> FaultRule:
        return self.add_rule(FaultRule(op, action, **when))

    def fail(self, op: str, *, pattern: str = "*", errno: int = _errno.EIO,
             nth: Optional[int] = None, times: Optional[int] = 1,
             probability: Optional[float] = None) -> FaultRule:
        """Raise ``OSError(errno)`` at a fault point (default: once)."""
        return self.on(op, Action("error", errno=errno), pattern=pattern,
                       nth=nth, times=times, probability=probability)

    def fail_fsync(self, pattern: str = "*", *,
                   persistent: bool = False) -> FaultRule:
        """``fsync`` fails with ``EIO`` — once, or on every call."""
        return self.fail("fsync", pattern=pattern,
                         times=None if persistent else 1)

    def enospc(self, op: str = "write", pattern: str = "*", *,
               nth: Optional[int] = None,
               persistent: bool = True) -> FaultRule:
        """The disk is full: ``ENOSPC`` on ``op`` (persistent default)."""
        return self.fail(op, pattern=pattern, errno=_errno.ENOSPC, nth=nth,
                         times=None if persistent else 1)

    def torn_write(self, pattern: str = "*", *, at_byte: int,
                   then: str = "crash") -> FaultRule:
        """Cut the write stream at a cumulative byte offset.

        The write that crosses ``at_byte`` persists only its prefix up
        to that offset, then the opener crashes (``then="crash"``) or
        the write raises ``EIO`` (``then="error"``).
        """
        return self.on("write", Action("torn", then=then), pattern=pattern,
                       after_bytes=at_byte)

    def crash_on(self, op: str, pattern: str = "*", *,
                 nth: int = 1) -> FaultRule:
        """Simulated ``kill -9`` at the nth matching fault point."""
        return self.on(op, Action("crash"), pattern=pattern, nth=nth)

    def drop(self, direction: str, *, nth: Optional[int] = None,
             probability: Optional[float] = None,
             times: Optional[int] = None) -> FaultRule:
        """Swallow a frame crossing the proxy (``"c2s"``/``"s2c"``)."""
        return self.on(direction, Action("drop"), nth=nth,
                       probability=probability, times=times)

    def delay(self, direction: str, seconds: float, *,
              nth: Optional[int] = None,
              probability: Optional[float] = None,
              times: Optional[int] = None) -> FaultRule:
        """Stall a frame for ``seconds`` before forwarding it."""
        return self.on(direction, Action("delay", seconds=seconds),
                       nth=nth, probability=probability, times=times)

    def truncate_frame(self, direction: str, *, keep: int,
                       nth: Optional[int] = None,
                       times: Optional[int] = 1) -> FaultRule:
        """Forward only ``keep`` bytes of a frame, then reset the link."""
        return self.on(direction, Action("truncate", keep=keep), nth=nth,
                       times=times)

    def reset(self, direction: str, *, nth: Optional[int] = None,
              probability: Optional[float] = None,
              times: Optional[int] = None) -> FaultRule:
        """Hard-close both sides of the proxied connection."""
        return self.on(direction, Action("reset"), nth=nth,
                       probability=probability, times=times)

    # -- the decision point -------------------------------------------------

    def decide(self, op: str, target: str = "",
               nbytes: int = 0) -> Optional[Action]:
        """Should a fault fire at this point?  ``None`` means proceed.

        Counters advance on every *matching* call whether or not the
        rule fires, so "the 3rd fsync" and "after 120 bytes written"
        mean what they say regardless of other rules.
        """
        with self._lock:
            winner: Optional[Action] = None
            for rule in self.rules:
                if not rule.matches(op, target):
                    continue
                # Counters advance for *every* matching rule, even after
                # an earlier rule has claimed this call — "the 3rd fsync"
                # means the 3rd fsync, not the 3rd one nobody else took.
                rule.calls += 1
                prior_bytes = rule.seen_bytes
                rule.seen_bytes += nbytes
                if winner is not None:
                    continue
                if rule.times is not None and rule.fired >= rule.times:
                    continue
                action = rule.action
                if rule.after_bytes is not None:
                    if not (prior_bytes <= rule.after_bytes
                            < rule.seen_bytes):
                        continue
                    if action.kind == "torn":
                        action = Action("torn", errno=action.errno,
                                        keep=rule.after_bytes - prior_bytes,
                                        then=action.then)
                elif rule.nth is not None:
                    if rule.calls != rule.nth:
                        continue
                elif rule.probability is not None:
                    if self.rng.random() >= rule.probability:
                        continue
                rule.fired += 1
                self.history.append((op, target, action.kind))
                winner = action
            return winner

    # -- inspection ---------------------------------------------------------

    def fired(self, op: Optional[str] = None) -> int:
        """How many faults fired (optionally filtered by op)."""
        with self._lock:
            return sum(1 for entry in self.history
                       if op is None or entry[0] == op)

    def summary(self) -> Dict[str, int]:
        """``{"op:kind": count}`` of everything that fired."""
        with self._lock:
            counts: Dict[str, int] = {}
            for op, _target, kind in self.history:
                key = f"{op}:{kind}"
                counts[key] = counts.get(key, 0) + 1
            return counts

    def __repr__(self) -> str:
        return (f"FaultPlan(seed={self.seed}, rules={len(self.rules)}, "
                f"fired={len(self.history)})")
