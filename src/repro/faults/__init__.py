"""Deterministic fault injection for robustness testing.

The chaos harness of the repo: seeded :class:`FaultPlan` rules decide
*when* a fault fires (nth call, cumulative byte offset, probability),
injection adapters decide *where* —

:mod:`~repro.faults.plan`
    :class:`FaultPlan` / :class:`FaultRule` / :class:`Action` and the
    :class:`CrashPoint` simulated-``kill -9`` signal.
:mod:`~repro.faults.files`
    :class:`FaultOpener` — a journal/checkpoint
    :class:`~repro.session.journal.FileOpener` that injects torn
    writes, ``fsync`` failures, ``ENOSPC`` and crash windows.
:mod:`~repro.faults.netproxy`
    :class:`StreamFaultProxy` — a frame-aware TCP proxy dropping,
    delaying, truncating or resetting JSON-line frames between
    :class:`~repro.session.client.SessionClient` and the server.

Everything here is test/tooling machinery: the production code paths
only know the injectable-opener seam and pay nothing when no fault
layer is installed (gated in ``benchmarks/test_bench_overhead.py``).
"""

from .files import FaultOpener, FaultyFile
from .netproxy import StreamFaultProxy
from .plan import Action, CrashPoint, FaultPlan, FaultRule

__all__ = [
    "Action",
    "CrashPoint",
    "FaultOpener",
    "FaultPlan",
    "FaultRule",
    "FaultyFile",
    "StreamFaultProxy",
]
