"""A frame-aware TCP fault proxy for session-server tests.

:class:`StreamFaultProxy` listens on a local port, forwards every
connection to an upstream session server, and consults a
:class:`~repro.faults.plan.FaultPlan` for each newline-delimited JSON
frame crossing in either direction:

* op ``"c2s"`` — a request frame travelling client → server;
* op ``"s2c"`` — a response frame travelling server → client.

Fired actions: ``drop`` swallows the frame (the peer waits — the
client's timeout/retry machinery must recover), ``delay`` stalls it,
``truncate`` forwards a prefix and then hard-closes both sides (a torn
frame is useless to the peer, and a real middlebox dying mid-frame
closes the link too), ``reset`` closes both sides immediately.

The proxy is plain threads + blocking sockets: two pump threads per
connection, frame-buffered so faults always hit whole frames even when
TCP fragments them.  ``FaultPlan.decide`` is thread-safe, so one seeded
plan can drive many concurrent connections deterministically *per
connection order* (global interleaving across connections is up to the
scheduler — tests that need exact determinism use one connection or
``nth`` rules scoped by direction).
"""

from __future__ import annotations

import socket
import threading
import time
from typing import List, Optional, Tuple

from .plan import FaultPlan

__all__ = ["StreamFaultProxy"]


class StreamFaultProxy:
    """Forward ``host:port`` to an upstream server through a fault plan."""

    def __init__(self, upstream_host: str, upstream_port: int,
                 plan: Optional[FaultPlan] = None, *,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.upstream = (upstream_host, upstream_port)
        self.plan = plan if plan is not None else FaultPlan()
        self.host = host
        self.port = port
        self._listener: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []
        self._conns: List[socket.socket] = []
        self._lock = threading.Lock()
        self._stopping = False

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> Tuple[str, int]:
        """Bind and start accepting; returns the proxy ``(host, port)``."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(16)
        self.port = listener.getsockname()[1]
        self._listener = listener
        thread = threading.Thread(target=self._accept_loop,
                                  name="fault-proxy-accept", daemon=True)
        thread.start()
        self._threads.append(thread)
        return self.host, self.port

    def stop(self) -> None:
        self._stopping = True
        listener = self._listener
        self._listener = None
        if listener is not None:
            _close_quietly(listener)
        with self._lock:
            conns, self._conns = self._conns, []
        for conn in conns:
            _close_quietly(conn)
        for thread in self._threads:
            thread.join(timeout=2.0)
        self._threads = []

    def __enter__(self) -> "StreamFaultProxy":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- plumbing -----------------------------------------------------------

    def _accept_loop(self) -> None:
        listener = self._listener
        while listener is not None and not self._stopping:
            try:
                client, _addr = listener.accept()
            except OSError:
                return  # listener closed
            try:
                server = socket.create_connection(self.upstream, timeout=10)
            except OSError:
                _close_quietly(client)
                continue
            with self._lock:
                self._conns.extend((client, server))
            for direction, source, sink in (("c2s", client, server),
                                            ("s2c", server, client)):
                thread = threading.Thread(
                    target=self._pump, args=(direction, source, sink),
                    name=f"fault-proxy-{direction}", daemon=True)
                thread.start()
                self._threads.append(thread)
            listener = self._listener

    def _pump(self, direction: str, source: socket.socket,
              sink: socket.socket) -> None:
        buffer = bytearray()
        try:
            while True:
                try:
                    chunk = source.recv(65536)
                except OSError:
                    break
                if not chunk:
                    break
                buffer.extend(chunk)
                while True:
                    newline = buffer.find(b"\n")
                    if newline < 0:
                        break
                    frame = bytes(buffer[:newline + 1])
                    del buffer[:newline + 1]
                    if not self._forward(direction, frame, source, sink):
                        return
        finally:
            # Half-close is enough to propagate EOF; full close happens
            # via stop() or the peer pump ending.
            _close_quietly(source)
            _close_quietly(sink)

    def _forward(self, direction: str, frame: bytes,
                 source: socket.socket, sink: socket.socket) -> bool:
        action = self.plan.decide(direction, "frame", len(frame))
        try:
            if action is None:
                sink.sendall(frame)
                return True
            if action.kind == "drop":
                return True
            if action.kind == "delay":
                time.sleep(action.seconds)
                sink.sendall(frame)
                return True
            if action.kind == "truncate":
                sink.sendall(frame[:action.keep])
            # truncate falls through to reset: a partial frame with no
            # newline would just deadlock the peer's readline otherwise.
            _close_quietly(source)
            _close_quietly(sink)
            return False
        except OSError:
            return False


def _close_quietly(sock: socket.socket) -> None:
    # shutdown() first: close() alone does not wake a thread blocked in
    # recv() on the same socket, which would stall stop() on its joins.
    try:
        sock.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
    try:
        sock.close()
    except OSError:
        pass
