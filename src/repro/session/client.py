"""Blocking JSON-line client for the session server.

Small by design — tests, the CI smoke script and interactive use need a
dependable synchronous client, not an async framework:

.. code-block:: python

    with SessionClient("127.0.0.1", 7700) as client:
        alice = client.session("alice")
        alice.make_var("x", 1)
        alice.assign("v:x", 5)
        alice.undo()
        alice.checkpoint()

Every call sends one request frame and blocks for its response frame;
an ``ok: false`` response raises :class:`ServerError` carrying the
server's error type (``violation``, ``busy``, ``timeout``, ...).

Fault tolerance (``retries > 0``): transient failures — a dropped
connection, a ``busy``/``timeout``/``overloaded`` load-shedding frame —
are retried with exponential backoff plus seeded jitter.  Every mutating
request carries a client-unique ``rid``; the server remembers the
response per ``rid``, so a retry of a mutation whose response was lost
replays the original outcome instead of applying twice (exactly-once).
Violations and other deterministic rejections are never retried.
"""

from __future__ import annotations

import itertools
import json
import socket
import uuid
from typing import Any, Dict, List, Optional

from .retry import RetryPolicy

__all__ = ["RETRYABLE_ERRORS", "ServerError", "SessionClient",
           "SessionHandle"]

#: Server error kinds that signal transient load, not a failed design
#: operation — safe to retry.
RETRYABLE_ERRORS = frozenset({"busy", "timeout", "overloaded"})

#: Commands that mutate session state; these carry an ``rid`` so the
#: server can deduplicate retries.
_MUTATING = frozenset({
    "assign", "assign-many", "what-if-commit", "make-var", "retract",
    "add-constraint", "remove-constraint",
    "undo", "redo", "checkpoint", "close", "define-cell", "define-signal",
    "declare-delay", "add-parameter", "instantiate", "add-net", "connect",
})


class ServerError(RuntimeError):
    """An error frame from the server."""

    def __init__(self, error: Dict[str, Any]) -> None:
        super().__init__(f"{error.get('type', 'error')}: "
                         f"{error.get('message', '')}")
        self.kind = error.get("type", "error")
        self.detail = error.get("detail")


class SessionClient:
    """One TCP connection speaking the JSON-line protocol.

    Parameters
    ----------
    retries:
        Transient-failure retry budget per call (0 = fail fast).
    backoff, backoff_max:
        Base and cap of the exponential backoff between retries.
    retry_seed:
        Seeds the jitter RNG; fixed seeds make retry timing reproducible.
    client_id:
        Prefix of the per-call ``rid``; must be unique per client for
        server-side retry deduplication to be sound.  Auto-generated when
        omitted.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 timeout: float = 30.0, retries: int = 0,
                 backoff: float = 0.05, backoff_max: float = 2.0,
                 retry_seed: Optional[int] = None,
                 client_id: Optional[str] = None) -> None:
        # Attributes first: close() must be safe after a failed connect.
        self._sock: Optional[socket.socket] = None
        self._file: Optional[Any] = None
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = RetryPolicy(retries=retries, backoff=backoff,
                                 backoff_max=backoff_max, seed=retry_seed)
        self.client_id = client_id or uuid.uuid4().hex[:12]
        self._rids = itertools.count(1)
        self._next_id = 1
        self._connect()

    # Backoff knobs delegate to the shared policy so callers may keep
    # tuning them on the client object directly.

    @property
    def retries(self) -> int:
        return self.retry.retries

    @retries.setter
    def retries(self, value: int) -> None:
        self.retry.retries = value

    @property
    def backoff(self) -> float:
        return self.retry.backoff

    @backoff.setter
    def backoff(self, value: float) -> None:
        self.retry.backoff = value

    @property
    def backoff_max(self) -> float:
        return self.retry.backoff_max

    @backoff_max.setter
    def backoff_max(self, value: float) -> None:
        self.retry.backoff_max = value

    # -- lifecycle ----------------------------------------------------------

    def _connect(self) -> None:
        self._sock = socket.create_connection((self.host, self.port),
                                              timeout=self.timeout)
        self._file = self._sock.makefile("rwb")

    @property
    def connected(self) -> bool:
        return self._file is not None

    def close(self) -> None:
        """Idempotent teardown; safe mid-request and after failures."""
        file, self._file = self._file, None
        sock, self._sock = self._sock, None
        for resource in (file, sock):
            if resource is not None:
                try:
                    resource.close()
                except OSError:
                    pass

    def _reconnect(self) -> None:
        self.close()
        self._connect()

    def __enter__(self) -> "SessionClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- protocol -----------------------------------------------------------

    def call(self, cmd: str, **fields: Any) -> Any:
        """Send one request; return its ``result`` or raise ServerError.

        With a retry budget, transient failures (connection loss,
        ``busy``/``timeout``/``overloaded`` frames) back off and retry;
        mutations ride their ``rid`` so a retry can never double-apply.
        """
        frame = {"id": None, "cmd": cmd}
        frame.update(fields)
        if cmd in _MUTATING and "rid" not in frame:
            frame["rid"] = f"{self.client_id}:{next(self._rids)}"
        attempt = 0
        while True:
            try:
                if self._file is None:
                    self._connect()
                return self._exchange(frame)
            except ServerError as error:
                if error.kind not in RETRYABLE_ERRORS \
                        or self.retry.exhausted(attempt):
                    raise
            except (ConnectionError, OSError):
                # The connection is in an unknown state (a request or
                # response may be half-written) — drop it; the retry
                # reconnects and the rid makes the redo exactly-once.
                self.close()
                if self.retry.exhausted(attempt):
                    raise
            attempt += 1
            self.retry.sleep(attempt)

    def _exchange(self, frame: Dict[str, Any]) -> Any:
        request_id = self._next_id
        self._next_id += 1
        frame["id"] = request_id
        file = self._file
        if file is None:
            raise ConnectionError("client is closed")
        file.write(json.dumps(frame, separators=(",", ":")).encode()
                   + b"\n")
        file.flush()
        line = file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        response = json.loads(line)
        if response.get("id") != request_id:
            raise ConnectionError(
                f"response id {response.get('id')!r} does not match "
                f"request id {request_id}")
        if not response.get("ok"):
            raise ServerError(response.get("error", {}))
        return response.get("result")

    # -- conveniences -------------------------------------------------------

    def ping(self) -> bool:
        return bool(self.call("ping").get("pong"))

    def health(self) -> Dict[str, Any]:
        return self.call("health")

    def sessions(self) -> List[str]:
        return self.call("sessions")["sessions"]

    def shutdown(self) -> None:
        self.call("shutdown")

    def session(self, name: str) -> "SessionHandle":
        """Bind a session name; opens (or recovers) it on the server."""
        handle = SessionHandle(self, name)
        handle.open()
        return handle


class SessionHandle:
    """All session commands pre-bound to one session name."""

    def __init__(self, client: SessionClient, name: str) -> None:
        self.client = client
        self.name = name

    def _call(self, cmd: str, **fields: Any) -> Any:
        return self.client.call(cmd, session=self.name, **fields)

    def open(self) -> Dict[str, Any]:
        return self._call("open")

    def close(self) -> bool:
        return bool(self._call("close").get("closed"))

    def make_var(self, name: str, value: Any = None,
                 just: Optional[str] = None) -> str:
        fields: Dict[str, Any] = {"name": name, "value": value}
        if just is not None:
            fields["just"] = just
        return self._call("make-var", **fields)["var"]

    def assign(self, var: str, value: Any, just: str = "USER") -> Any:
        return self._call("assign", var=var, value=value, just=just)

    def assign_many(self, entries: Any, just: str = "USER") -> Any:
        """Batched assignment: one round, one journal record, one rid.

        ``entries`` is an iterable of ``(var, value)`` pairs,
        ``(var, value, just)`` triples, or ready-made entry dicts.  The
        whole batch applies exactly once even across retries.
        """
        return self._call("assign-many",
                          entries=self._entry_specs(entries), just=just)

    @staticmethod
    def _entry_specs(entries: Any) -> List[Dict[str, Any]]:
        specs: List[Dict[str, Any]] = []
        for item in entries:
            if isinstance(item, dict):
                specs.append(item)
            elif len(item) == 2:
                specs.append({"var": item[0], "value": item[1]})
            else:
                specs.append({"var": item[0], "value": item[1],
                              "just": item[2]})
        return specs

    def what_if(self, entries: Any, just: str = "USER") -> Any:
        """Preview a batch in a server-side computation space.

        Returns per-entry acceptance and resulting values; the session
        itself (journal, position, fingerprint) is untouched.
        """
        return self._call("what-if", entries=self._entry_specs(entries),
                          just=just)

    def what_if_commit(self, entries: Any, just: str = "USER") -> Any:
        """Apply a batch through a computation space and commit the
        accepted entries as one journaled batch; rejected entries are
        dropped instead of aborting.  Exactly-once across retries.
        """
        return self._call("what-if-commit",
                          entries=self._entry_specs(entries), just=just)

    def get(self, var: str) -> Dict[str, Any]:
        return self._call("get", var=var)

    def value(self, var: str) -> Any:
        return self.get(var)["value"]

    def retract(self, var: str) -> None:
        self._call("retract", var=var)

    def add_constraint(self, type_name: str, args: List[str],
                       params: Optional[Dict[str, Any]] = None,
                       cid: Optional[str] = None) -> str:
        fields: Dict[str, Any] = {"type": type_name, "args": args}
        if params:
            fields["params"] = params
        if cid is not None:
            fields["cid"] = cid
        return self._call("add-constraint", **fields)["cid"]

    def remove_constraint(self, cid: str) -> None:
        self._call("remove-constraint", cid=cid)

    def undo(self) -> bool:
        return bool(self._call("undo")["undone"])

    def redo(self) -> bool:
        return bool(self._call("redo")["redone"])

    def checkpoint(self) -> Dict[str, Any]:
        return self._call("checkpoint")

    def fingerprint(self, stats: bool = True) -> Dict[str, Any]:
        return self._call("fingerprint", stats=stats)

    def stats(self) -> Dict[str, Any]:
        return self._call("stats")

    def violations(self) -> List[Dict[str, Any]]:
        return self._call("violations")["violations"]

    def define_cell(self, name: str, superclass: Optional[str] = None,
                    generic: bool = False) -> None:
        fields: Dict[str, Any] = {"name": name, "generic": generic}
        if superclass is not None:
            fields["super"] = superclass
        self._call("define-cell", **fields)

    def define_signal(self, cell: str, name: str,
                      direction: str = "in") -> None:
        self._call("define-signal", cell=cell, name=name,
                   direction=direction)

    def declare_delay(self, cell: str, source: str, dest: str,
                      estimate: Optional[float] = None) -> None:
        self._call("declare-delay", cell=cell, source=source, dest=dest,
                   estimate=estimate)

    def add_parameter(self, cell: str, name: str, **fields: Any) -> None:
        self._call("add-parameter", cell=cell, name=name, **fields)

    def instantiate(self, parent: str, child: str, name: str,
                    orientation: str = "R0",
                    offset: Any = (0, 0)) -> None:
        self._call("instantiate", parent=parent, child=child, name=name,
                   orientation=orientation, offset=list(offset))

    def add_net(self, cell: str, name: str) -> None:
        self._call("add-net", cell=cell, name=name)

    def connect(self, cell: str, net: str, signal: str,
                instance: Optional[str] = None) -> None:
        self._call("connect", cell=cell, net=net, signal=signal,
                   instance=instance)
