"""Blocking JSON-line client for the session server.

Small by design — tests, the CI smoke script and interactive use need a
dependable synchronous client, not an async framework:

.. code-block:: python

    with SessionClient("127.0.0.1", 7700) as client:
        alice = client.session("alice")
        alice.make_var("x", 1)
        alice.assign("v:x", 5)
        alice.undo()
        alice.checkpoint()

Every call sends one request frame and blocks for its response frame;
an ``ok: false`` response raises :class:`ServerError` carrying the
server's error type (``violation``, ``busy``, ``timeout``, ...).
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, List, Optional

__all__ = ["ServerError", "SessionClient", "SessionHandle"]


class ServerError(RuntimeError):
    """An error frame from the server."""

    def __init__(self, error: Dict[str, Any]) -> None:
        super().__init__(f"{error.get('type', 'error')}: "
                         f"{error.get('message', '')}")
        self.kind = error.get("type", "error")
        self.detail = error.get("detail")


class SessionClient:
    """One TCP connection speaking the JSON-line protocol."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._next_id = 1

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "SessionClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- protocol -----------------------------------------------------------

    def call(self, cmd: str, **fields: Any) -> Any:
        """Send one request; return its ``result`` or raise ServerError."""
        request_id = self._next_id
        self._next_id += 1
        frame = {"id": request_id, "cmd": cmd}
        frame.update(fields)
        self._file.write(json.dumps(frame, separators=(",", ":")).encode()
                         + b"\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        response = json.loads(line)
        if response.get("id") != request_id:
            raise ConnectionError(
                f"response id {response.get('id')!r} does not match "
                f"request id {request_id}")
        if not response.get("ok"):
            raise ServerError(response.get("error", {}))
        return response.get("result")

    # -- conveniences -------------------------------------------------------

    def ping(self) -> bool:
        return bool(self.call("ping").get("pong"))

    def sessions(self) -> List[str]:
        return self.call("sessions")["sessions"]

    def shutdown(self) -> None:
        self.call("shutdown")

    def session(self, name: str) -> "SessionHandle":
        """Bind a session name; opens (or recovers) it on the server."""
        handle = SessionHandle(self, name)
        handle.open()
        return handle


class SessionHandle:
    """All session commands pre-bound to one session name."""

    def __init__(self, client: SessionClient, name: str) -> None:
        self.client = client
        self.name = name

    def _call(self, cmd: str, **fields: Any) -> Any:
        return self.client.call(cmd, session=self.name, **fields)

    def open(self) -> Dict[str, Any]:
        return self._call("open")

    def close(self) -> bool:
        return bool(self._call("close").get("closed"))

    def make_var(self, name: str, value: Any = None,
                 just: Optional[str] = None) -> str:
        fields: Dict[str, Any] = {"name": name, "value": value}
        if just is not None:
            fields["just"] = just
        return self._call("make-var", **fields)["var"]

    def assign(self, var: str, value: Any, just: str = "USER") -> Any:
        return self._call("assign", var=var, value=value, just=just)

    def get(self, var: str) -> Dict[str, Any]:
        return self._call("get", var=var)

    def value(self, var: str) -> Any:
        return self.get(var)["value"]

    def retract(self, var: str) -> None:
        self._call("retract", var=var)

    def add_constraint(self, type_name: str, args: List[str],
                       params: Optional[Dict[str, Any]] = None,
                       cid: Optional[str] = None) -> str:
        fields: Dict[str, Any] = {"type": type_name, "args": args}
        if params:
            fields["params"] = params
        if cid is not None:
            fields["cid"] = cid
        return self._call("add-constraint", **fields)["cid"]

    def remove_constraint(self, cid: str) -> None:
        self._call("remove-constraint", cid=cid)

    def undo(self) -> bool:
        return bool(self._call("undo")["undone"])

    def redo(self) -> bool:
        return bool(self._call("redo")["redone"])

    def checkpoint(self) -> Dict[str, Any]:
        return self._call("checkpoint")

    def fingerprint(self, stats: bool = True) -> Dict[str, Any]:
        return self._call("fingerprint", stats=stats)

    def stats(self) -> Dict[str, Any]:
        return self._call("stats")

    def violations(self) -> List[Dict[str, Any]]:
        return self._call("violations")["violations"]

    def define_cell(self, name: str, superclass: Optional[str] = None,
                    generic: bool = False) -> None:
        fields: Dict[str, Any] = {"name": name, "generic": generic}
        if superclass is not None:
            fields["super"] = superclass
        self._call("define-cell", **fields)

    def define_signal(self, cell: str, name: str,
                      direction: str = "in") -> None:
        self._call("define-signal", cell=cell, name=name,
                   direction=direction)

    def declare_delay(self, cell: str, source: str, dest: str,
                      estimate: Optional[float] = None) -> None:
        self._call("declare-delay", cell=cell, source=source, dest=dest,
                   estimate=estimate)

    def add_parameter(self, cell: str, name: str, **fields: Any) -> None:
        self._call("add-parameter", cell=cell, name=name, **fields)

    def instantiate(self, parent: str, child: str, name: str,
                    orientation: str = "R0",
                    offset: Any = (0, 0)) -> None:
        self._call("instantiate", parent=parent, child=child, name=name,
                   orientation=orientation, offset=list(offset))

    def add_net(self, cell: str, name: str) -> None:
        self._call("add-net", cell=cell, name=name)

    def connect(self, cell: str, net: str, signal: str,
                instance: Optional[str] = None) -> None:
        self._call("connect", cell=cell, net=net, signal=signal,
                   instance=instance)
