"""Concurrent multi-session server — newline-delimited JSON over TCP.

``repro serve --root DIR`` exposes a :class:`SessionManager` to N
concurrent clients.  The protocol is one JSON object per line in each
direction::

    -> {"id": 1, "cmd": "assign", "session": "alice", "var": "v:x",
        "value": 5}
    <- {"id": 1, "ok": true, "result": {"accepted": true, ...}}
    <- {"id": 2, "ok": false, "error": {"type": "violation",
        "message": "...", "detail": {...}}}

Isolation and flow control:

* every session has its own :class:`~repro.session.session.Session`
  (own context, library, journal) — no shared mutable state between
  sessions, so cross-session leakage is impossible by construction;
* an ``asyncio.Lock`` per session serializes its operations while
  operations on *different* sessions interleave freely;
* at most ``max_pending`` requests may queue per session — excess
  requests fail fast with a ``busy`` error frame;
* each request is bounded by ``request_timeout`` — lock starvation
  surfaces as a ``timeout`` error frame instead of a hung client;
* request frames are bounded by ``max_frame_bytes`` — an oversized frame
  answers with a ``bad-request`` frame and is discarded up to its
  newline, leaving the connection usable;
* at most ``max_connections`` clients may be connected — excess accepts
  receive a graceful ``overloaded`` frame and are closed;
* constraint violations are not errors of the protocol but of the
  design: they come back as graceful ``violation`` frames carrying the
  violation record, with the network already restored.

Retry safety: a request may carry a client-generated ``rid`` string.
The response to each ``rid`` is remembered (per session, bounded LRU)
and replayed verbatim when the same ``rid`` arrives again, so a client
that lost a response to a network fault can retry the mutation and have
it apply **exactly once**.  The check-and-record happens inside the
session lock with no intervening ``await``, so a duplicate can never
race the original.

Disk-fault surfacing: a session whose journal degraded (persistent disk
error) answers mutations with ``degraded`` frames; other I/O errors
surface as ``io-error`` frames.  ``health`` reports both, plus load.

The server process is crash-safe by delegation: every acknowledged
mutation was journaled write-ahead by the session, so ``kill -9`` at any
point loses nothing that was acknowledged (see docs/sessions.md).
"""

from __future__ import annotations

import asyncio
import json
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Set

from .codec import (
    EncodingError,
    UnknownAddress,
    decode_justification_name,
    decode_value,
    encode_value,
)
from .journal import JournalCorrupt, JournalDegraded
from .manager import SessionManager
from .session import Session, SessionError

__all__ = ["SessionServer"]

_MAX_LINE = 1 << 20
_READ_CHUNK = 1 << 16
_RID_CACHE_SIZE = 256  # remembered responses per session, for retries


class _RequestError(Exception):
    """A request that must answer with an error frame."""

    def __init__(self, kind: str, message: str,
                 detail: Any = None) -> None:
        super().__init__(message)
        self.kind = kind
        self.detail = detail

    def frame(self) -> Dict[str, Any]:
        error: Dict[str, Any] = {"type": self.kind, "message": str(self)}
        if self.detail is not None:
            error["detail"] = self.detail
        return error


class SessionServer:
    """Serve a session root to concurrent JSON-line clients."""

    def __init__(self, root: str, *, host: str = "127.0.0.1", port: int = 0,
                 fsync: str = "always", request_timeout: float = 30.0,
                 max_pending: int = 64, max_sessions: int = 64,
                 max_frame_bytes: int = _MAX_LINE,
                 max_connections: int = 64,
                 drain_timeout: float = 5.0,
                 opener: Any = None,
                 round_budget: Any = None,
                 island_workers: Any = None,
                 store: Any = None) -> None:
        self.manager = SessionManager(root, fsync=fsync,
                                      max_sessions=max_sessions,
                                      opener=opener,
                                      round_budget=round_budget,
                                      island_workers=island_workers,
                                      store=store)
        self.host = host
        self.port = port
        #: Extra identity fields merged into every ``health`` frame —
        #: a fleet worker stamps its worker id and role here.
        self.info: Dict[str, Any] = {}
        self.request_timeout = request_timeout
        self.max_pending = max_pending
        self.max_frame_bytes = max_frame_bytes
        self.max_connections = max_connections
        self.drain_timeout = drain_timeout
        self._locks: Dict[str, asyncio.Lock] = {}
        self._pending: Dict[str, int] = {}
        self._rid_cache: Dict[str, "OrderedDict[str, Any]"] = {}
        self._connections: Set[asyncio.StreamWriter] = set()
        self._in_flight = 0
        self._draining = False
        self._server: Optional[asyncio.AbstractServer] = None
        self._stopped: Optional[asyncio.Event] = None

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._client_connected, self.host, self.port, limit=_MAX_LINE)
        self.port = self._server.sockets[0].getsockname()[1]

    async def run(self) -> None:
        """Start, serve until :meth:`request_stop` / ``shutdown``, stop."""
        if self._server is None:
            await self.start()
        assert self._stopped is not None
        await self._stopped.wait()
        await self.stop()

    async def stop(self) -> None:
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Drain: let in-flight requests finish (and their responses be
        # written) before forcing connections closed and syncing journals.
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.drain_timeout
        while self._in_flight and loop.time() < deadline:
            await asyncio.sleep(0.01)
        await asyncio.sleep(0.05)  # grace for final response writes
        for writer in list(self._connections):
            writer.close()
        self.manager.close_all()
        self._draining = False

    def request_stop(self) -> None:
        if self._stopped is not None:
            self._stopped.set()

    # -- connection handling ------------------------------------------------

    async def _client_connected(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        try:
            if self._draining or len(self._connections) >= \
                    self.max_connections:
                writer.write(_encode_frame({
                    "id": None, "ok": False,
                    "error": {"type": "overloaded",
                              "message": "server at its connection limit "
                                         f"({self.max_connections})"}}))
                await writer.drain()
                return
            self._connections.add(writer)
            await self._serve_connection(reader, writer)
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            pass  # server shutdown while this connection was idle
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        """Frame requests by hand so an oversized line is survivable.

        ``StreamReader.readline`` cannot stay newline-aligned after a
        ``LimitOverrunError``, so the loop keeps its own buffer: an
        oversized frame answers ``bad-request`` once, its remaining bytes
        are discarded up to the newline, and the connection lives on.
        """
        buffer = bytearray()
        discarding = False
        limit = self.max_frame_bytes
        while True:
            newline = buffer.find(b"\n")
            if newline < 0:
                if len(buffer) > limit:
                    if not discarding:
                        discarding = True
                        writer.write(_encode_frame(_too_long_frame(limit)))
                        await writer.drain()
                    del buffer[:]  # drop the prefix, keep seeking newline
                chunk = await reader.read(_READ_CHUNK)
                if not chunk:
                    return
                buffer += chunk
                continue
            line = bytes(buffer[:newline])
            del buffer[:newline + 1]
            if discarding:
                discarding = False  # tail of the oversized frame
                continue
            if len(line) > limit:
                writer.write(_encode_frame(_too_long_frame(limit)))
                await writer.drain()
                continue
            self._in_flight += 1
            try:
                response = await self._handle_line(line)
            finally:
                self._in_flight -= 1
            writer.write(_encode_frame(response))
            await writer.drain()

    async def _handle_line(self, line: bytes) -> Dict[str, Any]:
        request_id: Any = None
        try:
            try:
                message = json.loads(line)
            except ValueError:
                raise _RequestError("bad-request", "request is not JSON")
            if not isinstance(message, dict):
                raise _RequestError("bad-request",
                                    "request must be a JSON object")
            request_id = message.get("id")
            result = await self._dispatch(message)
            return {"id": request_id, "ok": True, "result": result}
        except _RequestError as error:
            return {"id": request_id, "ok": False, "error": error.frame()}
        except (SessionError, EncodingError, UnknownAddress,
                KeyError, TypeError, ValueError) as error:
            return {"id": request_id, "ok": False,
                    "error": {"type": "bad-request", "message": str(error)}}
        except JournalCorrupt as error:
            return {"id": request_id, "ok": False,
                    "error": {"type": "internal", "message": str(error)}}
        except JournalDegraded as error:
            return {"id": request_id, "ok": False,
                    "error": {"type": "degraded", "message": str(error)}}
        except OSError as error:
            return {"id": request_id, "ok": False,
                    "error": {"type": "io-error", "message": str(error)}}

    async def _dispatch(self, message: Dict[str, Any]) -> Any:
        cmd = message.get("cmd")
        handler = self.COMMANDS.get(cmd)
        if handler is None:
            raise _RequestError("bad-request", f"unknown cmd {cmd!r}")
        if cmd in self.GLOBAL_COMMANDS:
            return handler(self, message)
        name = message.get("session")
        if not isinstance(name, str) or not name:
            raise _RequestError("bad-request",
                                f"cmd {cmd!r} requires a session name")
        pending = self._pending.get(name, 0)
        if pending >= self.max_pending:
            raise _RequestError(
                "busy", f"session {name!r} has {pending} pending requests")
        self._pending[name] = pending + 1
        lock = self._locks.setdefault(name, asyncio.Lock())
        rid = message.get("rid")
        if rid is not None and not isinstance(rid, str):
            raise _RequestError("bad-request", "rid must be a string")

        async def locked() -> Any:
            # Everything under the lock is synchronous (no awaits), so a
            # timeout can only cancel the request while it waits for the
            # lock — never between applying a mutation and remembering
            # its response.  That makes rid-replay exactly-once.
            async with lock:
                cache = self._rid_cache.setdefault(name, OrderedDict())
                if rid is not None and rid in cache:
                    cache.move_to_end(rid)
                    hit = cache[rid]
                    if isinstance(hit, _RequestError):
                        raise hit
                    return hit
                session: Optional[Session] = None
                if rid is not None and cmd in _JOURNALED_COMMANDS:
                    session = self.manager.get(name)
                    entry = session.rid_entry(rid)
                    if entry is not None:
                        # The mutation already reached the journal —
                        # possibly in a previous process life (the rid
                        # cache above dies with the process, the journal
                        # does not).  Rebuild a response from current
                        # state instead of applying twice.
                        result = _RECONSTRUCT[cmd](self, message, session,
                                                   entry)
                        result["replayed"] = True
                        _remember(cache, rid, result)
                        return result
                    # Stamp the rid into whatever this command journals,
                    # so the dedup above survives a worker kill.
                    session.pending_rid = rid
                before_seq = self._session_seq(name)
                try:
                    result = handler(self, message)
                except _RequestError as error:
                    # Deterministic rejections (violation, bad address…)
                    # replay as-is; load shedding is never remembered.
                    if rid is not None and error.kind not in ("busy",
                                                              "timeout"):
                        _remember(cache, rid, error)
                    raise
                finally:
                    if session is not None:
                        session.pending_rid = None
                result = self._post_command(name, message, result,
                                            before_seq)
                if rid is not None:
                    _remember(cache, rid, result)
                return result

        try:
            return await asyncio.wait_for(locked(), self.request_timeout)
        except asyncio.TimeoutError:
            raise _RequestError(
                "timeout",
                f"request exceeded {self.request_timeout}s") from None
        finally:
            remaining = self._pending.get(name, 1) - 1
            if remaining:
                self._pending[name] = remaining
            else:
                self._pending.pop(name, None)

    # -- helpers ------------------------------------------------------------

    def _session(self, message: Dict[str, Any]) -> Session:
        return self.manager.get(message["session"])

    def _session_seq(self, name: str) -> Optional[int]:
        """Journal position of ``name`` if it is open, else ``None``."""
        session = self.manager.sessions.get(name)
        return session.position if session is not None else None

    def _post_command(self, name: str, message: Dict[str, Any],
                      result: Dict[str, Any],
                      before_seq: Optional[int]) -> Dict[str, Any]:
        """Hook called under the session lock after a handler succeeds.

        ``before_seq`` is the session's journal position before the
        handler ran (``None`` if the session was not open yet).  The
        fleet worker overrides this to piggyback freshly-appended WAL
        lines onto the response for synchronous replication; the base
        server does nothing.
        """
        return result

    @staticmethod
    def _violation_frame(session: Session, what: str) -> _RequestError:
        detail = session.violations[-1] if session.violations else None
        return _RequestError("violation", f"{what} rejected by a "
                             f"constraint violation", detail=detail)

    # -- global commands ----------------------------------------------------

    def _cmd_ping(self, message: Dict[str, Any]) -> Dict[str, Any]:
        return {"pong": True}

    def _cmd_sessions(self, message: Dict[str, Any]) -> Dict[str, Any]:
        return {"sessions": self.manager.names()}

    def _cmd_shutdown(self, message: Dict[str, Any]) -> Dict[str, Any]:
        self.request_stop()
        return {"stopping": True}

    def _cmd_health(self, message: Dict[str, Any]) -> Dict[str, Any]:
        degraded_detail = self.manager.degraded_info()
        frame = {"status": "degraded" if degraded_detail else "ok",
                 "store": self.manager.store_backend,
                 "sessions": len(self.manager.sessions),
                 "open_sessions": sorted(self.manager.sessions),
                 "connections": len(self._connections),
                 "in_flight": self._in_flight,
                 "draining": self._draining,
                 "degraded": sorted(degraded_detail),
                 "degraded_detail": degraded_detail}
        frame.update(self.info)
        return frame

    # -- session commands ---------------------------------------------------

    def _cmd_open(self, message: Dict[str, Any]) -> Dict[str, Any]:
        session = self._session(message)
        return {"name": session.name, "position": session.position,
                "recovered_entries": session.replayed_entries,
                "vars": len(session.vars),
                "constraints": len(session.constraints)}

    def _cmd_close(self, message: Dict[str, Any]) -> Dict[str, Any]:
        self._rid_cache.pop(message["session"], None)
        return {"closed": self.manager.close(message["session"])}

    def _cmd_assign(self, message: Dict[str, Any]) -> Dict[str, Any]:
        session = self._session(message)
        justification = decode_justification_name(
            message.get("just", "USER"))
        ok = session.assign(message["var"],
                            decode_value(message.get("value")),
                            justification)
        if not ok:
            raise self._violation_frame(session, "assignment")
        value, just = session.get(message["var"])
        return {"accepted": True, "value": encode_value(value),
                "just": session._fingerprint_justification(just)}

    def _cmd_assign_many(self, message: Dict[str, Any]) -> Dict[str, Any]:
        entries = message.get("entries")
        if not isinstance(entries, list):
            raise _RequestError("bad-request",
                                "assign-many requires an entries list")
        session = self._session(message)
        default_just = message.get("just", "USER")
        assignments = []
        for spec in entries:
            if not isinstance(spec, dict) or "var" not in spec:
                raise _RequestError("bad-request",
                                    "each entry needs a var field")
            assignments.append((
                spec["var"], decode_value(spec.get("value")),
                decode_justification_name(spec.get("just", default_just))))
        before = session.context.stats.coalesced_assignments
        ok = session.assign_many(assignments)
        if not ok:
            raise self._violation_frame(session, "batched assignment")
        results = []
        for spec in entries:
            value, just = session.get(spec["var"])
            results.append({"var": spec["var"],
                            "value": encode_value(value),
                            "just": session._fingerprint_justification(just)})
        return {"accepted": True, "entries": results,
                "coalesced":
                    session.context.stats.coalesced_assignments - before}

    def _what_if_entries(self, message: Dict[str, Any]) -> List[tuple]:
        entries = message.get("entries")
        if not isinstance(entries, list):
            raise _RequestError("bad-request",
                                "what-if requires an entries list")
        default_just = message.get("just", "USER")
        specs = []
        for spec in entries:
            if not isinstance(spec, dict) or "var" not in spec:
                raise _RequestError("bad-request",
                                    "each entry needs a var field")
            specs.append((
                spec["var"], decode_value(spec.get("value")),
                decode_justification_name(spec.get("just", default_just))))
        return specs

    def _cmd_what_if(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Preview a batch inside a computation space: per-entry
        acceptance and resulting values, then discard — the session's
        journal, fingerprint and position are untouched."""
        session = self._session(message)
        specs = self._what_if_entries(message)
        results = []
        with session.space() as space:
            for var, value, just in specs:
                accepted = space.assign(var, value, just)
                value_now, just_now = space.get(var)
                results.append({
                    "var": var, "accepted": accepted,
                    "value": encode_value(value_now),
                    "just": session._fingerprint_justification(just_now)})
            violations = len(space.violations)
        return {"entries": results, "violations": violations,
                "position": session.position}

    def _cmd_what_if_commit(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Apply a batch through a computation space and commit the
        accepted entries as one journaled batch frame; rejected entries
        are dropped instead of aborting the whole batch."""
        session = self._session(message)
        specs = self._what_if_entries(message)
        before = session.context.stats.coalesced_assignments
        accepted_flags = []
        space = session.space().open()
        try:
            for var, value, just in specs:
                accepted_flags.append(space.assign(var, value, just))
            committed = len(space.log)
            ok = space.commit()
        finally:
            if not space.closed:
                space.discard()
        if not ok:
            raise self._violation_frame(session, "what-if commit")
        results = []
        for (var, _value, _just), accepted in zip(specs, accepted_flags):
            value, just = session.get(var)
            results.append({
                "var": var, "accepted": accepted,
                "value": encode_value(value),
                "just": session._fingerprint_justification(just)})
        return {"accepted": True, "entries": results,
                "committed": committed,
                "position": session.position,
                "coalesced":
                    session.context.stats.coalesced_assignments - before}

    def _cmd_get(self, message: Dict[str, Any]) -> Dict[str, Any]:
        session = self._session(message)
        value, just = session.get(message["var"])
        return {"value": encode_value(value),
                "just": session._fingerprint_justification(just)}

    def _cmd_make_var(self, message: Dict[str, Any]) -> Dict[str, Any]:
        session = self._session(message)
        session.make_variable(message["name"],
                              decode_value(message.get("value")),
                              decode_justification_name(message["just"])
                              if message.get("just") else None)
        return {"var": f"v:{message['name']}"}

    def _cmd_retract(self, message: Dict[str, Any]) -> Dict[str, Any]:
        session = self._session(message)
        session.retract(message["var"])
        return {"retracted": message["var"]}

    def _cmd_add_constraint(self, message: Dict[str, Any]) -> Dict[str, Any]:
        session = self._session(message)
        cid = session.add_constraint(
            message["type"], list(message.get("args", [])),
            params={key: decode_value(val)
                    for key, val in message.get("params", {}).items()},
            cid=message.get("cid"))
        return {"cid": cid}

    def _cmd_remove_constraint(self,
                               message: Dict[str, Any]) -> Dict[str, Any]:
        session = self._session(message)
        session.remove_constraint(message["cid"])
        return {"removed": message["cid"]}

    def _cmd_undo(self, message: Dict[str, Any]) -> Dict[str, Any]:
        session = self._session(message)
        return {"undone": session.undo(), "position": session.position}

    def _cmd_redo(self, message: Dict[str, Any]) -> Dict[str, Any]:
        session = self._session(message)
        return {"redone": session.redo(), "position": session.position}

    def _cmd_checkpoint(self, message: Dict[str, Any]) -> Dict[str, Any]:
        session = self._session(message)
        path = session.checkpoint()
        return {"path": path, "position": session.position}

    def _cmd_fingerprint(self, message: Dict[str, Any]) -> Dict[str, Any]:
        session = self._session(message)
        return session.fingerprint(
            include_stats=bool(message.get("stats", True)))

    def _cmd_stats(self, message: Dict[str, Any]) -> Dict[str, Any]:
        session = self._session(message)
        stats = session.context.stats.snapshot()
        cache = session.context.plan_cache
        stats["plan_hits"] = cache.hits if cache is not None else 0
        stats["plan_chain_hits"] = (cache.chain_hits
                                    if cache is not None else 0)
        stats["plan_deopts"] = cache.deopts if cache is not None else 0
        islands = session.context.islands
        if islands is not None:
            stats.update(islands.stats())
        return {"stats": {key: stats[key] for key in sorted(stats)},
                "position": session.position,
                "store": self.manager.store_backend,
                "violations": len(session.violations),
                "unjournaled_assigns": session.unjournaled_assigns}

    def _cmd_violations(self, message: Dict[str, Any]) -> Dict[str, Any]:
        return {"violations": list(self._session(message).violations)}

    def _cmd_define_cell(self, message: Dict[str, Any]) -> Dict[str, Any]:
        session = self._session(message)
        session.define_cell(message["name"], message.get("super"),
                            bool(message.get("generic")))
        return {"cell": message["name"]}

    def _cmd_define_signal(self, message: Dict[str, Any]) -> Dict[str, Any]:
        session = self._session(message)
        session.define_signal(message["cell"], message["name"],
                              message.get("direction", "in"))
        return {"signal": message["name"]}

    def _cmd_declare_delay(self, message: Dict[str, Any]) -> Dict[str, Any]:
        session = self._session(message)
        session.declare_delay(message["cell"], message["source"],
                              message["dest"],
                              estimate=message.get("estimate"))
        return {"delay": f"delay({message['source']}->{message['dest']})"}

    def _cmd_add_parameter(self, message: Dict[str, Any]) -> Dict[str, Any]:
        session = self._session(message)
        session.add_parameter(message["cell"], message["name"],
                              low=decode_value(message.get("low")),
                              high=decode_value(message.get("high")),
                              choices=decode_value(message.get("choices")),
                              default=decode_value(message.get("default")))
        return {"parameter": message["name"]}

    def _cmd_instantiate(self, message: Dict[str, Any]) -> Dict[str, Any]:
        session = self._session(message)
        offset = message.get("offset", [0, 0])
        session.instantiate(message["parent"], message["child"],
                            message["name"],
                            orientation=message.get("orientation", "R0"),
                            offset=(offset[0], offset[1]))
        return {"instance": message["name"]}

    def _cmd_add_net(self, message: Dict[str, Any]) -> Dict[str, Any]:
        session = self._session(message)
        session.add_net(message["cell"], message["name"])
        return {"net": message["name"]}

    def _cmd_connect(self, message: Dict[str, Any]) -> Dict[str, Any]:
        session = self._session(message)
        ok = session.connect(message["cell"], message["net"],
                             message["signal"], message.get("instance"))
        if not ok:
            raise self._violation_frame(session, "connection")
        return {"connected": True}


def _encode_frame(frame: Dict[str, Any]) -> bytes:
    return (json.dumps(frame, separators=(",", ":")) + "\n").encode("utf-8")


def _too_long_frame(limit: int) -> Dict[str, Any]:
    return {"id": None, "ok": False,
            "error": {"type": "bad-request",
                      "message": f"request frame exceeds {limit} bytes"}}


def _remember(cache: "OrderedDict[str, Any]", rid: Optional[str],
              outcome: Any) -> None:
    if rid is None:
        return
    cache[rid] = outcome
    if len(cache) > _RID_CACHE_SIZE:
        cache.popitem(last=False)


# -- durable rid replay ------------------------------------------------------
#
# The per-session rid cache above lives in process memory; the journal
# does not.  Commands listed here journal (at most) one entry per
# request, stamped with the request's rid, so a retry that arrives after
# a worker kill — when the in-memory cache is gone but the journal was
# replayed — is recognized via Session.rid_entry and answered from
# current state instead of applying twice.  Reconstructed responses
# carry ``"replayed": true``; value fields reflect the state *now*,
# which equals the original response unless later mutations intervened
# (clients retry promptly, so in practice they match).

_JOURNALED_COMMANDS = frozenset({
    "assign", "assign-many", "what-if-commit", "make-var", "retract",
    "add-constraint", "remove-constraint", "undo", "redo", "checkpoint",
    "define-cell", "define-signal", "declare-delay", "add-parameter",
    "instantiate", "add-net", "connect",
})


def _reread_entries(session: Session,
                    specs: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    results = []
    for spec in specs:
        value, just = session.get(spec["var"])
        results.append({"var": spec["var"],
                        "value": encode_value(value),
                        "just": session._fingerprint_justification(just)})
    return results


def _rc_assign(server: "SessionServer", message: Dict[str, Any],
               session: Session, entry: Dict[str, Any]) -> Dict[str, Any]:
    value, just = session.get(message["var"])
    return {"accepted": True, "value": encode_value(value),
            "just": session._fingerprint_justification(just)}


def _rc_assign_many(server: "SessionServer", message: Dict[str, Any],
                    session: Session,
                    entry: Dict[str, Any]) -> Dict[str, Any]:
    return {"accepted": True,
            "entries": _reread_entries(session, message.get("entries", [])),
            "coalesced": 0}


def _rc_what_if_commit(server: "SessionServer", message: Dict[str, Any],
                       session: Session,
                       entry: Dict[str, Any]) -> Dict[str, Any]:
    journaled = {spec.get("var") for spec in entry.get("entries", [])}
    results = []
    for spec in message.get("entries", []):
        value, just = session.get(spec["var"])
        results.append({
            "var": spec["var"], "accepted": spec["var"] in journaled,
            "value": encode_value(value),
            "just": session._fingerprint_justification(just)})
    return {"accepted": True, "entries": results,
            "committed": len(entry.get("entries", [])),
            "position": session.position, "coalesced": 0}


_RECONSTRUCT: Dict[str, Callable[..., Dict[str, Any]]] = {
    "assign": _rc_assign,
    "assign-many": _rc_assign_many,
    "what-if-commit": _rc_what_if_commit,
    "make-var": lambda server, message, session, entry:
        {"var": f"v:{message['name']}"},
    "retract": lambda server, message, session, entry:
        {"retracted": message["var"]},
    "add-constraint": lambda server, message, session, entry:
        {"cid": entry.get("cid", message.get("cid"))},
    "remove-constraint": lambda server, message, session, entry:
        {"removed": message["cid"]},
    "undo": lambda server, message, session, entry:
        {"undone": True, "position": session.position},
    "redo": lambda server, message, session, entry:
        {"redone": True, "position": session.position},
    "checkpoint": lambda server, message, session, entry:
        {"path": None, "position": session.position},
    "define-cell": lambda server, message, session, entry:
        {"cell": message["name"]},
    "define-signal": lambda server, message, session, entry:
        {"signal": message["name"]},
    "declare-delay": lambda server, message, session, entry:
        {"delay": f"delay({message['source']}->{message['dest']})"},
    "add-parameter": lambda server, message, session, entry:
        {"parameter": message["name"]},
    "instantiate": lambda server, message, session, entry:
        {"instance": message["name"]},
    "add-net": lambda server, message, session, entry:
        {"net": message["name"]},
    "connect": lambda server, message, session, entry:
        {"connected": True},
}

_GLOBAL_COMMANDS = {"ping", "sessions", "shutdown", "health"}

_COMMANDS: Dict[str, Callable[..., Any]] = {
    "ping": SessionServer._cmd_ping,
    "sessions": SessionServer._cmd_sessions,
    "shutdown": SessionServer._cmd_shutdown,
    "health": SessionServer._cmd_health,
    "open": SessionServer._cmd_open,
    "close": SessionServer._cmd_close,
    "assign": SessionServer._cmd_assign,
    "assign-many": SessionServer._cmd_assign_many,
    "what-if": SessionServer._cmd_what_if,
    "what-if-commit": SessionServer._cmd_what_if_commit,
    "get": SessionServer._cmd_get,
    "make-var": SessionServer._cmd_make_var,
    "retract": SessionServer._cmd_retract,
    "add-constraint": SessionServer._cmd_add_constraint,
    "remove-constraint": SessionServer._cmd_remove_constraint,
    "undo": SessionServer._cmd_undo,
    "redo": SessionServer._cmd_redo,
    "checkpoint": SessionServer._cmd_checkpoint,
    "fingerprint": SessionServer._cmd_fingerprint,
    "stats": SessionServer._cmd_stats,
    "violations": SessionServer._cmd_violations,
    "define-cell": SessionServer._cmd_define_cell,
    "define-signal": SessionServer._cmd_define_signal,
    "declare-delay": SessionServer._cmd_declare_delay,
    "add-parameter": SessionServer._cmd_add_parameter,
    "instantiate": SessionServer._cmd_instantiate,
    "add-net": SessionServer._cmd_add_net,
    "connect": SessionServer._cmd_connect,
}

# Dispatch tables live on the class so subclasses (the fleet worker) can
# extend the protocol without touching the base maps.
SessionServer.COMMANDS = _COMMANDS
SessionServer.GLOBAL_COMMANDS = _GLOBAL_COMMANDS
