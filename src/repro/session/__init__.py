"""Durable design sessions over the constraint engine.

The thesis's STEM is a *shared design database* (sections 1.2, 6.3):
designers mutate it incrementally and dependency records make every
mutation traceable and reversible.  This package supplies the durability
and concurrency spine for that framing:

:mod:`~repro.session.journal`
    write-ahead journal — CRC-checked JSON-line segments, fsync policy,
    atomic rotation, torn-tail repair.
:mod:`~repro.session.session`
    :class:`~repro.session.session.Session` — journaled mutations,
    checkpoint/restore, deterministic replay, undo/redo.
:mod:`~repro.session.codec`
    stable addresses and value/justification encodings.
:mod:`~repro.session.manager` / :mod:`~repro.session.server` /
:mod:`~repro.session.client`
    N concurrent isolated sessions behind a JSON-line TCP server
    (``repro serve``).
"""

from .codec import EncodingError, UnknownAddress
from .journal import (
    DEFAULT_OPENER,
    FileOpener,
    JournalCorrupt,
    JournalDegraded,
    JournalTailGap,
    JournalTailReader,
    JournalWriter,
    read_entries,
)
from .manager import SessionManager
from .retry import RetryPolicy
from .session import (
    CONSTRAINT_TYPES,
    Session,
    SessionError,
    register_constraint_type,
)

__all__ = [
    "CONSTRAINT_TYPES",
    "DEFAULT_OPENER",
    "EncodingError",
    "FileOpener",
    "JournalCorrupt",
    "JournalDegraded",
    "JournalTailGap",
    "JournalTailReader",
    "JournalWriter",
    "RetryPolicy",
    "Session",
    "SessionError",
    "SessionManager",
    "UnknownAddress",
    "read_entries",
    "register_constraint_type",
]
