"""Journal codec — addresses, values and justifications as plain JSON.

A journal entry must survive a process restart, so it cannot hold object
references.  This module defines the stable textual forms:

**Addresses** identify variables across restarts:

* ``v:<name>`` — a session-registered free variable,
* ``c:<cell>:<varname>`` — a cell-class variable (``boundingBox``,
  ``a.dataType``, ``delay(a->b)``, parameter names, ...),
* ``i:<cell>:<instance>:<varname>`` — an instance variable of a subcell
  of ``<cell>``.

Cell, instance and session-variable names may not contain ``:`` (the
address separator); :func:`check_name` enforces this at definition time,
before anything reaches the journal.

**Values** are encoded structurally: JSON scalars pass through; tuples,
:class:`~repro.stem.geometry.Point`/:class:`~repro.stem.geometry.Rect`
and interned signal types get tagged wrappers so decoding restores the
exact Python shape (a tuple must not come back as a list — value
equality is the propagation termination criterion).

**Justifications**: external justifications encode as their symbol name;
propagated justifications never appear in journal entries (external
entry points only carry external symbols) but do appear in checkpoint
snapshots as ``{"p": <cid>, "dep": <addr|None>}``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from ..core.justification import ExternalJustification

__all__ = [
    "EncodingError",
    "UnknownAddress",
    "check_name",
    "decode_justification_name",
    "decode_value",
    "encode_justification_name",
    "encode_value",
]


class EncodingError(ValueError):
    """A value or name that cannot be journaled."""


class UnknownAddress(KeyError):
    """An address that does not resolve in the session's design state."""

    def __str__(self) -> str:  # KeyError quotes its repr; keep it readable
        return self.args[0] if self.args else "unknown address"


def check_name(name: str, what: str = "name") -> str:
    """Reject names the address grammar cannot carry."""
    if not isinstance(name, str) or not name:
        raise EncodingError(f"{what} must be a non-empty string, "
                            f"not {name!r}")
    if ":" in name or "\n" in name:
        raise EncodingError(f"{what} {name!r} may not contain ':' or "
                            f"newlines (journal address separator)")
    return name


# ---------------------------------------------------------------------------
# Values
# ---------------------------------------------------------------------------

def encode_value(value: Any) -> Any:
    """JSON-able form of a design value; raises :class:`EncodingError`."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, tuple):
        return {"__tuple__": [encode_value(item) for item in value]}
    if isinstance(value, list):
        return {"__list__": [encode_value(item) for item in value]}
    kind = type(value).__name__
    if kind == "Point" and hasattr(value, "x") and hasattr(value, "y"):
        return {"__point__": [value.x, value.y]}
    if kind == "Rect" and hasattr(value, "origin"):
        return {"__rect__": [value.origin.x, value.origin.y,
                             value.corner.x, value.corner.y]}
    name = getattr(value, "name", None)
    if name is not None and _lookup_signal_type(name) is value:
        return {"__sigtype__": name}
    raise EncodingError(f"value {value!r} of type {type(value).__name__} "
                        f"is not journalable")


def decode_value(data: Any) -> Any:
    if not isinstance(data, dict):
        return data
    if "__tuple__" in data:
        return tuple(decode_value(item) for item in data["__tuple__"])
    if "__list__" in data:
        return [decode_value(item) for item in data["__list__"]]
    if "__point__" in data:
        from ..stem.geometry import Point
        return Point(*data["__point__"])
    if "__rect__" in data:
        from ..stem.geometry import Point, Rect
        x0, y0, x1, y1 = data["__rect__"]
        return Rect(Point(x0, y0), Point(x1, y1))
    if "__sigtype__" in data:
        found = _lookup_signal_type(data["__sigtype__"])
        if found is None:
            raise EncodingError(
                f"unknown signal type {data['__sigtype__']!r}")
        return found
    raise EncodingError(f"unknown value encoding {data!r}")


def _lookup_signal_type(name: str) -> Optional[Any]:
    from ..stem.types import S_MODULE_SIGNAL_TYPE
    try:
        return S_MODULE_SIGNAL_TYPE.lookup(name)
    except (KeyError, ValueError):
        return None


# ---------------------------------------------------------------------------
# Justifications
# ---------------------------------------------------------------------------

def encode_justification_name(justification: Any) -> str:
    """Symbol name of an external justification (``USER`` → ``"USER"``)."""
    if isinstance(justification, ExternalJustification):
        return justification.name
    raise EncodingError(f"only external justifications are journalable, "
                        f"not {justification!r}")


def decode_justification_name(name: str) -> ExternalJustification:
    return ExternalJustification(name)


# ---------------------------------------------------------------------------
# Addresses
# ---------------------------------------------------------------------------

def build_address_index(library: Any,
                        session_vars: Dict[str, Any]) -> Dict[int, str]:
    """``id(variable) -> address`` over a library plus the session vars."""
    index: Dict[int, str] = {}
    for cell in library:
        for var_name, variable in cell.variables.items():
            index[id(variable)] = f"c:{cell.name}:{var_name}"
        for instance in cell.subcells:
            for var_name, variable in instance.variables.items():
                index[id(variable)] = f"i:{cell.name}:{instance.name}:{var_name}"
    for var_name, variable in session_vars.items():
        index[id(variable)] = f"v:{var_name}"
    return index


def resolve_address(address: str, library: Any,
                    session_vars: Dict[str, Any],
                    factory: Optional[Callable[[str], Any]] = None) -> Any:
    """The live variable an address names; raises :class:`UnknownAddress`.

    ``factory`` (used during replay of hook-captured assignments to
    not-yet-registered free variables) may create a missing ``v:`` var.
    """
    kind, _, rest = address.partition(":")
    try:
        if kind == "v":
            variable = session_vars.get(rest)
            if variable is None and factory is not None:
                variable = factory(rest)
            if variable is None:
                raise KeyError(rest)
            return variable
        if kind == "c":
            cell_name, _, var_name = rest.partition(":")
            return library.cell(cell_name).var(var_name)
        if kind == "i":
            cell_name, _, tail = rest.partition(":")
            instance_name, _, var_name = tail.partition(":")
            cell = library.cell(cell_name)
            for instance in cell.subcells:
                if instance.name == instance_name:
                    return instance.var(var_name)
            raise KeyError(instance_name)
    except KeyError as error:
        raise UnknownAddress(
            f"address {address!r} does not resolve: {error}") from None
    raise UnknownAddress(f"malformed address {address!r}")
