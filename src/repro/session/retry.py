"""Shared retry timing: exponential backoff with seeded jitter.

One implementation serves both sides of the wire: the blocking
:class:`~repro.session.client.SessionClient` sleeps through it between
request retries, and the fleet router's worker links use the same policy
for reconnect pacing (``repro.fleet.router``).  Keeping the arithmetic
in one place means the retry behaviour proven by the client's chaos
tests is exactly the behaviour the router exhibits.

The schedule for attempt ``n`` (1-based) is::

    base = min(backoff * 2 ** (n - 1), backoff_max)
    delay = base * (0.5 + rng.random())        # jitter in [0.5, 1.5)

A fixed ``seed`` makes the jitter sequence reproducible — deterministic
fault-injection runs depend on that.
"""

from __future__ import annotations

import random
import time
from typing import Iterator, Optional

__all__ = ["RetryPolicy"]


class RetryPolicy:
    """Exponential backoff with seeded jitter.

    Parameters
    ----------
    retries:
        Attempt budget (0 = fail fast; the first try is not a retry).
    backoff, backoff_max:
        Base and cap of the exponential delay curve, in seconds.
    seed:
        Seeds the jitter RNG; ``None`` draws entropy from the OS.
    """

    def __init__(self, *, retries: int = 0, backoff: float = 0.05,
                 backoff_max: float = 2.0,
                 seed: Optional[int] = None) -> None:
        self.retries = retries
        self.backoff = backoff
        self.backoff_max = backoff_max
        self._rng = random.Random(seed)

    def base_delay(self, attempt: int) -> float:
        """The un-jittered delay before retry ``attempt`` (1-based)."""
        return min(self.backoff * (2 ** (attempt - 1)), self.backoff_max)

    def delay(self, attempt: int) -> float:
        """Jittered delay before retry ``attempt`` (1-based).

        Consumes one draw from the jitter RNG; with a fixed seed the
        sequence of delays is reproducible.
        """
        return self.base_delay(attempt) * (0.5 + self._rng.random())

    def exhausted(self, attempt: int) -> bool:
        """True once ``attempt`` retries have been spent."""
        return attempt >= self.retries

    def sleep(self, attempt: int) -> None:
        """Block for the jittered delay of retry ``attempt``."""
        time.sleep(self.delay(attempt))

    def delays(self) -> Iterator[float]:
        """The full jittered schedule, one delay per retry in budget."""
        for attempt in range(1, self.retries + 1):
            yield self.delay(attempt)

    def __repr__(self) -> str:
        return (f"RetryPolicy(retries={self.retries}, "
                f"backoff={self.backoff}, backoff_max={self.backoff_max})")
