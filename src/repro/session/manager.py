"""Session registry — named durable sessions under one root directory.

A :class:`SessionManager` owns ``<root>/<name>/`` per session and hands
out live :class:`~repro.session.session.Session` objects, recovering
them from disk on first access.  It performs no locking of its own
beyond registry consistency — callers (the server) serialize operations
*within* a session; operations on different sessions are independent by
construction (each has its own context, library and journal).
"""

from __future__ import annotations

import os
import threading
from typing import Any, Dict, List, Optional

from .codec import check_name
from .journal import FileOpener
from .session import Session, SessionError

__all__ = ["SessionManager"]


class SessionManager:
    """Open, recover, enumerate and close sessions under ``root``.

    ``opener`` (a :class:`~repro.session.journal.FileOpener`) routes all
    journal/checkpoint I/O of every managed session — the fault-injection
    seam.  ``round_budget`` (a :class:`~repro.core.engine.RoundBudget`)
    installs the propagation watchdog on each session's context as it is
    opened.  ``island_workers`` configures island-parallel batch
    draining per opened session (see :class:`~repro.session.session.Session`).
    ``store`` selects the durable backend: ``None``/``"file"``,
    ``"sqlite[:path]"``, ``"object[:path]"`` (the ``--store`` grammar —
    see :func:`repro.store.resolve_store`), or an already-built
    :class:`~repro.store.base.SegmentStore`.
    """

    def __init__(self, root: str, *, fsync: str = "always",
                 max_sessions: int = 64,
                 opener: Optional[FileOpener] = None,
                 round_budget: Optional[Any] = None,
                 island_workers: Optional[int] = None,
                 store: Optional[Any] = None) -> None:
        from ..store import SegmentStore, resolve_store
        self.root = root
        self.fsync = fsync
        self.max_sessions = max_sessions
        self.opener = opener
        self.round_budget = round_budget
        self.island_workers = island_workers
        if store is None or isinstance(store, str):
            store = resolve_store(store, root, opener=opener)
        elif not isinstance(store, SegmentStore):
            raise TypeError(f"store must be a spec string or SegmentStore, "
                            f"not {type(store).__name__}")
        self.store = store
        self.sessions: Dict[str, Session] = {}
        self._lock = threading.Lock()
        os.makedirs(root, exist_ok=True)

    @property
    def store_backend(self) -> str:
        """Backend name of the managed root (``file``/``sqlite``/``object``)."""
        return self.store.backend

    def path_of(self, name: str) -> str:
        check_name(name, "session name")
        return os.path.join(self.root, name)

    def get(self, name: str, *, create: bool = True) -> Session:
        """The live session ``name``, recovering or creating it."""
        with self._lock:
            session = self.sessions.get(name)
            if session is not None:
                return session
            check_name(name, "session name")
            session_store = self.store.session(name)
            if not create and not session_store.exists():
                raise SessionError(f"no session {name!r} under {self.root}")
            if len(self.sessions) >= self.max_sessions:
                raise SessionError(
                    f"session limit reached ({self.max_sessions})")
            session = Session(name, store=session_store, fsync=self.fsync,
                              opener=self.opener,
                              island_workers=self.island_workers)
            if self.round_budget is not None:
                session.context.round_budget = self.round_budget
            self.sessions[name] = session
            return session

    def close(self, name: str) -> bool:
        """Close (journal-sync and detach) one session if open."""
        with self._lock:
            session = self.sessions.pop(name, None)
        if session is None:
            return False
        session.close()
        return True

    def close_all(self) -> None:
        with self._lock:
            sessions = list(self.sessions.values())
            self.sessions.clear()
        for session in sessions:
            session.close()
        self.store.close()

    def names(self) -> List[str]:
        """Names of every open or durably stored session, sorted."""
        found = set(self.sessions)
        try:
            found.update(self.store.session_names())
        except OSError:
            pass
        return sorted(found)

    def is_open(self, name: str) -> bool:
        return name in self.sessions

    def degraded_names(self) -> List[str]:
        """Names of open sessions whose journals entered degraded mode."""
        with self._lock:
            return sorted(name for name, session in self.sessions.items()
                          if session.degraded)

    def degraded_info(self) -> Dict[str, str]:
        """Degraded open sessions mapped to their disk-error message.

        The ``health`` frame ships this so a fleet router can route
        around a worker whose disk is failing for specific sessions.
        """
        info: Dict[str, str] = {}
        with self._lock:
            for name in sorted(self.sessions):
                session = self.sessions[name]
                if session.degraded:
                    error = session.degraded_error
                    info[name] = str(error) if error else "degraded"
        return info

    def __enter__(self) -> "SessionManager":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close_all()
