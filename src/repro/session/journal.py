"""The write-ahead journal — ordered, CRC-checked JSON-line segments.

Durability spine of :mod:`repro.session`: every externally-justified
mutation of a design session is appended here *before* it is applied to
the constraint network (write-ahead logging).  Recovery composes the
latest checkpoint snapshot with a replay of the journal tail, so no
acknowledged mutation is lost even across ``kill -9``.

Format
------
A journal is a directory of segment files named ``wal-<firstseq>.jsonl``.
Each line holds one entry::

    <crc32-hex8> <compact-json>\n

where the checksum covers the JSON body's UTF-8 bytes.  Entries carry a
monotonically increasing ``seq`` number; the body is otherwise an opaque
operation dictionary owned by :class:`repro.session.session.Session`.

A torn tail — a partial line, a line whose checksum mismatches, or a
line that is not valid JSON — in the **last** segment is the signature
of a crash mid-append: it is truncated on open, not raised.  The same
damage in an earlier segment means bit-rot or external tampering and
raises :class:`JournalCorrupt` (replaying past a hole would silently
diverge).

Durability policy (``fsync``):

``"always"``
    ``os.fsync`` after every append — an acknowledged append survives
    power loss.  The default, and what the crash-recovery guarantees
    assume.
``"rotate"``
    fsync only on segment rotation and :meth:`JournalWriter.sync`; a
    crash may lose the OS-buffered tail of the current segment (but
    never tear an earlier one).
``"never"``
    buffer appends in the process; they reach the OS only on rotation,
    :meth:`JournalWriter.sync` or close (benchmarks, throwaway
    sessions — a crash loses the buffered tail of the current segment).

Segment rotation is atomic with respect to recovery: the new segment
file is created, fsynced, and its directory entry fsynced *before* the
writer switches to it, so a crash at any point leaves either the old
segment as the tail or a valid (possibly empty) new one.
"""

from __future__ import annotations

import json
import os
import zlib
from collections import deque
from typing import Any, Deque, Dict, Iterator, List, Optional, Tuple

try:  # optional accelerator — the stdlib path below is always correct
    import orjson as _orjson
except ImportError:  # pragma: no cover - depends on the environment
    _orjson = None

__all__ = [
    "DEFAULT_OPENER",
    "FileOpener",
    "JournalCorrupt",
    "JournalDegraded",
    "JournalTailGap",
    "JournalTailReader",
    "JournalWriter",
    "read_entries",
    "scan_segments",
    "SEGMENT_PREFIX",
    "SEGMENT_SUFFIX",
]

SEGMENT_PREFIX = "wal-"
SEGMENT_SUFFIX = ".jsonl"

#: Default segment rotation threshold (bytes).
DEFAULT_SEGMENT_BYTES = 1 << 20

_FSYNC_POLICIES = ("always", "rotate", "never")


class JournalCorrupt(ValueError):
    """Unrecoverable journal damage (a hole before the tail)."""


class JournalTailGap(RuntimeError):
    """A tail reader fell behind the oldest surviving segment.

    Raised by :meth:`JournalTailReader.poll` when the entry it needs next
    was pruned (covered by a checkpoint).  The reader cannot continue
    from raw journal lines alone — the follower must resynchronise from a
    checkpoint snapshot first.
    """


class JournalDegraded(RuntimeError):
    """The journal hit a persistent disk error and is now read-only.

    Raised by every mutating call after the writer degrades.  The
    session stays alive for reads, fingerprints and verification; the
    already-acknowledged journal prefix on disk is intact (the failing
    append was rolled back best-effort, so recovery never surfaces an
    unacknowledged entry as committed).
    """


class FileOpener:
    """Seam for every file-system touch of the journal/checkpoint writers.

    The default instance simply forwards to the ``os`` layer.  Fault
    injection (:class:`repro.faults.FaultOpener`) subclasses this to
    interpose torn writes, fsync failures, ``ENOSPC`` and crash windows
    without the production paths knowing — they pay one attribute
    indirection, nothing more, when no fault layer is installed.
    """

    def __call__(self, path: str, mode: str = "r", **kwargs: Any) -> Any:
        return open(path, mode, **kwargs)

    def fsync(self, handle: Any) -> None:
        os.fsync(handle.fileno())

    def fsync_dir(self, directory: str) -> None:
        _fsync_directory(directory)

    def replace(self, src: str, dst: str) -> None:
        os.replace(src, dst)

    def remove(self, path: str) -> None:
        os.remove(path)

    def getsize(self, path: str) -> int:
        return os.path.getsize(path)


#: Shared pass-through opener used when no fault layer is installed.
DEFAULT_OPENER = FileOpener()


def _segment_name(first_seq: int) -> str:
    return f"{SEGMENT_PREFIX}{first_seq:010d}{SEGMENT_SUFFIX}"


def _segment_first_seq(name: str) -> Optional[int]:
    if not (name.startswith(SEGMENT_PREFIX) and name.endswith(SEGMENT_SUFFIX)):
        return None
    digits = name[len(SEGMENT_PREFIX):-len(SEGMENT_SUFFIX)]
    return int(digits) if digits.isdigit() else None


def scan_segments(directory: str) -> List[Tuple[int, str]]:
    """``(first_seq, path)`` of every segment, ordered by first sequence."""
    found: List[Tuple[int, str]] = []
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return found
    for name in names:
        first = _segment_first_seq(name)
        if first is not None:
            found.append((first, os.path.join(directory, name)))
    found.sort()
    return found


def _fsync_directory(directory: str) -> None:
    """Persist directory entries (new/renamed files) where supported."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return  # e.g. Windows: directories are not fsync-able
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


# A single reusable encoder: ``json.dumps`` with non-default options
# builds a fresh ``JSONEncoder`` per call, which dominates the append
# path's CPU cost on small entries.
_ENCODER = json.JSONEncoder(separators=(",", ":"), sort_keys=True)
_ORJSON_OPTIONS = _orjson.OPT_SORT_KEYS if _orjson is not None else 0


def _safe_str(text: str) -> bool:
    # No escaping needed → formats as '"' + text + '"' exactly like the
    # JSON encoder (which escapes non-ASCII, quotes, backslashes and
    # control characters).
    return (text.isascii() and text.isprintable()
            and '"' not in text and "\\" not in text)


def _format_flat(entry: Dict[str, Any]) -> Optional[str]:
    """Byte-identical fast path of ``_ENCODER.encode`` for flat entries.

    The dominant journal traffic is small dicts of plain scalars
    (assign/retract ops); formatting those by hand roughly halves append
    CPU.  Anything needing escaping, float special cases, or nesting
    returns ``None`` and takes the real encoder.
    """
    parts = []
    for key in sorted(entry):
        value = entry[key]
        kind = type(value)
        if kind is str:
            if not _safe_str(value):
                return None
            text = '"' + value + '"'
        elif kind is int:
            text = repr(value)
        elif kind is bool:
            text = "true" if value else "false"
        elif value is None:
            text = "null"
        elif kind is float:
            if value != value or value in (float("inf"), float("-inf")):
                return None
            text = repr(value)
        else:
            return None
        parts.append('"' + key + '":' + text)
    return "{" + ",".join(parts) + "}"


def _frame(data: bytes) -> bytes:
    """The journal line framing: checksum, space, body, newline."""
    return b"%08x " % (zlib.crc32(data) & 0xFFFFFFFF,) + data + b"\n"


def format_assign_body(var: str, value_json: str, just: str,
                       seq: int, rid: Optional[str] = None) -> bytes:
    """Fused compact encoding of one assign op.

    ``var``, ``just`` (and ``rid`` when present) must be escape-free
    (:func:`_safe_str`) and ``value_json`` already-valid JSON text.
    Byte-identical to what :func:`encode_entry` produces for the
    equivalent dict — keys in sorted order, compact separators.
    """
    if rid is None:
        return ('{"just":"%s","op":"assign","seq":%d,"value":%s,"var":"%s"}'
                % (just, seq, value_json, var)).encode("utf-8")
    return ('{"just":"%s","op":"assign","rid":"%s","seq":%d,'
            '"value":%s,"var":"%s"}'
            % (just, rid, seq, value_json, var)).encode("utf-8")


def format_batch_body(entries: List[Tuple[str, str, str]],
                      seq: int, rid: Optional[str] = None) -> bytes:
    """Fused compact encoding of one batch op.

    ``entries`` holds ``(var, value_json, just)`` triples under the same
    escape-free contract as :func:`format_assign_body`.  Byte-identical
    to :func:`encode_entry` on the equivalent nested dict.
    """
    body = ",".join('{"just":"%s","value":%s,"var":"%s"}'
                    % (just, value_json, var)
                    for var, value_json, just in entries)
    if rid is None:
        return ('{"entries":[%s],"op":"batch","seq":%d}'
                % (body, seq)).encode("utf-8")
    return ('{"entries":[%s],"op":"batch","rid":"%s","seq":%d}'
            % (body, rid, seq)).encode("utf-8")


def encode_entry(entry: Dict[str, Any]) -> bytes:
    """One journal line: checksum, space, compact JSON, newline.

    Every encoder used here emits compact, key-sorted JSON that
    ``json.loads`` reads back; the checksum always covers exactly the
    bytes written, so mixed-encoder journals are fine.
    """
    if _orjson is not None:
        try:
            data = _orjson.dumps(entry, option=_ORJSON_OPTIONS)
        except (TypeError, ValueError):  # e.g. an int beyond 64 bits
            data = _ENCODER.encode(entry).encode("utf-8")
    else:
        body = _format_flat(entry)
        if body is None:
            body = _ENCODER.encode(entry)
        data = body.encode("utf-8")
    return _frame(data)


def _decode_line(line: bytes) -> Optional[Dict[str, Any]]:
    """Entry dict, or ``None`` for a torn/corrupt line."""
    if not line.endswith(b"\n") or len(line) < 11 or line[8:9] != b" ":
        return None
    try:
        crc = int(line[:8], 16)
    except ValueError:
        return None
    body = line[9:-1]
    if zlib.crc32(body) & 0xFFFFFFFF != crc:
        return None
    try:
        entry = json.loads(body)
    except ValueError:
        return None
    return entry if isinstance(entry, dict) else None


class JournalWriter:
    """Append-only writer over a journal directory.

    Parameters
    ----------
    directory:
        Journal directory (created if missing).  Shorthand for a
        :class:`repro.store.FileSessionStore` over that directory.
    store:
        A :class:`repro.store.SessionStore` performing every durable
        touch; when given, ``directory``/``opener`` are ignored and the
        journal lives wherever the backend puts it.
    next_seq:
        Sequence number the next append will carry; recovery passes the
        value it reached while replaying.
    fsync:
        Durability policy — ``"always"`` (default), ``"rotate"`` or
        ``"never"``; see the module docstring.
    segment_max_bytes:
        Rotation threshold; a segment is closed once it grows past this.
    observer:
        Optional :class:`repro.obs.observer.Observer` fed per-append
        byte counts and latencies.
    opener:
        :class:`FileOpener` performing every file-system touch; the
        fault-injection seam.  Defaults to the pass-through
        :data:`DEFAULT_OPENER`.
    tail_lines:
        How many recently-appended lines to keep in memory for
        :meth:`recent_lines` (the replication fast path).

    Disk errors (``OSError`` from any write/flush/fsync/rotate) switch
    the writer into **degraded** mode: the failing append is rolled back
    best-effort (segment truncated to its pre-append size), the handle
    is closed, and every further mutating call raises
    :class:`JournalDegraded` instead of half-writing entries.
    """

    def __init__(self, directory: Optional[str] = None, *,
                 store: Any = None, next_seq: int = 1,
                 fsync: str = "always",
                 segment_max_bytes: int = DEFAULT_SEGMENT_BYTES,
                 observer: Any = None,
                 opener: Optional[FileOpener] = None,
                 tail_lines: int = 512) -> None:
        if fsync not in _FSYNC_POLICIES:
            raise ValueError(f"fsync policy must be one of {_FSYNC_POLICIES}, "
                             f"not {fsync!r}")
        if store is None:
            if directory is None:
                raise ValueError("JournalWriter needs a directory or a store")
            from ..store.filestore import FileSessionStore
            store = FileSessionStore(directory, opener=opener)
        self._store = store
        self.directory = (directory if directory is not None
                          else store.fs_directory)
        self._where = self.directory or store.location
        self.fsync = fsync
        self.segment_max_bytes = segment_max_bytes
        self.observer = observer
        self._append_hook = getattr(observer, "journal_appended", None)
        # Per-append policy, resolved once (string compares are visible
        # on the hot path).
        self._fsync_each = fsync == "always"
        self._flush_each = fsync != "never"
        self._next_seq = next_seq
        self._appender: Optional[Any] = None
        self._segment_key: Optional[str] = None
        self._segment_size = 0
        self._degraded: Optional[OSError] = None
        # Recent appended lines, verbatim — the replication fast path
        # ships these bytes to a follower without re-reading the disk
        # (and without waiting for an fsync="never" buffer to flush).
        self._tail: Deque[Tuple[int, bytes]] = deque(maxlen=tail_lines)
        store.prepare()
        segments = store.segments()
        if segments and segments[-1][0] <= next_seq:
            # Keep appending to the existing tail segment (recovery has
            # already truncated any torn line off its end).
            self._segment_key = segments[-1][1]
            self._segment_size = store.segment_size(self._segment_key)
            self._appender = store.open_segment(self._segment_key)

    # -- lifecycle ----------------------------------------------------------

    @property
    def position(self) -> int:
        """Sequence number the next append will carry."""
        return self._next_seq

    @property
    def degraded(self) -> bool:
        """True once a disk error froze the writer read-only."""
        return self._degraded is not None

    @property
    def degraded_error(self) -> Optional[OSError]:
        """The disk error that degraded the writer, if any."""
        return self._degraded

    def close(self) -> None:
        appender, self._appender = self._appender, None
        if appender is None:
            return
        try:
            appender.flush()
            if self.fsync != "never":
                appender.sync()
        except OSError as error:
            # Closing is a teardown path: record the failure (the tail
            # of a "never"-policy journal may be lost) but never raise
            # over whatever the caller is already unwinding.
            self._degraded = error
        finally:
            try:
                appender.close()
            except OSError:
                pass

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- appending ----------------------------------------------------------

    def append(self, op: Dict[str, Any]) -> int:
        """Write one operation durably; returns its sequence number.

        The entry is on disk (to the configured durability level) when
        this returns — callers apply the mutation only afterwards.  The
        writer takes ownership of ``op`` and stamps its ``seq`` into it.
        """
        seq = self._next_seq
        op["seq"] = seq
        return self._append_line(encode_entry(op), seq)

    def append_assign(self, var: str, value_json: str, just: str,
                      rid: Optional[str] = None) -> int:
        """Hot-path append of one assign entry, bypassing dict encoding.

        ``var`` and ``just`` (and ``rid`` when given) must be escape-free
        strings and ``value_json`` already-valid JSON text; callers check
        with :func:`_safe_str` and fall back to :meth:`append`.  Produces
        the same bytes ``append({"op": "assign", ...})`` would.
        """
        seq = self._next_seq
        return self._append_line(
            _frame(format_assign_body(var, value_json, just, seq, rid)),
            seq)

    def append_batch(self, entries: List[Tuple[str, str, str]],
                     rid: Optional[str] = None) -> int:
        """Hot-path append of one batch entry, bypassing dict encoding.

        ``entries`` holds ``(var, value_json, just)`` triples under the
        :meth:`append_assign` escape-free contract.  One CRC-checked
        record covers the whole batch; produces the same bytes
        ``append({"op": "batch", "entries": [...]})`` would.
        """
        seq = self._next_seq
        return self._append_line(
            _frame(format_batch_body(entries, seq, rid)), seq)

    def _append_line(self, line: bytes, seq: int) -> int:
        """Land one framed line: the single appender/rotate/hook path."""
        appender = self._appender
        if appender is None or self._segment_size >= self.segment_max_bytes:
            # A degraded writer always has a None appender, so the slow
            # path also raises JournalDegraded for frozen journals.
            appender = self._active_appender(seq)
        self._write_line(appender, line)
        self._next_seq = seq + 1
        self._tail.append((seq, line))
        hook = self._append_hook
        if hook is not None:
            hook(len(line))
        return seq

    def _active_appender(self, first_seq: int) -> Any:
        """The writable segment appender, rotating (or refusing) as needed."""
        if self._degraded is not None:
            raise JournalDegraded(self._degraded_message())
        appender = self._appender
        if appender is None or self._segment_size >= self.segment_max_bytes:
            try:
                appender = self._rotate(first_seq)
            except OSError as error:
                self._enter_degraded(error, rollback_size=None)
        return appender

    def _write_line(self, appender: Any, line: bytes) -> None:
        """Land one encoded line on disk, or degrade trying.

        "never" keeps entries in the process buffer (durable only at
        rotate/close/sync); the other policies hand each entry to the
        OS, "always" additionally forcing it to stable storage.  Any
        ``OSError`` from the disk rolls the segment back to its
        pre-append size and raises :class:`JournalDegraded` — an
        acknowledged entry is durable, a failed one leaves no trace.
        """
        pre_size = self._segment_size
        try:
            appender.write(line)
            self._segment_size += len(line)
            if self._flush_each:
                appender.flush()
                if self._fsync_each:
                    appender.sync()
        except OSError as error:
            self._enter_degraded(error, rollback_size=pre_size)

    def _enter_degraded(self, error: OSError,
                        rollback_size: Optional[int]) -> None:
        """Contain a disk failure: freeze the writer read-only.

        The handle is closed, a best-effort truncate rewinds the current
        segment to its pre-append size (an *unacknowledged* entry must
        not surface on recovery as if it had been acknowledged — the
        fsync-failure gray zone), and every later mutating call raises
        :class:`JournalDegraded`.  The session object stays alive:
        reads, fingerprints and recovery by another process keep
        working against the intact acknowledged prefix.
        """
        self._degraded = error
        appender, self._appender = self._appender, None
        if appender is not None:
            try:
                appender.close()
            except OSError:
                pass
        if rollback_size is not None and self._segment_key is not None:
            try:
                self._store.rollback_segment(self._segment_key,
                                             rollback_size)
                self._segment_size = rollback_size
            except OSError:
                pass  # recovery's torn-tail repair is the backstop
        observer = self.observer
        if observer is not None:
            hook = getattr(observer, "journal_degraded", None)
            if hook is not None:
                hook(str(error))
        raise JournalDegraded(self._degraded_message()) from error

    def _degraded_message(self) -> str:
        return (f"journal {self._where!r} is degraded (read-only) "
                f"after a disk error: {self._degraded}")

    def recent_lines(self, after_seq: int) -> Optional[List[bytes]]:
        """Raw journal lines with ``seq > after_seq``, from memory.

        Returns ``[]`` when the caller is already caught up, the framed
        lines (checksum, body, newline — exactly the bytes on disk) when
        the in-memory tail still covers the requested range, and ``None``
        when it does not (the caller must fall back to reading the
        segment files).  Works regardless of the fsync policy: the bytes
        come from the writer, not the OS buffer.
        """
        if after_seq >= self._next_seq - 1:
            return []
        tail = self._tail
        if not tail or tail[0][0] > after_seq + 1:
            return None
        return [line for seq, line in tail if seq > after_seq]

    def sync(self) -> None:
        """Force the current segment to stable storage."""
        if self._degraded is not None:
            raise JournalDegraded(self._degraded_message())
        if self._appender is not None:
            try:
                self._appender.flush()
                self._appender.sync()
            except OSError as error:
                self._enter_degraded(error, rollback_size=None)

    def _rotate(self, first_seq: int) -> Any:
        """Close the current segment and start ``wal-<first_seq>``.

        The new segment is durable (backend-persisted; the file layout
        fsyncs the file and its directory entry) before any entry lands
        in it, so recovery always sees either the old tail or a valid
        new segment.
        """
        appender, self._appender = self._appender, None
        if appender is not None:
            appender.flush()
            if self.fsync != "never":
                appender.sync()
            appender.close()
        new_appender = self._store.create_segment(
            first_seq, durable=self.fsync != "never")
        self._segment_key = new_appender.key
        self._segment_size = 0
        self._appender = new_appender
        observer = self.observer
        if observer is not None:
            hook = getattr(observer, "journal_rotated", None)
            if hook is not None:
                hook(new_appender.key)
        return new_appender

    # -- maintenance --------------------------------------------------------

    def prune(self, up_to_seq: int) -> List[str]:
        """Delete whole segments whose every entry has ``seq <= up_to_seq``.

        Called after a checkpoint: segments fully covered by the snapshot
        are dead weight.  The segment containing ``up_to_seq + 1`` (and
        anything later) is kept.  Returns the deleted paths.
        """
        segments = self._store.segments()
        deleted: List[str] = []
        for index, (first, key) in enumerate(segments):
            next_first = (segments[index + 1][0]
                          if index + 1 < len(segments) else self._next_seq)
            if next_first <= up_to_seq + 1 and key != self._segment_key:
                try:
                    self._store.delete_segment(key)
                except OSError:
                    continue  # a stale covered segment is harmless
                deleted.append(self._store.describe(key))
        if deleted:
            try:
                self._store.sync_root()
            except OSError:
                pass
        return deleted


def read_entries(directory: str, *, after_seq: int = 0,
                 repair: bool = True) -> Iterator[Dict[str, Any]]:
    """Yield journal entries with ``seq > after_seq`` in order.

    With ``repair`` (the default), a torn tail in the last segment is
    truncated from the file so subsequent appends extend a clean journal.
    Damage anywhere else raises :class:`JournalCorrupt`.
    """
    segments = scan_segments(directory)
    expected: Optional[int] = None
    for index, (first, path) in enumerate(segments):
        is_last = index == len(segments) - 1
        offset = 0
        with open(path, "rb") as handle:
            for line in handle:
                entry = _decode_line(line)
                if entry is None or not isinstance(entry.get("seq"), int):
                    if not is_last:
                        raise JournalCorrupt(
                            f"corrupt entry at byte {offset} of non-tail "
                            f"segment {path}")
                    if repair:
                        _truncate(path, offset)
                    return
                seq = entry["seq"]
                if expected is not None and seq != expected:
                    raise JournalCorrupt(
                        f"sequence gap in {path}: expected seq {expected}, "
                        f"found {seq}")
                expected = seq + 1
                offset += len(line)
                if seq > after_seq:
                    yield entry


def _truncate(path: str, offset: int) -> None:
    with open(path, "r+b") as handle:
        handle.truncate(offset)
        handle.flush()
        os.fsync(handle.fileno())


class JournalTailReader:
    """Incrementally follow a live journal directory — the follower path.

    Unlike :func:`read_entries` (one complete pass with tail repair),
    this reader is built for polling a journal *while it is being
    written*: it remembers its byte offset between calls, follows
    segment rotation, and treats an incomplete or checksum-failing line
    at the very end of the last segment as *not yet fully flushed* —
    :meth:`poll` simply stops before it and picks it up next time.  The
    journal file is never modified.

    Raw framed lines are returned alongside each decoded entry so a
    replica can append byte-identical lines to its own copy.

    Raises
    ------
    :class:`JournalCorrupt`
        for damage that cannot be a write in progress — a bad line with
        data after it, or a sequence gap inside the journal.
    :class:`JournalTailGap`
        when the next needed entry was pruned away (the reader must
        resynchronise from a checkpoint).
    """

    def __init__(self, directory: str, *, after_seq: int = 0) -> None:
        self.directory = directory
        self._next_seq = after_seq + 1
        self._path: Optional[str] = None
        self._offset = 0

    @property
    def position(self) -> int:
        """Sequence number of the last entry returned."""
        return self._next_seq - 1

    def poll(self, *, limit: Optional[int] = None,
             max_bytes: Optional[int] = None) -> List[Tuple[int, bytes]]:
        """New complete entries since the last call, as (seq, raw line).

        Returns an empty list when nothing new is durably visible yet.
        ``limit`` / ``max_bytes`` bound one batch (the reader resumes
        exactly where it stopped).
        """
        out: List[Tuple[int, bytes]] = []
        out_bytes = 0
        while True:
            before = (self._path, self._offset, self._next_seq)
            segments = scan_segments(self.directory)
            if not segments:
                return out
            index = None
            for i, (first, _path) in enumerate(segments):
                if first <= self._next_seq:
                    index = i
                else:
                    break
            if index is None:
                raise JournalTailGap(
                    f"journal {self.directory!r} now starts at seq "
                    f"{segments[0][0]} but the reader needs "
                    f"{self._next_seq}; resync from a checkpoint")
            path = segments[index][1]
            is_last = index == len(segments) - 1
            if path != self._path:
                self._path = path
                self._offset = 0
            try:
                with open(path, "rb") as handle:
                    handle.seek(self._offset)
                    data = handle.read()
            except FileNotFoundError:
                self._path = None  # pruned between scan and open
                continue
            pos = 0
            while True:
                newline = data.find(b"\n", pos)
                if newline < 0:
                    break  # incomplete tail line: wait for more bytes
                line = data[pos:newline + 1]
                pos = newline + 1
                entry = _decode_line(line)
                if entry is None or not isinstance(entry.get("seq"), int):
                    if is_last and pos >= len(data):
                        # Checksum failure on the very last visible
                        # line: a buffered writer may have flushed it in
                        # pieces — re-read it whole on the next poll.
                        return out
                    raise JournalCorrupt(
                        f"corrupt entry at byte {self._offset} of {path}")
                seq = entry["seq"]
                self._offset += len(line)
                if seq < self._next_seq:
                    continue  # overlap at the start of a segment
                if seq != self._next_seq:
                    raise JournalCorrupt(
                        f"sequence gap in {path}: expected "
                        f"{self._next_seq}, found {seq}")
                self._next_seq = seq + 1
                out.append((seq, line))
                out_bytes += len(line)
                if limit is not None and len(out) >= limit:
                    return out
                if max_bytes is not None and out_bytes >= max_bytes:
                    return out
            # Loop again only while making progress (a rotation may have
            # exposed a newer segment); a quiet journal returns.
            if (self._path, self._offset, self._next_seq) == before:
                return out
