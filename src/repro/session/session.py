"""Durable design sessions — the unit of recoverable, undoable work.

The thesis frames STEM as a shared design database that designers mutate
incrementally: values are assigned and retracted, constraints added and
removed, structure edited — and dependency records make the effects of
every mutation traceable and reversible (sections 1.2, 4.2.5, 6.3).  A
:class:`Session` packages exactly that unit of work durably:

* every externally-justified mutation is captured as a journal entry
  **before** it is applied (write-ahead logging) — external assignments
  are captured at the engine's own entry point via the
  ``PropagationContext.recorder`` hook, structural edits through the
  session's operation methods;
* :meth:`checkpoint` composes a :mod:`repro.stem.persistence` library
  snapshot with the journal position, so recovery replays only the tail;
* :meth:`undo`/:meth:`redo` rewind the journal position — cheaply via
  dependency-directed erasure for value mutations (the thesis's
  retraction machinery), by checkpoint-and-replay rebuild for structural
  ones;
* replaying a journal deterministically reproduces the live run: same
  final values, same justifications, same violation log, same
  propagation statistics.

Determinism discipline
----------------------
Replay equivalence requires every traversal the session performs to be
ordered by *network structure*, never by hash order: erasure sets are
collected by deterministic depth-first walks over constraint/argument
lists, snapshots sort variables by name, and constraints apply in
creation order.  Nothing in this module may iterate a ``set`` when the
result influences propagation.

What is journaled
-----------------
External assignments on *addressable* variables (session-registered
variables and any cell/instance variable of the session's library), and
every structural operation performed through the session API.
Assignments to anonymous derived variables (delay-network internals,
compiler temporaries) are deliberately **not** journaled — they re-derive
when the operations that created them replay — and are counted in
:attr:`Session.unjournaled_assigns` for observability.
"""

from __future__ import annotations

import json
import os
from collections import OrderedDict
from contextlib import contextmanager
from time import perf_counter
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from ..core.engine import PropagationContext, RoundBudget
from ..core.islands import install_islands
from ..core.justification import (
    APPLICATION,
    PropagatedJustification,
    USER,
    is_propagated,
)
from ..core.variable import Variable
from ..core.violations import ViolationHandler, WarningHandler
from .codec import (
    EncodingError,
    UnknownAddress,
    build_address_index,
    check_name,
    decode_justification_name,
    decode_value,
    encode_justification_name,
    encode_value,
    resolve_address,
)
from .journal import (
    DEFAULT_OPENER,
    DEFAULT_SEGMENT_BYTES,
    FileOpener,
    JournalWriter,
    _safe_str,
    read_entries,
)

__all__ = [
    "CONSTRAINT_TYPES",
    "STATE_SCHEMA",
    "Session",
    "SessionError",
    "register_constraint_type",
]

STATE_SCHEMA = "repro-session/1"
CHECKPOINT_PREFIX = "ckpt-"
_INF = float("inf")
CHECKPOINT_SUFFIX = ".json"

#: Journaled request ids remembered per session for retry deduplication
#: that survives a process kill (rebuilt from the journal on recovery).
_RID_JOURNAL_CACHE = 1024


class SessionError(RuntimeError):
    """Invalid session operation (unknown id, duplicate name, ...)."""


# ---------------------------------------------------------------------------
# Journalable constraint types
# ---------------------------------------------------------------------------

def _registry() -> Dict[str, Callable[..., Any]]:
    from ..core.functional import (
        ScaleOffsetConstraint,
        UniAdditionConstraint,
        UniMaximumConstraint,
        UniMinimumConstraint,
    )
    from ..core.library import CompatibleConstraint, EqualityConstraint
    from ..core.predicates import (
        LowerBoundConstraint,
        OrderingConstraint,
        RangeConstraint,
        UpperBoundConstraint,
    )

    return {
        "equality": lambda vars, p: EqualityConstraint(*vars),
        "compatible": lambda vars, p: CompatibleConstraint(*vars),
        "maximum": lambda vars, p: UniMaximumConstraint(vars[0], vars[1:]),
        "minimum": lambda vars, p: UniMinimumConstraint(vars[0], vars[1:]),
        "sum": lambda vars, p: UniAdditionConstraint(vars[0], vars[1:]),
        "scale-offset": lambda vars, p: ScaleOffsetConstraint(
            vars[0], vars[1], scale=p.get("scale", 1),
            offset=p.get("offset", 0)),
        "upper-bound": lambda vars, p: UpperBoundConstraint(
            vars[0], p["bound"]),
        "lower-bound": lambda vars, p: LowerBoundConstraint(
            vars[0], p["bound"]),
        "range": lambda vars, p: RangeConstraint(
            vars[0], p.get("low"), p.get("high")),
        "ordering": lambda vars, p: OrderingConstraint(*vars),
    }


#: Journalable constraint kinds: name -> factory(variables, params).
CONSTRAINT_TYPES: Dict[str, Callable[..., Any]] = _registry()


def register_constraint_type(name: str,
                             factory: Callable[..., Any]) -> None:
    """Make a constraint kind journalable.

    ``factory(variables, params)`` must deterministically rebuild the
    constraint from resolved argument variables and decoded parameters.
    """
    CONSTRAINT_TYPES[check_name(name, "constraint type")] = factory


# ---------------------------------------------------------------------------
# Violation log
# ---------------------------------------------------------------------------

class _ViolationLogHandler(ViolationHandler):
    """Record every violation in the session's history, then delegate."""

    def __init__(self, session: "Session",
                 inner: Optional[ViolationHandler]) -> None:
        super().__init__()
        self.session = session
        self.inner = inner

    def handle(self, record: Any) -> None:
        self.session._note_violation(record)
        if self.inner is not None:
            self.inner.handle(record)


class _JournalObserverProxy:
    """Route journal instrumentation to whatever observer is installed
    on the session's *current* context (rebuilds swap contexts)."""

    __slots__ = ("session",)

    def __init__(self, session: "Session") -> None:
        self.session = session

    def journal_appended(self, nbytes: int) -> None:
        observer = self.session.context.observer
        if observer is not None:
            hook = getattr(observer, "journal_appended", None)
            if hook is not None:
                hook(nbytes)

    def journal_rotated(self, name: str) -> None:
        observer = self.session.context.observer
        if observer is not None:
            hook = getattr(observer, "journal_rotated", None)
            if hook is not None:
                hook(name)

    def journal_degraded(self, message: str) -> None:
        observer = self.session.context.observer
        if observer is not None:
            hook = getattr(observer, "journal_degraded", None)
            if hook is not None:
                hook(message)


# ---------------------------------------------------------------------------
# The session
# ---------------------------------------------------------------------------

class Session:
    """A durable, recoverable, undoable design session.

    Parameters
    ----------
    name:
        Session name (used for the library name and server identity).
    directory:
        Journal + checkpoint directory; ``None`` gives an in-memory
        session (undo/redo and replay-from-snapshot still work, nothing
        survives the process).
    fsync:
        Journal durability policy (see :mod:`repro.session.journal`).
    read_only:
        Recover state but open no writer and record no new mutations —
        the verification-replay mode.
    island_workers:
        Island-parallel batch draining (:mod:`repro.core.islands`).
        ``None`` (default) installs the island index for partition
        queries only; ``0``/``1`` drains multi-island batches through
        the serial island executor; greater values drain disjoint
        islands on that many threads.  Every setting is byte-identical
        on disk and in fingerprints.
    opener:
        :class:`~repro.session.journal.FileOpener` used for every
        journal/checkpoint write — the fault-injection seam.  Defaults
        to the pass-through :data:`~repro.session.journal.DEFAULT_OPENER`.
    store:
        A :class:`repro.store.SessionStore` performing every durable
        touch — journal segments and checkpoints both.  ``None`` with a
        ``directory`` uses the file backend over that directory
        (the pre-interface behavior, byte-identical on disk); when
        given, ``directory`` and ``opener`` are ignored.
    replay_to:
        Stop recovery replay after this sequence number — the
        time-travel hook compaction uses to snapshot the state as of a
        segment boundary.  Only meaningful with ``read_only``.

    Opening a directory that already holds a checkpoint and journal
    *recovers* it: the latest valid checkpoint loads, the journal tail
    replays (a torn final entry is truncated), and the session continues
    appending where the crash left off.

    A persistent disk error during journaling degrades the session to
    read-only (:attr:`degraded`): mutating operations raise
    :class:`~repro.session.journal.JournalDegraded`, while reads,
    fingerprints and recovery by a healthy process keep working.
    """

    def __init__(self, name: str = "session", *,
                 directory: Optional[str] = None,
                 fsync: str = "always",
                 segment_max_bytes: int = DEFAULT_SEGMENT_BYTES,
                 keep_checkpoints: int = 2,
                 read_only: bool = False,
                 island_workers: Optional[int] = None,
                 opener: Optional[FileOpener] = None,
                 store: Optional[Any] = None,
                 replay_to: Optional[int] = None) -> None:
        check_name(name, "session name")
        self.name = name
        self.directory = directory
        self.read_only = read_only
        self._opener = opener if opener is not None else DEFAULT_OPENER
        self.keep_checkpoints = keep_checkpoints
        self.vars: Dict[str, Variable] = {}
        self.constraints: Dict[str, Any] = {}
        self._constraint_meta: Dict[str, Dict[str, Any]] = {}
        self._next_cid = 1
        self.violations: List[Dict[str, Any]] = []
        self._effective: List[Dict[str, Any]] = []
        self._redo: List[Dict[str, Any]] = []
        self._recording = False
        self._addr_index: Optional[Dict[int, str]] = None
        self._safe_strings: set = set()
        self._journal: Optional[JournalWriter] = None
        self._space_depth = 0
        self._last_seq = 0
        #: Request id to stamp into the next journaled entry (set by the
        #: server under the session lock, consumed by the next append).
        self.pending_rid: Optional[str] = None
        self._applied_rids: "OrderedDict[str, Dict[str, Any]]" = \
            OrderedDict()
        self.replayed_entries = 0
        self.unjournaled_assigns = 0
        self.context = PropagationContext()
        self.context.handler = _ViolationLogHandler(self,
                                                    self.context.handler)
        self.context.recorder = self
        # Install the island index before the library (and any journal
        # replay) builds structure, so the partition observes every link
        # from the start.  The index alone is cheap bookkeeping; batches
        # only drain island-structured when island_workers is given, and
        # concurrently when it exceeds 1.
        install_islands(self.context, workers=island_workers)
        self.library = _fresh_library(name, self.context)

        if store is None and directory is not None:
            # Lazy import: repro.store.base imports this module's
            # sibling journal, so a top-level import here would cycle.
            from ..store.filestore import FileSessionStore
            store = FileSessionStore(directory, opener=self._opener)
        elif store is not None and directory is None:
            self.directory = store.fs_directory
        self._store = store

        state = None
        if store is not None:
            from ..store import base as _storebase
            store.prepare()
            state = _storebase.load_latest_checkpoint(store, STATE_SCHEMA)
        if state is not None:
            self._install_state(state)
            self._last_seq = state["seq"]
            self._base_state = state
        else:
            self._base_state = self._snapshot_state()
        if store is not None:
            t0 = perf_counter()
            for entry in _storebase.read_store_entries(
                    store, after_seq=self._last_seq,
                    repair=not read_only):
                if replay_to is not None and entry["seq"] > replay_to:
                    break
                self._apply_entry(entry)
                self._last_seq = entry["seq"]
                self.replayed_entries += 1
                rid = entry.get("rid")
                if rid is not None:
                    self._note_rid(rid, entry)
            if self.replayed_entries:
                self._observe("session_replayed", self.replayed_entries,
                              perf_counter() - t0)
            if not read_only:
                self._journal = JournalWriter(
                    self.directory, store=store,
                    next_seq=self._last_seq + 1, fsync=fsync,
                    segment_max_bytes=segment_max_bytes,
                    observer=_JournalObserverProxy(self),
                    opener=self._opener)
        self._recording = not read_only

    # -- lifecycle ----------------------------------------------------------

    @property
    def position(self) -> int:
        """Sequence number of the last recorded entry."""
        return self._last_seq

    @property
    def durable(self) -> bool:
        return self._journal is not None

    @property
    def store(self) -> Optional[Any]:
        """The :class:`repro.store.SessionStore` backing this session
        (``None`` for in-memory sessions)."""
        return self._store

    @property
    def degraded(self) -> bool:
        """True once a persistent disk error forced the journal read-only.

        A degraded session keeps serving reads and fingerprints; mutating
        operations raise :class:`~repro.session.journal.JournalDegraded`.
        """
        journal = self._journal
        return journal is not None and journal.degraded

    @property
    def degraded_error(self) -> Optional[OSError]:
        """The disk error that degraded the journal, if any."""
        journal = self._journal
        return journal.degraded_error if journal is not None else None

    def sync(self) -> None:
        """Force journaled entries to stable storage.

        Under ``fsync="never"`` appends sit in the process buffer until
        rotation or close; an explicit sync makes everything appended so
        far durable (and visible to concurrent readers) now.
        """
        if self._journal is not None:
            self._journal.sync()

    def close(self) -> None:
        """Detach from the engine and close the journal."""
        self._recording = False
        if self.context.recorder is self:
            self.context.recorder = None
        if self._journal is not None:
            self._journal.close()
            self._journal = None

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        where = self.directory
        if where is None and self._store is not None:
            where = self._store.location
        where = where or "memory"
        return (f"<Session {self.name!r} @ {where} seq={self._last_seq} "
                f"vars={len(self.vars)} constraints={len(self.constraints)}>")

    # -- engine hook (PropagationContext.recorder) --------------------------

    def record_assign(self, variable: Any, value: Any,
                      justification: Any) -> None:
        """Write-ahead capture of one external assignment.

        Called by the engine before the assignment mutates anything.
        Assignments to variables without a stable address are skipped
        (derived state re-derives on replay) and counted.
        """
        if not self._recording:
            return
        address = self.address_of(variable)
        if address is None:
            self.unjournaled_assigns += 1
            self._observe("session_op", "unjournaled-assign")
            return
        encoded = encode_value(value)
        just = encode_justification_name(justification)
        # A finite step budget shapes the outcome of the propagation round
        # this assign triggers, so replay must install the same budget —
        # journal it alongside the assignment.  Wall-time budgets are
        # liveness backstops, deliberately not replayed.
        budget = self.context.round_budget
        budget_steps: Optional[int] = None
        if budget is not None and budget.max_steps != _INF:
            budget_steps = int(budget.max_steps)
        journal = self._journal
        if journal is not None and budget_steps is None:
            # Hot path: scalar assigns dominate journal traffic, and the
            # generic dict-encode chain costs more than the propagation
            # round it rides on.
            kind = type(encoded)
            if kind is int:
                value_json: Optional[str] = repr(encoded)
            elif kind is str and _safe_str(encoded):
                value_json = '"' + encoded + '"'
            elif kind is float and encoded == encoded \
                    and encoded not in (_INF, -_INF):
                value_json = repr(encoded)
            else:
                value_json = None
            # Escape-free address/justification strings are memoized —
            # set membership is far cheaper than re-scanning per append
            # (set.add returns None, so `not add(...)` records and
            # passes in one expression).
            safe = self._safe_strings
            rid = self.pending_rid
            if value_json is not None \
                    and (rid is None or _safe_str(rid)) \
                    and (address in safe or (_safe_str(address)
                                             and not safe.add(address))) \
                    and (just in safe or (_safe_str(just)
                                          and not safe.add(just))):
                seq = journal.append_assign(address, value_json, just, rid)
                self._last_seq = seq
                self._observe("session_op", "assign")
                entry = {"op": "assign", "var": address,
                         "value": encoded, "just": just, "seq": seq}
                if rid is not None:
                    self.pending_rid = None
                    entry["rid"] = rid
                    self._note_rid(rid, entry)
                self._effective.append({
                    "entry": entry,
                    "inverse": {"value": variable.raw_value,
                                "just": variable.last_set_by}})
                self._redo.clear()
                return
        entry = {"op": "assign", "var": address,
                 "value": encoded, "just": just}
        if budget_steps is not None:
            entry["budget"] = budget_steps
        self._append(entry)
        self._effective.append({
            "entry": entry,
            "inverse": {"value": variable.raw_value,
                        "just": variable.last_set_by}})
        self._redo.clear()

    def record_batch(self, entries: List[Tuple[Any, Any, Any]]) -> None:
        """Write-ahead capture of one batched assignment round.

        Called by the engine with the *requested* (pre-coalesce) batch,
        before any mutation: replay re-coalesces deterministically, so
        stats and fingerprints match the live run.  Entries on variables
        without a stable address are skipped and counted, exactly as in
        :meth:`record_assign`.
        """
        if not self._recording:
            return
        items: List[Tuple[str, Any, str]] = []
        for variable, value, justification in entries:
            address = self.address_of(variable)
            if address is None:
                self.unjournaled_assigns += 1
                self._observe("session_op", "unjournaled-assign")
                continue
            items.append((address, encode_value(value),
                          encode_justification_name(justification)))
        if not items:
            return
        budget = self.context.round_budget
        budget_steps: Optional[int] = None
        if budget is not None and budget.max_steps != _INF:
            budget_steps = int(budget.max_steps)
        entry: Dict[str, Any] = {
            "op": "batch",
            "entries": [{"var": address, "value": encoded, "just": just}
                        for address, encoded, just in items]}
        journal = self._journal
        rid = self.pending_rid
        if journal is not None and budget_steps is None \
                and (rid is None or _safe_str(rid)):
            # Hot path: one fused, pre-serialized record for the whole
            # batch — same escape-free fast path as scalar assigns, one
            # frame instead of N.
            safe = self._safe_strings
            triples: Optional[List[Tuple[str, str, str]]] = []
            for address, encoded, just in items:
                kind = type(encoded)
                if kind is int:
                    value_json: Optional[str] = repr(encoded)
                elif kind is str and _safe_str(encoded):
                    value_json = '"' + encoded + '"'
                elif kind is float and encoded == encoded \
                        and encoded not in (_INF, -_INF):
                    value_json = repr(encoded)
                else:
                    value_json = None
                if value_json is None \
                        or not (address in safe
                                or (_safe_str(address)
                                    and not safe.add(address))) \
                        or not (just in safe or (_safe_str(just)
                                                 and not safe.add(just))):
                    triples = None
                    break
                triples.append((address, value_json, just))
            if triples is not None:
                seq = journal.append_batch(triples, rid)
                self._last_seq = seq
                self._observe("session_op", "batch")
                entry["seq"] = seq
                if rid is not None:
                    self.pending_rid = None
                    entry["rid"] = rid
                    self._note_rid(rid, entry)
                self._effective.append({"entry": entry, "inverse": None})
                self._redo.clear()
                return
        if budget_steps is not None:
            entry["budget"] = budget_steps
        self._append(entry)
        self._effective.append({"entry": entry, "inverse": None})
        self._redo.clear()

    # -- value operations ---------------------------------------------------

    def make_variable(self, name: str, value: Any = None,
                      justification: Any = None) -> Variable:
        """Create (and journal) a session-registered free variable."""
        check_name(name, "variable name")
        if name in self.vars:
            raise SessionError(f"session already has a variable {name!r}")
        entry = {"op": "make-var", "name": name,
                 "value": encode_value(value),
                 "just": (encode_justification_name(justification)
                          if justification is not None else None)}
        return self._run(entry)

    def assign(self, target: Any, value: Any,
               justification: Any = USER) -> bool:
        """External assignment through the session; returns validity.

        Journaling happens inside the engine's recorder hook, so this is
        exactly equivalent to calling ``variable.set`` directly.
        """
        variable = self._target_variable(target)
        return variable.set(value, justification)

    def assign_many(self, assignments: Any,
                    justification: Any = USER) -> bool:
        """Batched external assignment through the session: one round.

        ``assignments`` is an iterable of ``(target, value)`` pairs or
        ``(target, value, justification)`` triples; targets may be
        addresses or variables.  Journaling happens inside the engine's
        recorder hook as a single batch record, so this is exactly
        equivalent to calling
        :meth:`~repro.core.engine.PropagationContext.assign_many`.
        """
        resolved = []
        for item in assignments:
            if len(item) == 2:
                target, value = item
                resolved.append((self._target_variable(target), value,
                                 justification))
            else:
                target, value, just = item
                resolved.append((self._target_variable(target), value, just))
        return self.context.assign_many(resolved)

    def space(self) -> Any:
        """Open a speculative :class:`~repro.spaces.space.Space` over
        this session's context.

        Assignments inside the space never reach the journal; a
        ``commit()`` journals them as one ``{"op": "batch"}`` frame (the
        same frame :meth:`assign_many` writes), a ``discard()`` — or
        simply leaving the ``with`` block — restores the session
        byte-identically (fingerprint *and* journal position).
        Structural edits, undo/redo and checkpoints are refused while a
        space is open.
        """
        if self.read_only:
            raise SessionError("read-only session cannot open a space")
        from ..spaces.space import Space
        return Space(self.context, session=self)

    def retract(self, target: Any) -> None:
        """Withdraw a value: dependency-directed erasure plus re-derivation.

        The variable and everything depending on it are erased (section
        4.2.5), then every constraint that lost a value re-asserts its
        remaining arguments so values derivable from other sources
        return.
        """
        variable = self._target_variable(target)
        address = self.address_of(variable)
        if address is None:
            raise SessionError(f"cannot retract unaddressable variable "
                               f"{variable!r}")
        entry = {"op": "retract", "var": address}
        self._run(entry)

    def get(self, target: Any) -> Tuple[Any, Any]:
        """``(value, justification)`` of an addressed variable."""
        variable = self._target_variable(target)
        return variable.raw_value, variable.last_set_by

    # -- constraint operations ----------------------------------------------

    def add_constraint(self, type_name: str, targets: List[Any],
                       params: Optional[Dict[str, Any]] = None,
                       cid: Optional[str] = None) -> str:
        """Instantiate a journalable constraint kind; returns its id."""
        if type_name not in CONSTRAINT_TYPES:
            raise SessionError(
                f"unknown constraint type {type_name!r}; have "
                f"{sorted(CONSTRAINT_TYPES)}")
        addresses = []
        for target in targets:
            variable = self._target_variable(target)
            address = self.address_of(variable)
            if address is None:
                raise SessionError(f"constraint argument {variable!r} has "
                                   f"no stable address")
            addresses.append(address)
        if cid is None:
            cid = f"c{self._next_cid}"
        check_name(cid, "constraint id")
        if cid in self.constraints:
            raise SessionError(f"constraint id {cid!r} already in use")
        entry = {"op": "add-constraint", "cid": cid, "type": type_name,
                 "args": addresses,
                 "params": {key: encode_value(val)
                            for key, val in (params or {}).items()}}
        self._run(entry)
        return cid

    def remove_constraint(self, cid: str) -> None:
        """Remove a session constraint with dependency-directed erasure."""
        if cid not in self.constraints:
            raise SessionError(f"no constraint {cid!r}; have "
                               f"{sorted(self.constraints)}")
        self._run({"op": "remove-constraint", "cid": cid})

    def constraint(self, cid: str) -> Any:
        try:
            return self.constraints[cid]
        except KeyError:
            raise SessionError(f"no constraint {cid!r}") from None

    # -- structural (cell) operations ---------------------------------------

    def define_cell(self, name: str, superclass: Optional[str] = None,
                    generic: bool = False) -> Any:
        check_name(name, "cell name")
        if name in self.library:
            raise SessionError(f"library already has a cell {name!r}")
        if superclass is not None:
            self._cell(superclass)
        return self._run({"op": "define-cell", "name": name,
                          "super": superclass, "generic": bool(generic)})

    def define_signal(self, cell: str, name: str, direction: str = "in",
                      **attrs: Any) -> Any:
        check_name(name, "signal name")
        if name in self._cell(cell).signals:
            raise SessionError(f"cell {cell!r} already has signal {name!r}")
        return self._run({"op": "define-signal", "cell": cell, "name": name,
                          "direction": direction,
                          "attrs": {key: encode_value(val)
                                    for key, val in attrs.items()}})

    def declare_delay(self, cell: str, source: str, dest: str,
                      estimate: Optional[float] = None) -> Any:
        target = self._cell(cell)
        for end in (source, dest):
            if end not in target.signals:
                raise SessionError(f"cell {cell!r} has no signal {end!r}")
        return self._run({"op": "declare-delay", "cell": cell,
                          "source": source, "dest": dest,
                          "estimate": estimate})

    def add_parameter(self, cell: str, name: str, *, low: Any = None,
                      high: Any = None, choices: Any = None,
                      default: Any = None) -> Any:
        check_name(name, "parameter name")
        if name in self._cell(cell).parameters:
            raise SessionError(f"cell {cell!r} already has parameter "
                               f"{name!r}")
        return self._run({"op": "add-parameter", "cell": cell, "name": name,
                          "low": encode_value(low),
                          "high": encode_value(high),
                          "choices": encode_value(choices),
                          "default": encode_value(default)})

    def instantiate(self, parent: str, child: str, name: str,
                    orientation: str = "R0",
                    offset: Tuple[float, float] = (0, 0)) -> Any:
        check_name(name, "instance name")
        self._cell(child)
        if any(sub.name == name for sub in self._cell(parent).subcells):
            raise SessionError(f"cell {parent!r} already has subcell "
                               f"{name!r}")
        return self._run({"op": "instantiate", "parent": parent,
                          "child": child, "name": name,
                          "orientation": orientation,
                          "offset": [offset[0], offset[1]]})

    def add_net(self, cell: str, name: str) -> Any:
        check_name(name, "net name")
        if name in self._cell(cell).nets:
            raise SessionError(f"cell {cell!r} already has net {name!r}")
        return self._run({"op": "add-net", "cell": cell, "name": name})

    def connect(self, cell: str, net: str, signal: str,
                instance: Optional[str] = None) -> bool:
        """Connect an instance signal (or a cell io-signal) to a net."""
        target = self._cell(cell)
        if net not in target.nets:
            raise SessionError(f"cell {cell!r} has no net {net!r}")
        if instance is not None:
            if not any(sub.name == instance for sub in target.subcells):
                raise SessionError(f"cell {cell!r} has no subcell "
                                   f"{instance!r}")
        elif signal not in target.signals:
            raise SessionError(f"cell {cell!r} has no signal {signal!r}")
        return self._run({"op": "connect", "cell": cell, "net": net,
                          "signal": signal, "instance": instance})

    # -- undo / redo --------------------------------------------------------

    def can_undo(self) -> bool:
        return bool(self._effective)

    def can_redo(self) -> bool:
        return bool(self._redo)

    def undo(self) -> bool:
        """Rewind the last effective mutation; False when at a boundary.

        Value mutations (assign/retract) undo by dependency-directed
        erasure and re-derivation; structural mutations rebuild from the
        last checkpoint state plus the remaining effective prefix.  The
        undo window reaches back to the most recent checkpoint.
        """
        self._check_no_open_space("undo")
        if not self._effective:
            return False
        self._append({"op": "undo"})
        self._apply_undo()
        return True

    def redo(self) -> bool:
        """Re-apply the most recently undone mutation."""
        self._check_no_open_space("redo")
        if not self._redo:
            return False
        self._append({"op": "redo"})
        self._apply_redo()
        return True

    # -- checkpoint / recovery ----------------------------------------------

    def checkpoint(self) -> Optional[str]:
        """Snapshot the session state; returns the checkpoint path.

        The snapshot composes the :mod:`repro.stem.persistence` library
        encoding with the session's variable/constraint registries and
        the journal position.  Journal segments wholly covered by the
        snapshot are pruned.  Clears the undo/redo window (a checkpoint
        is a save point).
        """
        if self.read_only:
            raise SessionError("read-only session cannot checkpoint")
        self._check_no_open_space("checkpoint")
        t0 = perf_counter()
        self._append({"op": "checkpoint"})
        self._apply_checkpoint_marker()
        path = None
        if self._store is not None:
            from ..store import base as _storebase
            path = self._store.publish_checkpoint(
                self._base_state["seq"],
                _storebase.encode_checkpoint(self._base_state))
            if self._journal is not None:
                self._journal.prune(self._last_seq)
            _storebase.prune_checkpoints(self._store, self.keep_checkpoints)
        self._observe("session_checkpoint", perf_counter() - t0)
        return path

    # -- inspection ---------------------------------------------------------

    def address_of(self, variable: Any) -> Optional[str]:
        """Stable address of a variable, or ``None`` for anonymous ones."""
        index = self._addr_index
        if index is None:
            index = self._addr_index = build_address_index(self.library,
                                                           self.vars)
        return index.get(id(variable))

    def addressed_variables(self) -> Iterator[Tuple[str, Any]]:
        """``(address, variable)`` pairs in deterministic order."""
        for cell in self.library:
            for var_name, variable in cell.variables.items():
                yield f"c:{cell.name}:{var_name}", variable
            for instance in cell.subcells:
                for var_name, variable in instance.variables.items():
                    yield (f"i:{cell.name}:{instance.name}:{var_name}",
                           variable)
        for var_name in sorted(self.vars):
            yield f"v:{var_name}", self.vars[var_name]

    def fingerprint(self, *, include_stats: bool = True) -> Dict[str, Any]:
        """Canonical digest of session state, for replay verification.

        Two runs are equivalent when their fingerprints are equal: every
        addressed variable's value and justification, the violation log,
        and (optionally) the engine's propagation counters.
        """
        variables: Dict[str, Any] = {}
        for address, variable in self.addressed_variables():
            variables[address] = {
                "value": _fingerprint_value(variable.raw_value),
                "just": self._fingerprint_justification(
                    variable.last_set_by),
            }
        digest: Dict[str, Any] = {
            "variables": variables,
            "violations": list(self.violations),
            "position": self._last_seq,
        }
        if include_stats:
            digest["stats"] = self.context.stats.snapshot()
        return digest

    # -- internals: journaling ----------------------------------------------

    def _append(self, op: Dict[str, Any]) -> int:
        rid = self.pending_rid
        if rid is not None:
            self.pending_rid = None
            op["rid"] = rid
        if self._journal is not None:
            seq = self._journal.append(op)
        else:
            seq = self._last_seq + 1
        self._last_seq = seq
        if rid is not None:
            self._note_rid(rid, op)
        self._observe("session_op", op["op"])
        return seq

    def _note_rid(self, rid: str, entry: Dict[str, Any]) -> None:
        """Remember a journaled request id (bounded, insertion-ordered).

        The rid rides inside the journal entry, so this cache is rebuilt
        during recovery replay — a retried mutation is recognized even
        after a ``kill -9`` of the process that first applied it.
        """
        cache = self._applied_rids
        cache[rid] = entry
        if len(cache) > _RID_JOURNAL_CACHE:
            cache.popitem(last=False)

    def rid_entry(self, rid: str) -> Optional[Dict[str, Any]]:
        """The journal entry a request id produced, if remembered."""
        return self._applied_rids.get(rid)

    def _run(self, entry: Dict[str, Any]) -> Any:
        """Journal an operation (write-ahead), then apply it."""
        self._check_no_open_space(entry["op"])
        self._append(entry)
        return self._apply_mutation(entry)

    def _check_no_open_space(self, what: str) -> None:
        """Structural and history operations are not speculative: a
        space only overlays *values*, so refusing them while a space is
        open is what keeps discard() trace-free."""
        if self._space_depth:
            raise SessionError(
                f"cannot {what} while a computation space is open; "
                f"commit or discard the space first")

    @contextmanager
    def _applying(self) -> Iterator[None]:
        previous = self._recording
        self._recording = False
        try:
            yield
        finally:
            self._recording = previous

    # -- internals: entry application ---------------------------------------

    def _apply_entry(self, entry: Dict[str, Any]) -> None:
        """Apply one journal entry during recovery replay."""
        op = entry["op"]
        if op == "undo":
            self._apply_undo()
        elif op == "redo":
            self._apply_redo()
        elif op == "checkpoint":
            self._apply_checkpoint_marker()
        else:
            self._apply_mutation(entry)

    def _apply_mutation(self, entry: Dict[str, Any],
                        clear_redo: bool = True) -> Any:
        handler = _APPLY[entry["op"]]
        with self._applying():
            result, inverse = handler(self, entry)
        self._effective.append({"entry": entry, "inverse": inverse})
        if clear_redo:
            self._redo.clear()
        return result

    def _apply_undo(self) -> None:
        # Undo rewinds through erasure/re-derivation rounds (or a full
        # rebuild) that a cached propagation plan has no trace for: force
        # re-tracing by advancing the topology epoch first.
        self.context.bump_topology_epoch()
        applied = self._effective.pop()
        self._redo.append(applied)
        entry = applied["entry"]
        inverse = applied.get("inverse")
        if entry["op"] in ("assign", "retract") and inverse is not None:
            with self._applying():
                if self._fast_undo(entry, inverse):
                    return
        self._rebuild()

    def _apply_redo(self) -> None:
        self.context.bump_topology_epoch()
        applied = self._redo.pop()
        self._apply_mutation(applied["entry"], clear_redo=False)

    def _apply_checkpoint_marker(self) -> None:
        self._base_state = self._snapshot_state()
        self._effective = []
        self._redo = []

    # -- internals: undo machinery ------------------------------------------

    def _fast_undo(self, entry: Dict[str, Any],
                   inverse: Dict[str, Any]) -> bool:
        """Dependency-directed rewind of one value mutation.

        Erase the mutated variable and everything propagated from it,
        restore the recorded prior value, and let every constraint that
        lost a value re-assert its remaining sources.  Returns False
        (caller falls back to a full rebuild) when any re-derivation
        round reports a violation.
        """
        try:
            variable = self._resolve(entry["var"])
        except UnknownAddress:
            return False
        erased = self._ordered_consequences(variable)
        constraints = _ordered_constraints([variable] + erased)
        for consequence in erased:
            consequence.reset()
        variable.reset()
        ok = True
        prev_value, prev_just = inverse["value"], inverse["just"]
        if prev_value is not None and prev_just is not None \
                and not is_propagated(prev_just):
            ok = self.context.assign(variable, prev_value, prev_just)
        for constraint in constraints:
            if not self.context.repropagate_constraint(constraint):
                ok = False
        return ok

    def _ordered_consequences(self, variable: Any) -> List[Any]:
        """Propagated consequences of ``variable`` in deterministic
        depth-first network order (never hash order — replay equality
        depends on it)."""
        seen = {id(variable)}
        ordered: List[Any] = []

        def walk(source: Any) -> None:
            for constraint in source.constraints:
                for argument in constraint.arguments:
                    if id(argument) in seen or argument is source:
                        continue
                    if not argument.is_dependent():
                        continue
                    justification = argument.last_set_by
                    if justification.constraint is not constraint:
                        continue
                    if not constraint.test_membership_of(
                            source, justification.dependency_record):
                        continue
                    seen.add(id(argument))
                    ordered.append(argument)
                    walk(argument)

        walk(variable)
        return ordered

    def _do_retract(self, variable: Any) -> None:
        erased = self._ordered_consequences(variable)
        constraints = _ordered_constraints([variable] + erased)
        for consequence in erased:
            consequence.reset()
        variable.reset()
        for constraint in constraints:
            self.context.repropagate_constraint(constraint)

    def _rebuild(self) -> None:
        """Full restore: reload the base snapshot, replay the effective
        prefix.  The fallback for structural undo (section 4.2.5's
        erasure covers values, not network surgery)."""
        violations = list(self.violations)
        effective = list(self._effective)
        redo = self._redo
        self._install_state(self._base_state)
        self._effective = []
        for applied in effective:
            self._apply_mutation(applied["entry"], clear_redo=False)
        self.violations = violations
        self._redo = redo
        self._observe("session_op", "rebuild")

    # -- internals: snapshot / restore --------------------------------------

    def _snapshot_state(self) -> Dict[str, Any]:
        from ..stem import persistence

        variables = []
        for name in sorted(self.vars):
            variable = self.vars[name]
            variables.append({
                "name": name,
                "value": _snapshot_value(variable.raw_value),
                "just": self._snapshot_external_justification(
                    variable.last_set_by),
            })
        propagated = []
        for address, variable in self.addressed_variables():
            justification = variable.last_set_by
            if not is_propagated(justification):
                continue
            cid = self._cid_of(justification.constraint)
            if cid is None:
                continue  # library-internal source: re-derives on demand
            record = justification.dependency_record
            dep = (self.address_of(record)
                   if isinstance(record, Variable) else None)
            propagated.append({"var": address, "cid": cid, "dep": dep})
        return {
            "schema": STATE_SCHEMA,
            "seq": self._last_seq,
            "name": self.name,
            "next_cid": self._next_cid,
            "library": persistence.serialize_library(self.library),
            "vars": variables,
            "constraints": [dict(self._constraint_meta[cid])
                            for cid in self._constraint_meta],
            "propagated": propagated,
            "violations": list(self.violations),
            "stats": self.context.stats.snapshot(),
        }

    def _install_state(self, state: Dict[str, Any]) -> None:
        from ..stem import persistence

        if state.get("schema") != STATE_SCHEMA:
            raise SessionError(f"unsupported checkpoint schema "
                               f"{state.get('schema')!r}")
        previous = self.context
        inner = getattr(previous.handler, "inner", None) or WarningHandler()
        context = PropagationContext()
        context.handler = _ViolationLogHandler(self, inner)
        context.recorder = self
        # Instruments survive a rebuild (their Observer object still
        # points at the old context for uninstall; see docs/sessions.md).
        context.observer = previous.observer
        context.tracer = previous.tracer
        context.round_budget = previous.round_budget
        plan_cache = getattr(previous, "plan_cache", None)
        if plan_cache is not None:
            # Checkpoint restore / rebuild: the new context holds a fresh
            # object graph, so every cached plan is stale.  Rebinding
            # drops them and re-installs the cache on the new context.
            plan_cache.rebind(context)
        islands = getattr(previous, "islands", None)
        if islands is not None:
            # Same story for the island partition: the rebuilt network is
            # new objects, so the partition restarts empty and re-grows as
            # load_library relinks constraints.  The executor carries over.
            islands.rebind(context)
            context.island_executor = previous.island_executor
        if previous.recorder is self:
            previous.recorder = None
        self.context = context
        self.vars = {}
        self.constraints = {}
        self._constraint_meta = {}
        self._next_cid = state.get("next_cid", 1)
        self.violations = list(state.get("violations", []))
        # Stats continue from the snapshot's counters: a live session
        # keeps counting across a checkpoint, so recovery (and rebuild)
        # must too for replayed fingerprints to match live ones.
        for key, value in state.get("stats", {}).items():
            if hasattr(context.stats, key):
                setattr(context.stats, key, value)
        with context.propagation_disabled():
            self.library = persistence.load_library(state["library"],
                                                    context=context)
            for spec in state.get("vars", []):
                variable = Variable(None, name=spec["name"], context=context)
                self.vars[spec["name"]] = variable
            self._addr_index = None
            for meta in state.get("constraints", []):
                _apply_add_constraint(self, meta)
                self._effective.clear()  # not a journaled mutation
            for spec in state.get("vars", []):
                justification = spec.get("just")
                self.vars[spec["name"]]._store(
                    decode_value(spec["value"]),
                    decode_justification_name(justification)
                    if justification else None)
            for spec in state.get("propagated", []):
                constraint = self.constraints.get(spec["cid"])
                if constraint is None:
                    continue
                try:
                    variable = self._resolve(spec["var"])
                    dep = (self._resolve(spec["dep"])
                           if spec.get("dep") else None)
                except UnknownAddress:
                    continue
                variable._store(variable.raw_value,
                                PropagatedJustification(constraint, dep))
        self._addr_index = None

    # -- internals: helpers -------------------------------------------------

    def _target_variable(self, target: Any) -> Any:
        if isinstance(target, str):
            return self._resolve(target)
        return target

    def _resolve(self, address: str) -> Any:
        return resolve_address(address, self.library, self.vars)

    def _cell(self, name: str) -> Any:
        try:
            return self.library.cell(name)
        except KeyError:
            raise SessionError(f"no cell {name!r} in session library") \
                from None

    def _cid_of(self, constraint: Any) -> Optional[str]:
        for cid, candidate in self.constraints.items():
            if candidate is constraint:
                return cid
        return None

    def _note_cid(self, cid: str) -> None:
        if cid.startswith("c") and cid[1:].isdigit():
            self._next_cid = max(self._next_cid, int(cid[1:]) + 1)

    def _note_violation(self, record: Any) -> None:
        variable = getattr(record, "variable", None)
        constraint = getattr(record, "constraint", None)
        self.violations.append({
            "variable": (variable.qualified_name()
                         if variable is not None else None),
            "constraint": (self._cid_of(constraint)
                           or (type(constraint).__name__
                               if constraint is not None else None)),
            "reason": getattr(record, "reason", ""),
            "kind": getattr(record, "kind", "violation"),
        })
        self._observe("session_op", "violation")

    def _fingerprint_justification(self, justification: Any) -> Optional[str]:
        if justification is None:
            return None
        if is_propagated(justification):
            cid = self._cid_of(justification.constraint)
            return (f"propagated:{cid}" if cid is not None else
                    f"propagated:{type(justification.constraint).__name__}")
        return f"#{justification.name}"

    def _snapshot_external_justification(self,
                                         justification: Any) -> Optional[str]:
        if justification is None:
            return None
        if is_propagated(justification):
            # Rebuilt precisely by the snapshot's "propagated" section
            # when the source is session-registered; the persistence
            # fallback otherwise (values re-derive).
            return "APPLICATION"
        return justification.name

    def _observe(self, hook_name: str, *args: Any) -> None:
        observer = self.context.observer
        if observer is not None:
            hook = getattr(observer, hook_name, None)
            if hook is not None:
                hook(*args)


# ---------------------------------------------------------------------------
# Mutation appliers — (session, entry) -> (result, inverse-info)
# ---------------------------------------------------------------------------

def _apply_assign(session: Session,
                  entry: Dict[str, Any]) -> Tuple[Any, Dict[str, Any]]:
    variable = session._resolve(entry["var"])
    inverse = {"value": variable.raw_value, "just": variable.last_set_by}
    budget_steps = entry.get("budget")
    if budget_steps is not None:
        # The live assign ran under a step budget; replay must too, so a
        # budget-aborted round aborts identically and fingerprints match.
        context = session.context
        saved = context.round_budget
        context.round_budget = RoundBudget(max_steps=budget_steps)
        try:
            ok = variable.set(decode_value(entry["value"]),
                              decode_justification_name(entry["just"]))
        finally:
            context.round_budget = saved
    else:
        ok = variable.set(decode_value(entry["value"]),
                          decode_justification_name(entry["just"]))
    return ok, inverse


def _apply_batch(session: Session,
                 entry: Dict[str, Any]) -> Tuple[Any, None]:
    context = session.context
    assignments = []
    for spec in entry["entries"]:
        assignments.append((session._resolve(spec["var"]),
                            decode_value(spec["value"]),
                            decode_justification_name(spec["just"])))
    budget_steps = entry.get("budget")
    if budget_steps is not None:
        saved = context.round_budget
        context.round_budget = RoundBudget(max_steps=budget_steps)
        try:
            ok = context.assign_many(assignments)
        finally:
            context.round_budget = saved
    else:
        ok = context.assign_many(assignments)
    # Batch undo always rebuilds (no per-variable fast inverse), so no
    # inverse info is recorded.
    return ok, None


def _apply_retract(session: Session,
                   entry: Dict[str, Any]) -> Tuple[Any, Dict[str, Any]]:
    variable = session._resolve(entry["var"])
    inverse = {"value": variable.raw_value, "just": variable.last_set_by}
    session._do_retract(variable)
    return None, inverse


def _apply_make_var(session: Session,
                    entry: Dict[str, Any]) -> Tuple[Any, None]:
    name = entry["name"]
    if name in session.vars:
        raise SessionError(f"session already has a variable {name!r}")
    justification = entry.get("just")
    variable = Variable(decode_value(entry["value"]), name=name,
                        context=session.context,
                        justification=decode_justification_name(justification)
                        if justification else None)
    session.vars[name] = variable
    session._addr_index = None
    return variable, None


def _apply_add_constraint(session: Session,
                          entry: Dict[str, Any]) -> Tuple[Any, None]:
    factory = CONSTRAINT_TYPES[entry["type"]]
    variables = [session._resolve(address) for address in entry["args"]]
    params = {key: decode_value(val)
              for key, val in entry.get("params", {}).items()}
    constraint = factory(variables, params)
    cid = entry["cid"]
    session.constraints[cid] = constraint
    session._constraint_meta[cid] = {
        "cid": cid, "type": entry["type"], "args": list(entry["args"]),
        "params": dict(entry.get("params", {})), "op": "add-constraint"}
    session._note_cid(cid)
    return constraint, None


def _apply_remove_constraint(session: Session,
                             entry: Dict[str, Any]) -> Tuple[Any, Any]:
    cid = entry["cid"]
    constraint = session.constraints.pop(cid, None)
    meta = session._constraint_meta.pop(cid, None)
    if constraint is not None:
        constraint.remove()
    return None, {"meta": meta}


def _apply_define_cell(session: Session,
                       entry: Dict[str, Any]) -> Tuple[Any, None]:
    superclass = (session.library.cell(entry["super"])
                  if entry.get("super") else None)
    cell = session.library.define(entry["name"], superclass,
                                  is_generic=bool(entry.get("generic")))
    session._addr_index = None
    return cell, None


def _apply_define_signal(session: Session,
                         entry: Dict[str, Any]) -> Tuple[Any, None]:
    cell = session.library.cell(entry["cell"])
    attrs = {key: decode_value(val)
             for key, val in entry.get("attrs", {}).items()}
    signal = cell.define_signal(entry["name"],
                                entry.get("direction", "in"), **attrs)
    session._addr_index = None
    return signal, None


def _apply_declare_delay(session: Session,
                         entry: Dict[str, Any]) -> Tuple[Any, None]:
    cell = session.library.cell(entry["cell"])
    delay = cell.declare_delay(entry["source"], entry["dest"],
                               estimate=entry.get("estimate"))
    session._addr_index = None
    return delay, None


def _apply_add_parameter(session: Session,
                         entry: Dict[str, Any]) -> Tuple[Any, None]:
    cell = session.library.cell(entry["cell"])
    parameter = cell.add_parameter(entry["name"],
                                   low=decode_value(entry.get("low")),
                                   high=decode_value(entry.get("high")),
                                   choices=decode_value(entry.get("choices")),
                                   default=decode_value(entry.get("default")))
    session._addr_index = None
    return parameter, None


def _apply_instantiate(session: Session,
                       entry: Dict[str, Any]) -> Tuple[Any, None]:
    from ..stem.geometry import Point, Transform

    parent = session.library.cell(entry["parent"])
    child = session.library.cell(entry["child"])
    offset = entry.get("offset", [0, 0])
    instance = child.instantiate(parent, entry["name"],
                                 Transform(entry.get("orientation", "R0"),
                                           Point(offset[0], offset[1])))
    session._addr_index = None
    return instance, None


def _apply_add_net(session: Session,
                   entry: Dict[str, Any]) -> Tuple[Any, None]:
    cell = session.library.cell(entry["cell"])
    net = cell.add_net(entry["name"])
    session._addr_index = None
    return net, None


def _apply_connect(session: Session,
                   entry: Dict[str, Any]) -> Tuple[Any, None]:
    cell = session.library.cell(entry["cell"])
    net = cell.net(entry["net"])
    if entry.get("instance"):
        instance = None
        for candidate in cell.subcells:
            if candidate.name == entry["instance"]:
                instance = candidate
                break
        if instance is None:
            raise SessionError(f"cell {cell.name!r} has no subcell "
                               f"{entry['instance']!r}")
        ok = net.connect(instance, entry["signal"])
    else:
        ok = net.connect_io(entry["signal"])
    session._addr_index = None
    return ok, None


_APPLY: Dict[str, Callable[..., Tuple[Any, Any]]] = {
    "assign": _apply_assign,
    "batch": _apply_batch,
    "retract": _apply_retract,
    "make-var": _apply_make_var,
    "add-constraint": _apply_add_constraint,
    "remove-constraint": _apply_remove_constraint,
    "define-cell": _apply_define_cell,
    "define-signal": _apply_define_signal,
    "declare-delay": _apply_declare_delay,
    "add-parameter": _apply_add_parameter,
    "instantiate": _apply_instantiate,
    "add-net": _apply_add_net,
    "connect": _apply_connect,
}


# ---------------------------------------------------------------------------
# Module helpers
# ---------------------------------------------------------------------------

def _fresh_library(name: str, context: PropagationContext) -> Any:
    from ..stem.library import CellLibrary
    return CellLibrary(f"{name}.lib", context=context)


def _ordered_constraints(variables: List[Any]) -> List[Any]:
    """Unique constraints of ``variables`` in deterministic discovery
    order (variable order, then each variable's constraint list)."""
    seen: set = set()
    ordered: List[Any] = []
    for variable in variables:
        for constraint in variable.constraints:
            if id(constraint) not in seen:
                seen.add(id(constraint))
                ordered.append(constraint)
    return ordered


def _snapshot_value(value: Any) -> Any:
    return encode_value(value)


def _fingerprint_value(value: Any) -> Any:
    try:
        return encode_value(value)
    except EncodingError:
        return {"__repr__": repr(value)}


def _checkpoint_path(directory: str, seq: int) -> str:
    return os.path.join(directory,
                        f"{CHECKPOINT_PREFIX}{seq:010d}{CHECKPOINT_SUFFIX}")


def _checkpoint_seq(name: str) -> Optional[int]:
    if not (name.startswith(CHECKPOINT_PREFIX)
            and name.endswith(CHECKPOINT_SUFFIX)):
        return None
    digits = name[len(CHECKPOINT_PREFIX):-len(CHECKPOINT_SUFFIX)]
    return int(digits) if digits.isdigit() else None


def _scan_checkpoints(directory: str) -> List[Tuple[int, str]]:
    found = []
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return found
    for name in names:
        seq = _checkpoint_seq(name)
        if seq is not None:
            found.append((seq, os.path.join(directory, name)))
    found.sort()
    return found


def _load_latest_checkpoint(directory: str) -> Optional[Dict[str, Any]]:
    """Newest checkpoint that parses and carries the expected schema;
    damaged candidates are skipped (an older checkpoint plus a longer
    journal replay still recovers)."""
    for seq, path in reversed(_scan_checkpoints(directory)):
        try:
            with open(path) as handle:
                state = json.load(handle)
        except (OSError, ValueError):
            continue
        if isinstance(state, dict) and state.get("schema") == STATE_SCHEMA \
                and isinstance(state.get("seq"), int):
            return state
    return None


def _write_checkpoint(directory: str, state: Dict[str, Any], *,
                      opener: FileOpener = DEFAULT_OPENER) -> str:
    """Atomic checkpoint write: temp file, fsync, rename, fsync dir.

    A failure before the rename leaves the previous checkpoint intact;
    the orphaned temp file is removed best-effort before re-raising.
    """
    path = _checkpoint_path(directory, state["seq"])
    temp = path + ".tmp"
    try:
        with opener(temp, "w") as handle:
            json.dump(state, handle, separators=(",", ":"), sort_keys=True)
            handle.flush()
            opener.fsync(handle)
        opener.replace(temp, path)
    except OSError:
        try:
            os.remove(temp)
        except OSError:
            pass
        raise
    opener.fsync_dir(directory)
    return path


def _prune_checkpoints(directory: str, keep: int, *,
                       opener: FileOpener = DEFAULT_OPENER) -> None:
    checkpoints = _scan_checkpoints(directory)
    for _seq, path in checkpoints[:-keep] if keep > 0 else checkpoints:
        try:
            opener.remove(path)
        except OSError:
            pass
