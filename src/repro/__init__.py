"""repro — Constraint Propagation in an Object-Oriented IC Design Environment.

A production-quality reproduction of Tai A. Ly's DAC 1988 system (from the
M.Sc. thesis "Managing Design Interactions with Constraint Propagation in
an Object-Oriented IC Design Environment", University of Alberta): an
object-oriented, hierarchical constraint-propagation framework embedded in
a STEM-like integrated IC design environment, supporting least-commitment
design through consistency maintenance, incremental design checking, and
module validation.

Subpackages
-----------
``repro.core``
    The constraint propagation kernel (chapter 4).
``repro.stem``
    The design-environment substrate: cells, dual variables, signals,
    nets, geometry, compilers (chapters 3 and 5).
``repro.consistency``
    Property variables, calculated views, MVC tool integration (chapter 6).
``repro.spice``
    Netlist extraction and an internal circuit simulator standing in for
    the external SPICE process (section 6.4.2).
``repro.checking``
    Incremental design checking: signal types, bounding boxes, delays
    (chapter 7).
``repro.selection``
    Generic cells and module validation by generate-and-test (chapter 8).
``repro.obs``
    Observability: metrics registry, span timing with Chrome-trace
    export, hot-constraint profiler, benchmark reporting.
"""

import importlib

from . import core
from .core import (
    APPLICATION,
    USER,
    Constraint,
    ConstraintEditor,
    ConstraintViolationError,
    EqualityConstraint,
    PropagationContext,
    UniAdditionConstraint,
    UniMaximumConstraint,
    UpdateConstraint,
    UpperBoundConstraint,
    Variable,
    default_context,
)

__version__ = "1.0.0"

#: Subpackages exposed lazily — `import repro` stays light; `repro.stem`
#: and friends materialize on first attribute access.
_SUBPACKAGES = ("stem", "consistency", "spice", "checking", "selection",
                "cli", "obs", "session")

__all__ = [
    "APPLICATION", "USER", "Constraint", "ConstraintEditor",
    "ConstraintViolationError", "EqualityConstraint", "PropagationContext",
    "UniAdditionConstraint", "UniMaximumConstraint", "UpdateConstraint",
    "UpperBoundConstraint", "Variable", "core", "default_context",
    "__version__", *_SUBPACKAGES,
]


def __getattr__(name):
    if name in _SUBPACKAGES:
        module = importlib.import_module(f".{name}", __name__)
        globals()[name] = module
        return module
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
