"""Ranked module selection (thesis section 9.3, final suggestion).

Chapter 8's selector only *validates*: "while constraint propagation
validates that the characteristics of a cell satisfy the design
constraints, it cannot measure how well these constraints are
satisfied."  This extension differentiates the relative merits of valid
realizations with a weighted scoring of their characteristics.

Scoring is slack-normalised: for each property kind the candidate's raw
figure (adjusted delay, placed area) is normalised across the candidate
set to [0, 1] (0 = best), then combined with user weights.  Ties and
missing characteristics degrade gracefully (missing = neutral 0.5).
"""

from __future__ import annotations

from typing import Any, Dict, List, NamedTuple, Optional, Sequence

from ..stem.cell import CellClass, CellInstance
from .selector import DEFAULT_PRIORITIES, ModuleSelector


class CandidateScore(NamedTuple):
    """One ranked candidate: total score (lower is better) and raw metrics."""

    cell: CellClass
    score: float
    metrics: Dict[str, Optional[float]]


class RankedSelector:
    """Module selection that orders valid realizations by merit.

    Parameters
    ----------
    weights:
        Relative importance of each metric; keys are ``"delay"`` and
        ``"area"``.  Defaults to equal weighting.
    priorities, prune:
        Passed through to the underlying validity
        :class:`~repro.selection.selector.ModuleSelector`.
    """

    def __init__(self, weights: Optional[Dict[str, float]] = None,
                 priorities: Sequence[str] = DEFAULT_PRIORITIES,
                 prune: bool = True) -> None:
        self.weights = dict(weights or {"delay": 1.0, "area": 1.0})
        unknown = set(self.weights) - {"delay", "area"}
        if unknown:
            raise ValueError(f"unknown ranking metrics: {sorted(unknown)}")
        self.validator = ModuleSelector(priorities, prune)

    # -- metrics --------------------------------------------------------------

    def candidate_metrics(self, candidate: CellClass,
                          instance: CellInstance
                          ) -> Dict[str, Optional[float]]:
        """Raw merit figures of one candidate in the instance's context."""
        metrics: Dict[str, Optional[float]] = {"delay": None, "area": None}
        worst_delay: Optional[float] = None
        for key, instance_delay in instance.delays.items():
            class_delay = candidate.delays.get(key)
            if class_delay is None or class_delay.value is None:
                continue
            adjusted = class_delay.value + instance_delay.loading_penalty()
            if worst_delay is None or adjusted > worst_delay:
                worst_delay = adjusted
        metrics["delay"] = worst_delay
        box = candidate.bounding_box()
        if box is not None:
            metrics["area"] = box.area
        return metrics

    # -- ranking ---------------------------------------------------------------

    def rank(self, instance: CellInstance) -> List[CandidateScore]:
        """Valid realizations ordered best-first."""
        candidates = self.validator.select_realizations_for(instance)
        return self.rank_candidates(instance, candidates)

    def rank_candidates(self, instance: CellInstance,
                        candidates: Sequence[CellClass]
                        ) -> List[CandidateScore]:
        """Rank an already-validated candidate list (e.g. the survivors
        of a parallel space search) without re-running validation."""
        if not candidates:
            return []
        metric_table = {cell: self.candidate_metrics(cell, instance)
                        for cell in candidates}
        scored: List[CandidateScore] = []
        for cell in candidates:
            score = 0.0
            total_weight = sum(self.weights.values()) or 1.0
            for metric, weight in self.weights.items():
                score += weight * self._normalised(metric, cell, metric_table)
            scored.append(CandidateScore(cell, score / total_weight,
                                         metric_table[cell]))
        scored.sort(key=lambda entry: (entry.score, entry.cell.name))
        return scored

    def best(self, instance: CellInstance) -> Optional[CellClass]:
        ranking = self.rank(instance)
        return ranking[0].cell if ranking else None

    @staticmethod
    def _normalised(metric: str, cell: CellClass,
                    table: Dict[CellClass, Dict[str, Optional[float]]]
                    ) -> float:
        values = [entry[metric] for entry in table.values()
                  if entry[metric] is not None]
        own = table[cell][metric]
        if own is None or not values:
            return 0.5  # unknown: neutral
        low, high = min(values), max(values)
        if high == low:
            return 0.0
        return (own - low) / (high - low)
