"""Module validation and selection (thesis chapter 8).

Generic cells stand in for undecided implementations during
least-commitment design.  *Module selection* finds, for a generic cell
instance embedded in a larger design, every descendant cell class whose
characteristics can replace the generic's without violating constraints.

The algorithm is generate-and-test (Fig. 8.3): a depth-first traversal of
the class hierarchy rooted at the generic class, testing candidates by
*tentatively propagating* their characteristic values into the generic
instance's variables (``can_be_set_to``, Fig. 8.2) — so validity depends
on every constraint in the instance's surrounding context.

Two efficiency techniques (section 8.2):

* **selective testing** — the user orders (a subset of) the property
  kinds ``bBox``/``signals``/``delays`` most-constrained first; cheaper
  and more decisive tests run first and short-circuit failures;
* **tree pruning** — generic intermediate classes carry the *ideal*
  (best-case) characteristics of their descendants; when a generic node
  fails, its whole subtree is skipped.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from ..stem.cell import CellClass, CellInstance

#: Property kinds in the default testing order.
DEFAULT_PRIORITIES: Tuple[str, ...] = ("bBox", "signals", "delays")


class SelectionStats:
    """Counters for the efficiency experiments (E15)."""

    def __init__(self) -> None:
        self.candidates_tested = 0
        self.property_tests = 0
        self.pruned_subtrees = 0

    def __repr__(self) -> str:
        return (f"SelectionStats(tested={self.candidates_tested}, "
                f"property_tests={self.property_tests}, "
                f"pruned={self.pruned_subtrees})")


class ModuleSelector:
    """Generate-and-test module selection for a generic cell instance.

    Parameters
    ----------
    priorities:
        Ordered property kinds to test (selective testing); e.g.
        ``("bBox", "delays")`` when signal compatibility is guaranteed.
    prune:
        Test generic intermediate classes and cut their subtrees on
        failure (section 8.2).  Disable only to measure the benefit.
    """

    def __init__(self, priorities: Sequence[str] = DEFAULT_PRIORITIES,
                 prune: bool = True) -> None:
        unknown = set(priorities) - {"bBox", "signals", "delays"}
        if unknown:
            raise ValueError(f"unknown property kinds: {sorted(unknown)}")
        self.priorities = tuple(priorities)
        self.prune = prune
        self.stats = SelectionStats()

    # -- entry point -----------------------------------------------------------

    def select_realizations_for(self, instance: CellInstance) -> List[CellClass]:
        """All valid realizations of ``instance`` in its current context.

        ``instance`` is typically an instance of a generic cell placed in
        a larger design; the result lists the non-generic descendant
        classes that can realize it (Fig. 8.3's ``selectRealizationsFor:``).
        """
        cell = instance.cell_class
        if not cell.is_generic:
            return [cell]
        results: List[CellClass] = []
        for subclass in cell.subclasses:
            results.extend(self._valid_realizations(subclass, instance))
        return results

    def _valid_realizations(self, candidate: CellClass,
                            instance: CellInstance) -> List[CellClass]:
        if candidate.is_generic:
            if self.prune:
                if not self.is_valid_realization_for(candidate, instance):
                    self.stats.pruned_subtrees += 1
                    return []
            results: List[CellClass] = []
            for subclass in candidate.subclasses:
                results.extend(self._valid_realizations(subclass, instance))
            return results
        if self.is_valid_realization_for(candidate, instance):
            return [candidate]
        return []

    # -- candidate testing (Fig. 8.2) ----------------------------------------------

    def _accepts(self, variable: Any, value: Any) -> bool:
        """One tentative acceptance test (Fig. 8.2's probing primitive).

        The base selector probes in place; subclasses may redirect the
        test into another universe (e.g. a computation space in
        :class:`repro.spaces.search.SpaceSelector`).
        """
        return variable.can_be_set_to(value)

    def is_valid_realization_for(self, candidate: CellClass,
                                 instance: CellInstance) -> bool:
        """Selective testing of one candidate, in priority order."""
        self.stats.candidates_tested += 1
        for kind in self.priorities:
            self.stats.property_tests += 1
            if kind == "bBox":
                if not self.valid_bbox_for(candidate, instance):
                    return False
            elif kind == "signals":
                if not self.valid_signals_for(candidate, instance):
                    return False
            elif kind == "delays":
                if not self.valid_delays_for(candidate, instance):
                    return False
        return True

    def valid_bbox_for(self, candidate: CellClass,
                       instance: CellInstance) -> bool:
        """The candidate must fit the instance's placement area."""
        candidate_box = candidate.bounding_box()
        if candidate_box is None:
            return True
        required = instance.transform.apply_to(candidate_box)
        bbox_var = instance.bounding_box_var
        if bbox_var.value is None:
            # No placement area fixed yet: check the default against the
            # instance's other constraints by tentative propagation.
            return self._accepts(bbox_var, required)
        return bbox_var.value.can_contain(required)

    def valid_delays_for(self, candidate: CellClass,
                         instance: CellInstance) -> bool:
        """Candidate delays, adjusted for local loading, must satisfy the
        constraints on the instance's delay variables."""
        for key, instance_delay in instance.delays.items():
            candidate_delay = candidate.delays.get(key)
            if candidate_delay is None or candidate_delay.value is None:
                continue
            adjusted = candidate_delay.value + instance_delay.loading_penalty()
            if not self._accepts(instance_delay, adjusted):
                return False
        return True

    def valid_signals_for(self, candidate: CellClass,
                          instance: CellInstance) -> bool:
        """Candidate signals must match the instance's interface and the
        typing constraints of the nets it is connected to."""
        for name, generic_signal in instance.cell_class.signals.items():
            candidate_signal = candidate.signals.get(name)
            if candidate_signal is None:
                return False
            if candidate_signal.direction != generic_signal.direction:
                return False
            net = instance.net_on(name)
            if net is None:
                continue
            width = candidate_signal.bit_width_var.value
            if width is not None \
                    and not self._accepts(net.bit_width_var, width):
                return False
            data_type = candidate_signal.data_type_var.value
            if data_type is not None \
                    and not self._accepts(net.data_type_var, data_type):
                return False
            electrical = candidate_signal.electrical_type_var.value
            if electrical is not None \
                    and not self._accepts(net.electrical_type_var, electrical):
                return False
        return True


def select_realizations(instance: CellInstance,
                        priorities: Sequence[str] = DEFAULT_PRIORITIES,
                        prune: bool = True) -> List[CellClass]:
    """Convenience wrapper: one-shot module selection for an instance."""
    return ModuleSelector(priorities, prune).select_realizations_for(instance)
