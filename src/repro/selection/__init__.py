"""Module validation and selection (thesis chapter 8)."""

from .ranking import CandidateScore, RankedSelector
from .selector import (
    DEFAULT_PRIORITIES,
    ModuleSelector,
    SelectionStats,
    select_realizations,
)

__all__ = ["CandidateScore", "DEFAULT_PRIORITIES", "ModuleSelector",
           "RankedSelector", "SelectionStats", "select_realizations"]
