"""Setuptools shim for legacy editable installs (offline environment)."""

from setuptools import setup

setup()
