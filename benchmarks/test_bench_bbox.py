"""E12 (Figs. 7.6-7.9): bounding-box propagation, stretching and checks.

A class box change defaults every instance box (transformed), checks
designer-fixed instance boxes, and the designer's aspect-ratio / area
constraints veto bad boxes.  Benchmarks measure class-box updates fanned
out to many instances and the io-pin stretch computation.
"""

import pytest

from repro.core import AspectRatioPredicate, USER, reset_default_context
from repro.stem import CellClass, PinSpec, Point, Rect, Transform


def build_fanout(instances=32):
    cell = CellClass("LEAF")
    cell.define_signal("in1", "in", pins=[PinSpec("left", 0.5)])
    cell.define_signal("out1", "out", pins=[PinSpec("right", 0.5)])
    top = CellClass("TOP")
    placed = [cell.instantiate(top, f"L{i}",
                               Transform.translation(10.0 * i, 0.0))
              for i in range(instances)]
    return cell, top, placed


class TestBBoxPropagation:
    def test_class_box_defaults_every_instance(self):
        cell, top, placed = build_fanout(8)
        assert cell.set_bounding_box(Rect.of_extent(4, 2))
        for i, instance in enumerate(placed):
            assert instance.bounding_box_var.value == \
                Rect.of_extent(4, 2, Point(10.0 * i, 0.0))

    def test_pin_stretching_to_larger_instance(self):
        cell, top, placed = build_fanout(2)
        cell.set_bounding_box(Rect.of_extent(4, 2))
        placed[0].bounding_box_var.set(Rect.of_extent(4, 6), USER)
        pins = placed[0].io_pins()
        assert pins["in1"] == [Point(0, 3)]
        assert pins["out1"] == [Point(4, 3)]

    def test_fixed_instance_box_blocks_class_growth(self):
        cell, top, placed = build_fanout(4)
        cell.set_bounding_box(Rect.of_extent(4, 2))
        placed[2].bounding_box_var.set(Rect.of_extent(4, 2, Point(20, 0)),
                                       USER)
        assert not cell.set_bounding_box(Rect.of_extent(5, 2))
        assert cell.bounding_box() == Rect.of_extent(4, 2)

    def test_aspect_ratio_spec(self):
        cell = CellClass("SQ")
        AspectRatioPredicate(cell.bounding_box_var, 1.0)
        assert cell.set_bounding_box(Rect.of_extent(3, 3))
        assert not cell.set_bounding_box(Rect.of_extent(4, 3))


@pytest.mark.parametrize("instances", [8, 64])
def test_bench_class_box_fanout(benchmark, instances):
    cell, top, placed = build_fanout(instances)
    sizes = [(4.0, 2.0), (5.0, 2.5)]
    state = {"i": 0}

    def update():
        width, height = sizes[state["i"] % 2]
        state["i"] += 1
        assert cell.set_bounding_box(Rect.of_extent(width, height))

    benchmark(update)
    assert placed[-1].bounding_box_var.value is not None


def test_bench_pin_stretch(benchmark):
    cell, top, placed = build_fanout(1)
    cell.set_bounding_box(Rect.of_extent(4, 2))
    placed[0].bounding_box_var.set(Rect.of_extent(8, 8), USER)
    pins = benchmark(placed[0].io_pins)
    assert pins["in1"] == [Point(0, 4)]
