"""E9 (section 6.3): lazy property recalculation vs. eager recomputation.

The consistency-maintenance claim: erasing derived data on change and
recalculating on next read ("delayed recalculation") maintains
consistency *without a severe penalty on database updates*.  The
ablation recomputes eagerly on every update instead.
"""

import itertools

import pytest

from repro.consistency import PropertyVariable, add_stored_view
from repro.core import UpdateConstraint, Variable


class CostlyModel:
    """A model whose derived property is expensive to compute."""

    def __init__(self, work=200):
        self.name = "model"
        self.work = work
        self.base = 1
        self.calls = 0
        self.variables = {}

    def compute(self):
        self.calls += 1
        total = 0
        for i in range(self.work):
            total += (self.base * i) % 7
        return total


def build_lazy(work=200):
    model = CostlyModel(work)
    source = Variable(0, name="source")
    prop = add_stored_view(model, "derived", "compute", watched=[source])
    return model, source, prop


def build_eager(work=200):
    """Ablation: recompute on every source update."""
    model = CostlyModel(work)
    source = Variable(0, name="source")
    prop = PropertyVariable(model, "derived", recalculate="compute",
                            context=source.context)
    UpdateConstraint([source], [prop])

    original_set = source.set

    def eager_set(value, justification=None):
        ok = (original_set(value, justification) if justification is not None
              else original_set(value))
        prop.value  # force immediate recomputation
        return ok

    source.set = eager_set
    return model, source, prop


class TestLazyRecalculation:
    def test_updates_without_reads_cost_nothing(self):
        model, source, prop = build_lazy()
        prop.value
        baseline = model.calls
        for i in range(50):
            source.set(i + 1)
        assert model.calls == baseline

    def test_value_fresh_after_burst(self):
        model, source, prop = build_lazy()
        assert prop.value is not None
        model.base = 3
        source.set(99)
        assert prop.stored_value is None
        fresh = prop.value
        assert fresh == model.compute() and model.calls >= 2

    def test_eager_recomputes_per_update(self):
        model, source, prop = build_eager()
        for i in range(10):
            source.set(i + 1)
        assert model.calls >= 10


def _update_burst(source, prop, updates=20):
    for i in range(updates):
        source.set(i + 1)
    return prop.value


def test_bench_lazy_updates(benchmark):
    model, source, prop = build_lazy(work=500)
    counter = itertools.count()

    def burst():
        base = next(counter) * 100
        for i in range(20):
            source.set(base + i + 1)
        return prop.value

    result = benchmark(burst)
    assert result is not None


def test_bench_eager_updates_ablation(benchmark):
    model, source, prop = build_eager(work=500)
    counter = itertools.count()

    def burst():
        base = next(counter) * 100
        for i in range(20):
            source.set(base + i + 1)
        return prop.value

    result = benchmark(burst)
    assert result is not None
