"""E15 (Fig. 8.4, section 8.2): selection efficiency techniques.

Tree pruning: generic intermediate classes carry ideal (best-case)
characteristics; failing generics cut whole subtrees.  Selective
testing: ordering property kinds most-constrained-first short-circuits
failing candidates sooner.  Both are measured against their ablations on
a three-level library of 2 x 8 = 16 leaf adders.
"""

import pytest

from repro.core import UpperBoundConstraint, reset_default_context
from repro.selection import ModuleSelector
from repro.stem import CellClass, Rect

D = 1.0
A = 10.0
FAMILIES = 4
LEAVES_PER_FAMILY = 4


def build_library():
    """root generic -> FAMILIES generics -> LEAVES_PER_FAMILY leaves each.

    Family k has ideal delay 8+4k; its leaves trade delay for area.
    """
    root = CellClass("Adder8", is_generic=True)
    root.define_signal("x", "in")
    root.define_signal("y", "out")
    root.declare_delay("x", "y")

    for k in range(FAMILIES):
        family = root.subclass(f"Family{k}", is_generic=True)
        ideal_delay = (8 + 4 * k) * D
        family.delay_var("x", "y").calculate(ideal_delay)
        family.set_bounding_box(Rect.of_extent(4 * A / (k + 1), 1.0))
        for j in range(LEAVES_PER_FAMILY):
            leaf = family.subclass(f"F{k}L{j}")
            leaf.delay_var("x", "y").calculate(ideal_delay + j * D)
            leaf.set_bounding_box(
                Rect.of_extent(4 * A / (k + 1) + j * A / 8, 1.0))
    return root


def constrained_instance(root, delay_budget, area_budget=None):
    top = CellClass("TOP")
    instance = root.instantiate(top, "add")
    UpperBoundConstraint(instance.delay_var("x", "y"), delay_budget)
    if area_budget is not None:
        instance.bounding_box_var.set(Rect.of_extent(area_budget, 1.0))
    return instance


class TestPruningEffectiveness:
    def test_pruned_and_unpruned_agree(self):
        root = build_library()
        instance = constrained_instance(root, 10 * D)
        with_pruning = ModuleSelector(priorities=("delays",), prune=True)
        without = ModuleSelector(priorities=("delays",), prune=False)
        assert (with_pruning.select_realizations_for(instance)
                == without.select_realizations_for(instance))

    def test_pruning_tests_fewer_candidates(self):
        root = build_library()
        instance = constrained_instance(root, 10 * D)
        with_pruning = ModuleSelector(priorities=("delays",), prune=True)
        without = ModuleSelector(priorities=("delays",), prune=False)
        with_pruning.select_realizations_for(instance)
        without.select_realizations_for(instance)
        # only family 0 passes its ideal test; families 1..3 are pruned
        assert with_pruning.stats.pruned_subtrees == FAMILIES - 1
        assert (with_pruning.stats.candidates_tested
                < without.stats.candidates_tested)

    def test_full_miss_prunes_everything(self):
        root = build_library()
        instance = constrained_instance(root, 1 * D)
        selector = ModuleSelector(priorities=("delays",))
        assert selector.select_realizations_for(instance) == []
        assert selector.stats.candidates_tested == FAMILIES


class TestSelectiveTestingOrder:
    def test_most_constrained_first_runs_fewer_tests(self):
        root = build_library()
        # delay is the discriminating constraint here; bBox is loose
        instance = constrained_instance(root, 10 * D, area_budget=10 * A)
        delay_first = ModuleSelector(priorities=("delays", "bBox"),
                                     prune=False)
        bbox_first = ModuleSelector(priorities=("bBox", "delays"),
                                    prune=False)
        result_a = delay_first.select_realizations_for(instance)
        result_b = bbox_first.select_realizations_for(instance)
        assert result_a == result_b
        assert (delay_first.stats.property_tests
                <= bbox_first.stats.property_tests)


def test_bench_selection_with_pruning(benchmark):
    root = build_library()
    instance = constrained_instance(root, 10 * D)

    def run():
        return ModuleSelector(priorities=("delays",),
                              prune=True).select_realizations_for(instance)

    result = benchmark(run)
    assert result


def test_bench_selection_without_pruning(benchmark):
    root = build_library()
    instance = constrained_instance(root, 10 * D)

    def run():
        return ModuleSelector(priorities=("delays",),
                              prune=False).select_realizations_for(instance)

    result = benchmark(run)
    assert result
