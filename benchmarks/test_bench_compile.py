"""Ablation (section 9.3, suggestion 3): compiled vs. declarative networks.

Compares three ways of evaluating the same functional (delay-shaped)
network after an input change: declarative propagation through the
engine, the compiled topological plan, and the fully proceduralized
generated function.  The compiled forms trade the engine's checking and
rollback for speed — quantified here.
"""

import itertools

import pytest

from repro.core import (
    UniAdditionConstraint,
    UniMaximumConstraint,
    Variable,
    compile_network,
)

LAYERS = 6
WIDTH = 4


def build_reduction_tree():
    """WIDTH leaf delays; alternating layers of sums and maxima."""
    leaves = [Variable(float(i + 1), name=f"leaf{i}") for i in range(WIDTH)]
    level = leaves
    all_nodes = []
    for layer in range(LAYERS):
        next_level = []
        for i in range(0, len(level) - 1, 2):
            node = Variable(name=f"n{layer}_{i}")
            if layer % 2 == 0:
                UniAdditionConstraint(node, [level[i], level[i + 1]])
            else:
                UniMaximumConstraint(node, [level[i], level[i + 1]])
            next_level.append(node)
            all_nodes.append(node)
        if len(level) % 2:
            next_level.append(level[-1])
        if len(next_level) == 1:
            break
        level = next_level
    root = next_level[0]
    return leaves, root


class TestAgreement:
    def test_compiled_plan_matches_engine(self):
        leaves, root = build_reduction_tree()
        plan = compile_network(leaves)
        assert plan.evaluate()[root] == root.value
        leaves[0].set(10.0)
        assert plan.evaluate()[root] == root.value

    def test_proceduralized_matches_engine(self):
        leaves, root = build_reduction_tree()
        fn = compile_network(leaves).proceduralize()
        for update in (2.0, 7.0):
            leaves[0].set(update)
            out = fn(*[leaf.value for leaf in leaves])
            assert out[fn.slot_of[root]] == root.value


def test_bench_declarative_propagation(benchmark):
    leaves, root = build_reduction_tree()
    values = itertools.cycle([2.0, 3.0])
    benchmark(lambda: leaves[0].set(next(values)))
    assert root.value is not None


def test_bench_compiled_plan(benchmark):
    leaves, root = build_reduction_tree()
    plan = compile_network(leaves)
    values = itertools.cycle([2.0, 3.0])
    result = benchmark(lambda: plan.evaluate({leaves[0]: next(values)}))
    assert result[root] is not None


def test_bench_proceduralized(benchmark):
    leaves, root = build_reduction_tree()
    fn = compile_network(leaves).proceduralize()
    slot = fn.slot_of[root]
    base = [leaf.value for leaf in leaves]
    values = itertools.cycle([2.0, 3.0])

    def run():
        args = [next(values)] + base[1:]
        return fn(*args)

    result = benchmark(run)
    assert result[slot] is not None
