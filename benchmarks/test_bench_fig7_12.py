"""E13 (Figs. 7.10-7.12): hierarchical delay paths and delay constraints.

The figure's shape: cell A's class delay is the maximum over its internal
paths; cell X cascades B and two instances of A, so X's class delay
network sums B.d and the two A instance delays.  A change to a *leaf*
characteristic (inside A) propagates: A's network recomputes A.D(x,y),
the dual variables carry it into both A instances in X, and X's network
recomputes — all incrementally, in one round.

The ablation compares that incremental update against discarding and
rebuilding X's and A's delay networks from scratch (the non-incremental
strategy).
"""

import itertools

import pytest

from repro.core import default_context
from repro.stem import CellClass


def leaf_cell(name, delay):
    cell = CellClass(name)
    cell.define_signal("a", "in")
    cell.define_signal("y", "out")
    cell.declare_delay("a", "y", estimate=delay)
    return cell


def build_fig_7_12():
    """A = g1 -> g2 (internal network); X = B -> A.1 -> A.2."""
    g1 = leaf_cell("G1", 3.0)
    g2 = leaf_cell("G2", 4.0)
    b = leaf_cell("B", 2.0)

    a = CellClass("A")
    a.define_signal("x", "in")
    a.define_signal("y", "out")
    a.declare_delay("x", "y")
    u1 = g1.instantiate(a, "u1")
    u2 = g2.instantiate(a, "u2")
    n0 = a.add_net("n0"); n0.connect_io("x"); n0.connect(u1, "a")
    n1 = a.add_net("n1"); n1.connect(u1, "y"); n1.connect(u2, "a")
    n2 = a.add_net("n2"); n2.connect(u2, "y"); n2.connect_io("y")
    a.build_delay_network()

    x = CellClass("X")
    x.define_signal("in1", "in")
    x.define_signal("out1", "out")
    x.declare_delay("in1", "out1")
    b1 = b.instantiate(x, "B.1")
    a1 = a.instantiate(x, "A.1")
    a2 = a.instantiate(x, "A.2")
    m0 = x.add_net("m0"); m0.connect_io("in1"); m0.connect(b1, "a")
    m1 = x.add_net("m1"); m1.connect(b1, "y"); m1.connect(a1, "x")
    m2 = x.add_net("m2"); m2.connect(a1, "y"); m2.connect(a2, "x")
    m3 = x.add_net("m3"); m3.connect(a2, "y"); m3.connect_io("out1")
    x.build_delay_network()
    return g1, g2, b, a, x


class TestFig712:
    def test_hierarchical_delay_value(self):
        g1, g2, b, a, x = build_fig_7_12()
        assert a.delay_var("x", "y").value == pytest.approx(7.0)
        assert x.delay_var("in1", "out1").value == pytest.approx(2 + 7 + 7)

    def test_leaf_update_propagates_two_levels(self):
        g1, g2, b, a, x = build_fig_7_12()
        assert g1.delay_var("a", "y").calculate(5.0)
        assert a.delay_var("x", "y").value == pytest.approx(9.0)
        assert x.delay_var("in1", "out1").value == pytest.approx(2 + 9 + 9)

    def test_dual_delay_variables_updated(self):
        g1, g2, b, a, x = build_fig_7_12()
        g1.delay_var("a", "y").calculate(5.0)
        for name in ("A.1", "A.2"):
            instance = next(i for i in x.subcells if i.name == name)
            assert instance.delay_var("x", "y").value == pytest.approx(9.0)


def test_bench_incremental_leaf_update(benchmark):
    g1, g2, b, a, x = build_fig_7_12()
    values = itertools.cycle([3.0, 3.5])
    benchmark(lambda: g1.delay_var("a", "y").calculate(next(values)))
    assert x.delay_var("in1", "out1").value == pytest.approx(
        2 + 2 * (g1.delay_var("a", "y").value + 4.0))


def test_bench_full_rebuild_ablation(benchmark):
    """Non-incremental strategy: rebuild both networks per change."""
    g1, g2, b, a, x = build_fig_7_12()
    values = itertools.cycle([3.0, 3.5])

    def rebuild():
        with default_context().propagation_disabled():
            g1.delay_var("a", "y")._store(next(values), None)
            a.delay_var("x", "y").reset()
            x.delay_var("in1", "out1").reset()
        a.build_delay_network()
        x.build_delay_network()
        return x.delay_value("in1", "out1")

    result = benchmark(rebuild)
    assert result == pytest.approx(2 + 2 * (g1.delay_var("a", "y").value
                                            + 4.0))
