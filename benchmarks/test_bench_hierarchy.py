"""E6 (section 5.1): hierarchical constraint propagation vs. flat networks.

The Fig. 5.1 claim: with hierarchical networks, a cell's *internal*
constraint network is propagated once, no matter how many instances of
the cell exist; the result then crosses the implicit class/instance
links.  A flattened organisation replicates the internal network per
instance and pays for it on every update.

The model: an internal chain of L functional constraints produces a
class characteristic consumed (plus a local adjustment) by N uses.
"""

import itertools

import pytest

from repro.core import FormulaConstraint, Variable, default_context
from repro.stem.implicit import ClassInstVar, InstanceInstVar

CHAIN_LENGTH = 12
INSTANCES = 16


def build_hierarchical(chain_length=CHAIN_LENGTH, instances=INSTANCES):
    """One internal chain at class level; N instances share its result."""
    source = Variable(name="x0")
    current = source
    for i in range(chain_length - 1):
        nxt = Variable(name=f"x{i + 1}")
        FormulaConstraint(nxt, [current], lambda x: x + 1, label="+1")
        current = nxt
    class_var = ClassInstVar(name="characteristic")
    FormulaConstraint(class_var, [current], lambda x: x + 1, label="+1")

    consumers = []
    for i in range(instances):
        instance_var = InstanceInstVar(name=f"inst{i}")
        class_var.register_instance_var(instance_var)
        consumer = Variable(name=f"use{i}")
        FormulaConstraint(consumer, [instance_var],
                          lambda x: x * 2, label="x2")
        consumers.append(consumer)
    return source, class_var, consumers


def build_flat(chain_length=CHAIN_LENGTH, instances=INSTANCES):
    """Flat ablation: the internal chain replicated once per use."""
    source = Variable(name="x0")
    consumers = []
    for i in range(instances):
        current = source
        for j in range(chain_length):
            nxt = Variable(name=f"r{i}_x{j + 1}")
            FormulaConstraint(nxt, [current], lambda x: x + 1, label="+1")
            current = nxt
        consumer = Variable(name=f"use{i}")
        FormulaConstraint(consumer, [current], lambda x: x * 2, label="x2")
        consumers.append(consumer)
    return source, consumers


class TestHierarchicalSharing:
    def test_hierarchical_result_reaches_every_instance(self):
        source, class_var, consumers = build_hierarchical()
        assert source.set(0)
        assert class_var.value == CHAIN_LENGTH
        assert all(c.value == 2 * CHAIN_LENGTH for c in consumers)

    def test_flat_result_matches(self):
        source, consumers = build_flat()
        assert source.set(0)
        assert all(c.value == 2 * CHAIN_LENGTH for c in consumers)

    def test_internal_network_propagated_once(self, context):
        """The headline claim: internal inferences don't scale with N."""
        source, class_var, consumers = build_hierarchical()
        source.set(0)
        context.stats.reset()
        source.set(1)
        hierarchical_inferences = context.stats.inference_runs
        context.stats.reset()

        flat_source, flat_consumers = build_flat()
        flat_source.set(0)
        context.stats.reset()
        flat_source.set(1)
        flat_inferences = context.stats.inference_runs

        # hierarchical: L internal + N implicit hops + N consumers + N
        # no-op back-notifications to the class variable
        # flat:         N * (L + 1) replicated inferences
        assert hierarchical_inferences <= (CHAIN_LENGTH
                                           + 3 * INSTANCES + 2)
        assert flat_inferences >= INSTANCES * CHAIN_LENGTH
        assert flat_inferences > 2 * hierarchical_inferences


def test_bench_hierarchical_update(benchmark):
    source, class_var, consumers = build_hierarchical()
    values = itertools.cycle([0, 1])
    benchmark(lambda: source.set(next(values)))
    assert consumers[0].value == 2 * (source.value + CHAIN_LENGTH)


def test_bench_flat_update_ablation(benchmark):
    source, consumers = build_flat()
    values = itertools.cycle([0, 1])
    benchmark(lambda: source.set(next(values)))
    assert consumers[0].value == 2 * (source.value + CHAIN_LENGTH)
